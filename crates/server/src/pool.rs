//! A fixed-size worker thread-pool with a bounded queue and explicit
//! admission control.
//!
//! The pool is generic over the queued item (the server queues accepted
//! `TcpStream`s) and runs one shared handler function on each item.
//! Admission control lives in [`ThreadPool::try_execute`]: when every
//! worker is busy *and* the backlog queue is full, the item is handed
//! straight back instead of queued — the server turns that into a `busy`
//! wire response, so overload degrades into fast typed rejections rather
//! than unbounded queueing or a stalled accept loop. Handing the item back
//! (not a boxed closure) is the point: the caller still owns the socket
//! and can say goodbye on it.
//!
//! Shutdown is cooperative: [`ThreadPool::shutdown`] wakes every idle
//! worker and joins them all. Items still queued are dropped (their
//! connections close); items being *handled* finish normally — the
//! connection loops watch the server's shutdown flag themselves and exit
//! after completing their in-flight request.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct PoolState<T> {
    queue: VecDeque<T>,
    /// Workers currently blocked waiting for an item.
    idle_workers: usize,
    shutting_down: bool,
}

struct PoolShared<T> {
    state: Mutex<PoolState<T>>,
    item_ready: Condvar,
    queue_capacity: usize,
}

/// Fixed worker threads pulling items from a bounded queue and running one
/// shared handler on each.
pub struct ThreadPool<T: Send + 'static> {
    shared: Arc<PoolShared<T>>,
    workers: Vec<JoinHandle<()>>,
}

/// A refused submission: the item comes back untouched together with a
/// load snapshot taken under the pool lock at the moment of rejection, so
/// the caller's `busy` response can tell the client *how* overloaded the
/// server was rather than just that it was.
#[derive(Debug)]
pub struct Rejection<T> {
    /// The item, returned to the caller.
    pub item: T,
    /// Items waiting in the backlog queue when the rejection happened.
    pub queue_depth: usize,
    /// Worker threads serving the pool.
    pub workers: usize,
}

impl<T: Send + 'static> ThreadPool<T> {
    /// Spawns `workers` threads running `handler`, with room for
    /// `queue_capacity` waiting items beyond the ones being handled.
    pub fn new<F>(workers: usize, queue_capacity: usize, handler: F) -> ThreadPool<T>
    where
        F: Fn(T) + Send + Sync + 'static,
    {
        assert!(workers > 0, "a pool needs at least one worker");
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                idle_workers: 0,
                shutting_down: false,
            }),
            item_ready: Condvar::new(),
            queue_capacity,
        });
        let handler = Arc::new(handler);
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let handler = Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("bep-server-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &*handler))
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            workers: handles,
        }
    }

    /// Submits an item unless the pool is saturated. An item is accepted
    /// when a worker is idle to take it at once, or when the backlog queue
    /// has room; otherwise (and after shutdown began) the item comes
    /// straight back as `Err` — with the queue depth and worker count at
    /// rejection time — and the caller decides what rejection looks like.
    pub fn try_execute(&self, item: T) -> Result<(), Rejection<T>> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutting_down {
            return Err(Rejection {
                queue_depth: state.queue.len(),
                workers: self.workers.len(),
                item,
            });
        }
        // A queued item is picked up at once by an idle worker, so the
        // effective room is idle workers + backlog slots.
        let effective_room = state.idle_workers + self.shared.queue_capacity;
        if state.queue.len() >= effective_room {
            return Err(Rejection {
                queue_depth: state.queue.len(),
                workers: self.workers.len(),
                item,
            });
        }
        state.queue.push_back(item);
        drop(state);
        self.shared.item_ready.notify_one();
        Ok(())
    }

    /// Worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Wakes and joins every worker. Queued-but-unstarted items are
    /// dropped; in-flight handlers complete first (join waits for them).
    pub fn shutdown(mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutting_down = true;
            state.queue.clear();
        }
        self.shared.item_ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(shared: &PoolShared<T>, handler: &(dyn Fn(T) + Send + Sync)) {
    loop {
        let item = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(item) = state.queue.pop_front() {
                    break item;
                }
                if state.shutting_down {
                    return;
                }
                state.idle_workers += 1;
                state = shared.item_ready.wait(state).expect("pool lock");
                state.idle_workers -= 1;
            }
        };
        handler(item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    type Task = Box<dyn FnOnce() + Send>;

    fn closure_pool(workers: usize, queue: usize) -> ThreadPool<Task> {
        ThreadPool::new(workers, queue, |task: Task| task())
    }

    #[test]
    fn runs_items_on_workers() {
        let pool = closure_pool(2, 4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            let mut task: Task = Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
            // Tasks are quick, so the bounded queue may transiently
            // reject; retry until accepted.
            loop {
                match pool.try_execute(task) {
                    Ok(()) => break,
                    Err(back) => {
                        task = back.item;
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::SeqCst) < 8 {
            assert!(std::time::Instant::now() < deadline, "tasks did not finish");
            std::thread::sleep(Duration::from_millis(1));
        }
        pool.shutdown();
    }

    #[test]
    fn saturated_pool_rejects_and_returns_the_item() {
        let pool = closure_pool(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        // Occupy the single worker...
        assert!(pool
            .try_execute(Box::new(move || {
                started_tx.send(()).unwrap();
                release_rx.recv().unwrap();
            }) as Task)
            .is_ok());
        started_rx.recv().unwrap();
        // ...fill the single backlog slot...
        assert!(pool.try_execute(Box::new(|| {}) as Task).is_ok());
        // ...and the third submission bounces immediately, item returned.
        let marker = Arc::new(AtomicUsize::new(7));
        let marker2 = Arc::clone(&marker);
        let rejected = pool.try_execute(Box::new(move || {
            marker2.store(0, Ordering::SeqCst);
        }) as Task);
        let rejection = rejected.expect_err("saturated pool must reject");
        // The load snapshot reflects the saturation that caused the
        // rejection: one item in the backlog, one worker.
        assert_eq!(rejection.queue_depth, 1);
        assert_eq!(rejection.workers, 1);
        drop(rejection);
        assert_eq!(marker.load(Ordering::SeqCst), 7, "rejected task never ran");
        release_tx.send(()).unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_idle_workers() {
        let pool = closure_pool(4, 4);
        assert_eq!(pool.worker_count(), 4);
        pool.shutdown(); // must not hang
    }

    #[test]
    fn rejects_after_shutdown_began() {
        let pool = closure_pool(1, 4);
        pool.shared.state.lock().unwrap().shutting_down = true;
        assert!(pool.try_execute(Box::new(|| {}) as Task).is_err());
        pool.shared.state.lock().unwrap().shutting_down = false;
        pool.shutdown();
    }
}
