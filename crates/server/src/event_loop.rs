//! The event-driven front-end: one reactor thread, every connection.
//!
//! A single thread owns a level-triggered [`Poller`] holding the listener,
//! a shutdown [`Waker`], and every live connection's nonblocking socket.
//! Each loop iteration:
//!
//! 1. **Wait** for readiness (with the configured poll tick as timeout, or
//!    zero when fairness-capped connections still hold buffered frames);
//! 2. **Read** every readable connection into its [`FrameDecoder`] and
//!    decode up to `frames_per_conn_per_tick` frames per connection
//!    (pipelining: one readiness event may carry many frames);
//! 3. **Classify** each frame via [`ConnCore::classify`]: control-plane
//!    requests are answered inline; `execute`/`execute_prepared` items are
//!    pooled into one iteration-wide batch;
//! 4. **Execute** the batch through [`SqlProxy::execute_batch`]
//!    (chunked at `batch_max`), which amortizes plan-cache probes and
//!    journal writes across connections while deciding in submission
//!    order — so answers are bit-identical to the blocking front-end;
//! 5. **Assemble** each connection's response segments *in request order*
//!    (inline answers interleaved with batch results) into its write
//!    buffer and **flush** as far as the socket allows, arming write
//!    interest only while bytes remain.
//!
//! Fairness: a connection that pipelines more than the per-tick frame cap
//! keeps its surplus buffered and is revisited on the next iteration (the
//! `hot` list forces a zero-timeout poll), so one chatty client can delay
//! but never starve the rest; the bound on any connection's wait is
//! `(hot connections) × frames_per_conn_per_tick` decisions per lap.
//!
//! Admission control is a connection cap instead of a worker pool: past
//! `max_connections` the acceptor answers `busy` (with the live connection
//! count as the queue depth) exactly like the blocking server's saturated
//! pool. Idle connections cost one epoll registration and a few hundred
//! bytes — the 10k-idle target holds on this one thread.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bep_core::BatchItem;

use crate::conn::{exec_response, ConnCore, ConnShared, Dispatched};
use crate::framing::{frame_bytes, FrameDecoder, FrameError};
use crate::protocol::{ErrorKind, Response};
use crate::reactor::{drain_waker, fd_of, raise_nofile_limit, Poller, Readiness};

/// Token of the accepting listener.
const TOKEN_LISTENER: u64 = 0;
/// Token of the shutdown waker's read end.
const TOKEN_WAKER: u64 = 1;
/// First connection token.
const TOKEN_FIRST_CONN: u64 = 2;

/// Bytes read per `read()` call into the scratch buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Per-connection per-tick read ceiling: a firehose peer yields the
/// reactor back after this many bytes (level-triggered epoll re-notifies).
const READ_BUDGET: usize = 256 * 1024;
/// Most journal events pushed to one subscriber per tick (bounds the
/// `events` frame well under any frame limit; the stream catches up over
/// subsequent ticks).
const SUB_EVENTS_MAX: usize = 256;
/// A subscriber whose unflushed output exceeds this many bytes is skipped
/// for the tick: its cursor stays put, and whatever the ring evicts in
/// the meantime is charged *exactly* to the subscription's `dropped`
/// count on a later poll — explicit loss accounting instead of unbounded
/// buffering toward a slow consumer.
const SUB_BACKLOG_MAX: usize = 256 * 1024;

/// One response slot in a connection's per-iteration output sequence.
/// Inline answers carry their bytes; batched decisions carry the index
/// into the iteration's batch until it executes.
enum OutSeg {
    Bytes(Vec<u8>),
    Batch(usize),
}

/// One live connection owned by the reactor.
struct Conn {
    stream: TcpStream,
    token: u64,
    decoder: FrameDecoder,
    core: ConnCore,
    /// Response segments produced this iteration, in request order.
    segs: Vec<OutSeg>,
    /// Flush buffer persisting across iterations (partial writes).
    out: Vec<u8>,
    out_pos: usize,
    last_activity: Instant,
    close_after_flush: bool,
    /// Whether the poller currently watches this socket for writability.
    want_write: bool,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    fn push_response(&mut self, response: &Response) {
        self.segs
            .push(OutSeg::Bytes(frame_bytes(response.to_wire().as_bytes())));
    }
}

/// Reactor instrumentation, registered into the proxy's metrics registry
/// so `metrics` responses and the Prometheus exposition carry it.
struct ReactorMetrics {
    connections: Arc<bep_core::Gauge>,
    accepted: Arc<bep_core::Counter>,
    frames: Arc<bep_core::Counter>,
    ticks: Arc<bep_core::Counter>,
    events_pushed: Arc<bep_core::Counter>,
    events_dropped: Arc<bep_core::Counter>,
}

impl ReactorMetrics {
    fn new(shared: &ConnShared) -> ReactorMetrics {
        let reg = shared.proxy.registry();
        ReactorMetrics {
            connections: reg.gauge(
                "bep_reactor_connections",
                "Connections currently held by the event loop",
                &[],
            ),
            accepted: reg.counter(
                "bep_reactor_accepted_total",
                "Connections accepted by the event loop",
                &[],
            ),
            frames: reg.counter(
                "bep_reactor_frames_total",
                "Request frames decoded by the event loop",
                &[],
            ),
            ticks: reg.counter(
                "bep_reactor_ticks_total",
                "Event-loop iterations (poll wakeups and timeouts)",
                &[],
            ),
            events_pushed: reg.counter(
                "bep_reactor_events_pushed_total",
                "Journal events pushed to live subscribers",
                &[],
            ),
            events_dropped: reg.counter(
                "bep_reactor_events_dropped_total",
                "Journal events subscribers lost to ring eviction (backlogged or slow)",
                &[],
            ),
        }
    }
}

/// Runs the reactor until shutdown. Owns the listener, the waker's read
/// end, and every connection it accepts.
pub(crate) fn run(
    listener: TcpListener,
    shared: Arc<ConnShared>,
    waker_rx: UnixStream,
    busy_rejections: Arc<AtomicU64>,
) {
    // Best-effort headroom for the 10k-idle target; the admission cap
    // below is what actually bounds us.
    raise_nofile_limit(shared.config.max_connections as u64 + 256);
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let mut poller = match Poller::new(1024) {
        Ok(p) => p,
        Err(_) => return,
    };
    if poller
        .register(fd_of(&listener), TOKEN_LISTENER, true, false)
        .is_err()
        || poller
            .register(fd_of(&waker_rx), TOKEN_WAKER, true, false)
            .is_err()
    {
        return;
    }

    let metrics = ReactorMetrics::new(&shared);
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    // Connections that still hold complete-but-undecoded frames after the
    // fairness cap; revisited next iteration with a zero-timeout poll.
    let mut hot: Vec<u64> = Vec::new();
    let mut events: Vec<Readiness> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut last_idle_sweep = Instant::now();

    loop {
        events.clear();
        let timeout = if hot.is_empty() {
            shared.config.poll_interval
        } else {
            Duration::ZERO
        };
        if poller.wait(timeout, &mut events).is_err() {
            return;
        }
        metrics.ticks.inc();
        if shared.shutdown.load(Ordering::Acquire) {
            farewell(&mut conns, &metrics);
            return;
        }

        // This iteration's cross-connection batch and the order to answer.
        let mut batch: Vec<BatchItem> = Vec::new();
        let mut touched: Vec<u64> = Vec::new();
        let mut dead: Vec<u64> = Vec::new();

        // Fairness carry-over first: these have decoded work waiting that
        // no readiness event will re-announce.
        for token in std::mem::take(&mut hot) {
            if let Some(conn) = conns.get_mut(&token) {
                drain_frames(conn, &shared, &metrics, &mut batch, &mut hot);
                touched.push(token);
            }
        }

        let mut accept_pending = false;
        for ev in &events {
            match ev.token {
                TOKEN_LISTENER => accept_pending = true,
                TOKEN_WAKER => drain_waker(&waker_rx),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    if ev.readable || ev.hangup {
                        if !read_ready(conn, &mut scratch) {
                            // Hard error or truncating EOF: nothing more
                            // to say; drop below.
                            dead.push(token);
                            continue;
                        }
                        drain_frames(conn, &shared, &metrics, &mut batch, &mut hot);
                    }
                    touched.push(token);
                }
            }
        }

        // Execute the iteration's decisions as one cross-connection batch
        // (chunked at batch_max), then render each result to wire bytes.
        let batch_wire: Vec<Vec<u8>> = if batch.is_empty() {
            Vec::new()
        } else {
            let cap = shared.config.batch_max.max(1);
            let mut wire = Vec::with_capacity(batch.len());
            for chunk in batch.chunks(cap) {
                for result in shared.proxy.execute_batch(chunk) {
                    wire.push(frame_bytes(exec_response(result).to_wire().as_bytes()));
                }
            }
            wire
        };

        // Assemble (request-ordered) and flush every touched connection.
        touched.sort_unstable();
        touched.dedup();
        for token in touched {
            let Some(conn) = conns.get_mut(&token) else {
                continue;
            };
            for seg in conn.segs.drain(..) {
                match seg {
                    OutSeg::Bytes(b) => conn.out.extend_from_slice(&b),
                    OutSeg::Batch(i) => conn.out.extend_from_slice(&batch_wire[i]),
                }
            }
            if !flush(conn, &poller) {
                dead.push(token);
            }
        }

        for token in dead {
            drop_conn(&mut conns, token, &poller, &metrics);
        }

        // Live subscriptions: the batch above has already published its
        // decisions to the journal, so polling now delivers this very
        // tick's events — push latency is bounded by one loop iteration.
        drain_subscriptions(&mut conns, &shared, &poller, &metrics);

        if accept_pending {
            accept_burst(
                &listener,
                &shared,
                &poller,
                &mut conns,
                &mut next_token,
                &metrics,
                &busy_rejections,
            );
        }

        // Idle reaping, amortized: scan at a quarter of the idle timeout.
        let sweep_every = (shared.config.idle_timeout / 4).max(Duration::from_millis(250));
        if last_idle_sweep.elapsed() >= sweep_every {
            last_idle_sweep = Instant::now();
            let idle_timeout = shared.config.idle_timeout;
            let stale: Vec<u64> = conns
                .values()
                .filter(|c| c.last_activity.elapsed() >= idle_timeout && !c.pending_out())
                .map(|c| c.token)
                .collect();
            for token in stale {
                if let Some(conn) = conns.get_mut(&token) {
                    // Mirror the blocking loop: a goodbye unless framing
                    // is mid-frame (not re-synchronizable).
                    if !conn.decoder.mid_frame() {
                        let bye = frame_bytes(Response::Bye.to_wire().as_bytes());
                        let _ = conn.stream.write_all(&bye);
                    }
                }
                drop_conn(&mut conns, token, &poller, &metrics);
            }
        }
    }
}

/// Reads whatever the socket has (bounded by the per-tick budget) into the
/// connection's decoder. Returns `false` when the connection is beyond
/// saving (hard error, or EOF that truncates a frame with nothing owed).
fn read_ready(conn: &mut Conn, scratch: &mut [u8]) -> bool {
    let mut total = 0;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // FIN. Any frames already buffered still get answers; the
                // flush path closes once they are written.
                conn.close_after_flush = true;
                return true;
            }
            Ok(n) => {
                conn.decoder.feed(&scratch[..n]);
                conn.last_activity = Instant::now();
                total += n;
                if total >= READ_BUDGET {
                    return true; // level-triggered epoll re-notifies
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Decodes up to the fairness cap of frames from one connection,
/// classifying each: inline answers go straight to the connection's
/// segment list, decisions join the iteration batch (their segment holds
/// the batch index so responses interleave in request order).
fn drain_frames(
    conn: &mut Conn,
    shared: &ConnShared,
    metrics: &ReactorMetrics,
    batch: &mut Vec<BatchItem>,
    hot: &mut Vec<u64>,
) {
    for _ in 0..shared.config.frames_per_conn_per_tick.max(1) {
        let payload = match conn.decoder.next_frame() {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(FrameError::Oversized { announced, limit }) => {
                // Framing is lost; typed error then close (mirrors the
                // blocking loop).
                conn.push_response(&Response::Error {
                    kind: ErrorKind::Malformed,
                    msg: format!("frame of {announced} bytes exceeds limit {limit}"),
                });
                conn.close_after_flush = true;
                return;
            }
            Err(_) => {
                conn.close_after_flush = true;
                return;
            }
        };
        metrics.frames.inc();
        conn.last_activity = Instant::now();
        let request = match ConnCore::parse(&payload) {
            Ok(r) => r,
            Err(error_response) => {
                // Malformed message: typed error, connection survives.
                conn.push_response(&error_response);
                continue;
            }
        };
        match conn.core.classify(request) {
            Dispatched::Immediate { response, close } => {
                conn.push_response(&response);
                if close {
                    conn.close_after_flush = true;
                    return;
                }
            }
            Dispatched::Execute(item) => {
                batch.push(item);
                conn.segs.push(OutSeg::Batch(batch.len() - 1));
            }
        }
    }
    // Cap hit with work left over: revisit next iteration even though no
    // new readiness will fire for these buffered bytes.
    if conn.decoder.has_frame() {
        hot.push(conn.token);
    }
}

/// Pushes newly published journal events to every subscribed connection.
///
/// Each subscriber's [`JournalCursor`](bep_core::JournalCursor) lives in
/// its [`ConnCore`]; polling it here — on the reactor thread, after the
/// tick's batch executed — yields exactly the events a cursor-polling
/// client would see, in the same order, with the same drop accounting
/// (the stream equivalence the integration tests assert). A subscriber
/// that cannot drain its socket is skipped, not buffered without bound:
/// its cursor holds still and eviction losses surface in `dropped`.
fn drain_subscriptions(
    conns: &mut HashMap<u64, Conn>,
    shared: &ConnShared,
    poller: &Poller,
    metrics: &ReactorMetrics,
) {
    let journal = shared.proxy.journal();
    let mut dead: Vec<u64> = Vec::new();
    for conn in conns.values_mut() {
        let Some(cursor) = conn.core.subscription.as_mut() else {
            continue;
        };
        if conn.out.len() - conn.out_pos > SUB_BACKLOG_MAX {
            continue; // backlogged: try again next tick, losses accounted
        }
        let dropped_before = cursor.dropped();
        let events = journal.poll(cursor, SUB_EVENTS_MAX);
        let dropped = cursor.dropped();
        if events.is_empty() && dropped == dropped_before {
            continue;
        }
        metrics.events_pushed.add(events.len() as u64);
        metrics.events_dropped.add(dropped - dropped_before);
        let frame = frame_bytes(Response::Events { events, dropped }.to_wire().as_bytes());
        conn.out.extend_from_slice(&frame);
        if !flush(conn, poller) {
            dead.push(conn.token);
        }
    }
    for token in dead {
        drop_conn(conns, token, poller, metrics);
    }
}

/// Writes as much pending output as the socket accepts. Returns `false`
/// when the connection should be dropped (hard write error, or close
/// requested and everything flushed).
fn flush(conn: &mut Conn, poller: &Poller) -> bool {
    while conn.pending_out() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if conn.pending_out() {
        if !conn.want_write {
            conn.want_write = true;
            let _ = poller.rearm(fd_of(&conn.stream), conn.token, true, true);
        }
        return true;
    }
    conn.out.clear();
    conn.out_pos = 0;
    if conn.close_after_flush {
        // Polite close: FIN after our last frame, never an RST over it.
        let _ = conn.stream.shutdown(Shutdown::Write);
        return false;
    }
    if conn.want_write {
        conn.want_write = false;
        let _ = poller.rearm(fd_of(&conn.stream), conn.token, true, false);
    }
    true
}

/// Accepts until the listener runs dry, applying the connection-cap
/// admission control.
fn accept_burst(
    listener: &TcpListener,
    shared: &Arc<ConnShared>,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    metrics: &ReactorMetrics,
    busy_rejections: &AtomicU64,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        };
        if conns.len() >= shared.config.max_connections {
            // The event loop's saturation point: the connection table is
            // the "queue", the reactor the single worker.
            busy_rejections.fetch_add(1, Ordering::Relaxed);
            crate::server::reject(
                stream,
                &Response::Busy {
                    queue_depth: conns.len() as u64,
                    workers: 1,
                },
                shared.config.write_timeout,
            );
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        if poller.register(fd_of(&stream), token, true, false).is_err() {
            continue;
        }
        conns.insert(
            token,
            Conn {
                stream,
                token,
                decoder: FrameDecoder::new(shared.config.max_frame),
                core: ConnCore::new(Arc::clone(shared), true),
                segs: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                last_activity: Instant::now(),
                close_after_flush: false,
                want_write: false,
            },
        );
        metrics.accepted.inc();
        metrics.connections.set(conns.len() as u64);
    }
}

/// Removes one connection: poller deregistration, table removal, gauge
/// update. The [`ConnCore`]'s drop guard sweeps its sessions.
fn drop_conn(
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    poller: &Poller,
    metrics: &ReactorMetrics,
) {
    if let Some(conn) = conns.remove(&token) {
        let _ = poller.deregister(fd_of(&conn.stream));
        metrics.connections.set(conns.len() as u64);
    }
}

/// Shutdown drain: best-effort `bye` to every connection, then close all
/// (each [`ConnCore`] sweeps its sessions on drop).
fn farewell(conns: &mut HashMap<u64, Conn>, metrics: &ReactorMetrics) {
    let bye = frame_bytes(Response::Bye.to_wire().as_bytes());
    for conn in conns.values_mut() {
        if conn.pending_out() {
            let _ = conn.stream.write_all(&conn.out[conn.out_pos..]);
        }
        let _ = conn.stream.write_all(&bye);
        let _ = conn.stream.shutdown(Shutdown::Write);
    }
    conns.clear();
    metrics.connections.set(0);
}
