//! Blocking client for the wire protocol.
//!
//! [`Client`] wraps one TCP connection: `connect` performs the
//! `hello`/`welcome` handshake (surfacing an overloaded server as the
//! typed [`ClientError::Busy`]), and each method sends one request frame
//! and reads one response frame. The benches, the smoke example, and the
//! integration tests all drive the server through this type, so the
//! client-visible protocol is exercised end to end.

use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bep_core::DecisionEvent;
use minidb::Rows;
use sqlir::Value;

use crate::framing::{write_frame, FrameError, FrameEvent, FrameReader, MAX_FRAME};
use crate::protocol::{Request, Response, WireStats, PROTOCOL_VERSION};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, or timeout).
    Io(std::io::Error),
    /// The server is at capacity; retry later. Carries the server's load
    /// snapshot at rejection time (zeros when the server predates the
    /// payload).
    Busy {
        /// Requests queued ahead of the rejected one.
        queue_depth: u64,
        /// Worker threads serving the pool.
        workers: u64,
    },
    /// The server closed the connection.
    Closed,
    /// The peer violated the protocol (bad frame or unexpected message).
    Protocol(String),
    /// The server answered with a typed `error` response.
    Server {
        /// Stable error kind label (`malformed`, `no-such-session`, …).
        kind: String,
        /// Human-readable detail.
        msg: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy {
                queue_depth,
                workers,
            } => write!(
                f,
                "server busy (queue depth {queue_depth}, {workers} workers)"
            ),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server { kind, msg } => write!(f, "server error [{kind}]: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// The outcome of one `execute` round-trip.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// Rows of an allowed `SELECT`.
    Rows(Rows),
    /// Row count of a pass-through DML statement.
    Affected(u64),
    /// The statement was blocked by the policy.
    Blocked {
        /// Stable reason label.
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
}

impl ExecOutcome {
    /// `true` unless the statement was blocked.
    pub fn is_allowed(&self) -> bool {
        !matches!(self, ExecOutcome::Blocked { .. })
    }
}

/// A session's trace summary plus its recent decision provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceInfo {
    /// Recorded queries.
    pub entries: u64,
    /// Derived ground facts.
    pub facts: u64,
    /// The session's recent decision events, oldest first (empty when the
    /// server is not observing).
    pub events: Vec<DecisionEvent>,
}

/// One page of the server's decision journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalPage {
    /// Events with sequence ≥ the requested `after`, oldest first.
    pub events: Vec<DecisionEvent>,
    /// Total events ever published server-wide.
    pub published: u64,
    /// Total events evicted by ring wrap-around.
    pub evicted: u64,
}

/// One pushed batch from a live journal subscription.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBatch {
    /// New events, oldest first; sequence numbers are strictly increasing
    /// across the whole stream.
    pub events: Vec<DecisionEvent>,
    /// Cumulative events this subscription lost to ring eviction.
    pub dropped: u64,
}

/// One protocol connection to a running server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
}

impl Client {
    /// Connects, handshakes, and returns a ready client. An overloaded
    /// server answers the connection with `busy`, surfaced as
    /// [`ClientError::Busy`]. `io_timeout` bounds every read and write.
    pub fn connect(addr: impl ToSocketAddrs, io_timeout: Duration) -> Result<Client, ClientError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| ClientError::Protocol("no address resolved".into()))?;
        let stream = TcpStream::connect_timeout(&addr, io_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            reader: FrameReader::new(MAX_FRAME),
        };
        match client.round_trip(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Welcome { .. } => Ok(client),
            Response::Busy {
                queue_depth,
                workers,
            } => Err(ClientError::Busy {
                queue_depth,
                workers,
            }),
            other => Err(unexpected("welcome", &other)),
        }
    }

    /// Opens a session with policy-parameter bindings.
    pub fn begin(&mut self, bindings: Vec<(String, Value)>) -> Result<u64, ClientError> {
        match self.round_trip(&Request::Begin { bindings })? {
            Response::Began { session } => Ok(session),
            other => Err(expect_error(other, "began")),
        }
    }

    /// Executes one statement under enforcement.
    pub fn execute(
        &mut self,
        session: u64,
        sql: &str,
        bindings: &[(String, Value)],
    ) -> Result<ExecOutcome, ClientError> {
        let req = Request::Execute {
            session,
            sql: sql.to_string(),
            bindings: bindings.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Rows { columns, rows } => Ok(ExecOutcome::Rows(Rows { columns, rows })),
            Response::Affected { n } => Ok(ExecOutcome::Affected(n)),
            Response::Blocked { reason, detail } => Ok(ExecOutcome::Blocked { reason, detail }),
            other => Err(expect_error(other, "rows/affected/blocked")),
        }
    }

    /// Executes a burst of statements **pipelined**: every request frame
    /// is written back-to-back before the first response is read, so a
    /// pipelining server can keep several frames in flight on this one
    /// connection. Responses come back in request order; the result vector
    /// is index-aligned with `stmts`.
    pub fn execute_pipelined(
        &mut self,
        session: u64,
        stmts: &[(String, Vec<(String, Value)>)],
    ) -> Result<Vec<ExecOutcome>, ClientError> {
        for (sql, bindings) in stmts {
            let req = Request::Execute {
                session,
                sql: sql.clone(),
                bindings: bindings.clone(),
            };
            write_frame(&mut self.stream, req.to_wire().as_bytes())?;
        }
        let mut out = Vec::with_capacity(stmts.len());
        for _ in stmts {
            out.push(match self.read_response()? {
                Response::Rows { columns, rows } => ExecOutcome::Rows(Rows { columns, rows }),
                Response::Affected { n } => ExecOutcome::Affected(n),
                Response::Blocked { reason, detail } => ExecOutcome::Blocked { reason, detail },
                other => return Err(expect_error(other, "rows/affected/blocked")),
            });
        }
        Ok(out)
    }

    /// Compiles a statement template into a server-held plan for `session`
    /// and returns its connection-scoped id.
    pub fn prepare(&mut self, session: u64, sql: &str) -> Result<u64, ClientError> {
        let req = Request::Prepare {
            session,
            sql: sql.to_string(),
        };
        match self.round_trip(&req)? {
            Response::Prepared { plan } => Ok(plan),
            other => Err(expect_error(other, "prepared")),
        }
    }

    /// Executes a previously prepared plan under enforcement.
    pub fn execute_prepared(
        &mut self,
        session: u64,
        plan: u64,
        bindings: &[(String, Value)],
    ) -> Result<ExecOutcome, ClientError> {
        let req = Request::ExecutePrepared {
            session,
            plan,
            bindings: bindings.to_vec(),
        };
        match self.round_trip(&req)? {
            Response::Rows { columns, rows } => Ok(ExecOutcome::Rows(Rows { columns, rows })),
            Response::Affected { n } => Ok(ExecOutcome::Affected(n)),
            Response::Blocked { reason, detail } => Ok(ExecOutcome::Blocked { reason, detail }),
            other => Err(expect_error(other, "rows/affected/blocked")),
        }
    }

    /// Fetches a session's trace summary and recent decision provenance.
    pub fn trace_summary(&mut self, session: u64) -> Result<TraceInfo, ClientError> {
        match self.round_trip(&Request::Trace { session })? {
            Response::TraceSummary {
                entries,
                facts,
                events,
            } => Ok(TraceInfo {
                entries,
                facts,
                events,
            }),
            other => Err(expect_error(other, "trace")),
        }
    }

    /// Fetches the server's statistics snapshot.
    pub fn stats(&mut self) -> Result<WireStats, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(expect_error(other, "stats")),
        }
    }

    /// Fetches the Prometheus text exposition of the server's metrics.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::Metrics)? {
            Response::Metrics { text } => Ok(text),
            other => Err(expect_error(other, "metrics")),
        }
    }

    /// Drains up to `max` decision events with sequence ≥ `after`. Page
    /// through the journal by passing `last.seq + 1` as the next `after`.
    pub fn journal(&mut self, after: u64, max: u64) -> Result<JournalPage, ClientError> {
        match self.round_trip(&Request::Journal { after, max })? {
            Response::Journal {
                events,
                published,
                evicted,
            } => Ok(JournalPage {
                events,
                published,
                evicted,
            }),
            other => Err(expect_error(other, "journal")),
        }
    }

    /// Adjusts the socket timeouts after connect — a streaming consumer
    /// typically wants a generous handshake timeout but short read ticks
    /// so it can interleave rendering with [`Client::next_events`].
    pub fn set_io_timeout(&mut self, io: Duration) -> Result<(), ClientError> {
        self.stream.set_read_timeout(Some(io))?;
        self.stream.set_write_timeout(Some(io))?;
        Ok(())
    }

    /// Subscribes this connection to the live journal stream, starting at
    /// sequence ≥ `after`. After the ack the server *pushes*
    /// [`EventBatch`]es; read them with [`Client::next_events`]. The
    /// connection is dedicated to the stream from here on — interleaving
    /// other requests would race their responses against pushed frames.
    /// Only the event-driven front-end streams; the blocking front-end
    /// answers with a typed `unsupported` error.
    pub fn subscribe(&mut self, after: u64) -> Result<(), ClientError> {
        match self.round_trip(&Request::Subscribe { after })? {
            Response::Subscribed => Ok(()),
            other => Err(expect_error(other, "subscribed")),
        }
    }

    /// Blocks for the next pushed batch on a subscribed connection (up to
    /// the connect-time `io_timeout`, surfaced as a timed-out
    /// [`ClientError::Io`] when the server has nothing to say).
    pub fn next_events(&mut self) -> Result<EventBatch, ClientError> {
        match self.read_response()? {
            Response::Events { events, dropped } => Ok(EventBatch { events, dropped }),
            other => Err(expect_error(other, "events")),
        }
    }

    /// Ends a session (idempotent); returns whether it was live.
    pub fn end(&mut self, session: u64) -> Result<bool, ClientError> {
        match self.round_trip(&Request::End { session })? {
            Response::Ended { was_live } => Ok(was_live),
            other => Err(expect_error(other, "ended")),
        }
    }

    /// Asks the server to drain and stop; consumes the client.
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(expect_error(other, "bye")),
        }
    }

    /// Sends raw bytes as one frame and reads one response — for tests
    /// probing malformed-message handling through a real connection.
    pub fn raw_round_trip(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, request.to_wire().as_bytes())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        match self.reader.read_frame(&mut self.stream) {
            Ok(FrameEvent::Frame(payload)) => {
                let text = std::str::from_utf8(&payload)
                    .map_err(|_| ClientError::Protocol("response is not UTF-8".into()))?;
                Response::from_wire(text).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            Ok(FrameEvent::Eof) => Err(ClientError::Closed),
            Ok(FrameEvent::TimedOut) => {
                // The socket timeout is the caller's `io_timeout`; a
                // tick here means the full timeout elapsed.
                Err(ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "timed out waiting for response",
                )))
            }
            Err(FrameError::Io(e)) => Err(ClientError::Io(e)),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    /// Flushes and closes the connection without ending sessions (the
    /// server's orphan sweep will reclaim them).
    pub fn abandon(mut self) {
        let _ = self.stream.flush();
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}

fn expect_error(response: Response, wanted: &str) -> ClientError {
    match response {
        Response::Error { kind, msg } => ClientError::Server {
            kind: kind.label().to_string(),
            msg,
        },
        Response::Busy {
            queue_depth,
            workers,
        } => ClientError::Busy {
            queue_depth,
            workers,
        },
        Response::Bye => ClientError::Closed,
        other => unexpected(wanted, &other),
    }
}
