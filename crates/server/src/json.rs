//! A minimal JSON value, parser, and writer.
//!
//! The workspace builds offline (no serde), so the wire protocol carries
//! its own JSON layer: an order-preserving object representation, a
//! recursive-descent parser with a nesting-depth bound, and a writer that
//! escapes exactly what RFC 8259 requires. Integers are kept exact as
//! `i64` (the protocol never ships floats that need to round-trip, but
//! they parse and print fine).

use std::fmt;

/// Maximum container nesting accepted by the parser. Protocol messages are
/// at most four levels deep; the bound turns a hostile
/// `[[[[…]]]]` frame into a typed error instead of a stack overflow.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved, lookups are linear (protocol
    /// objects have < 10 keys).
    Obj(Vec<(String, Json)>),
}

/// A malformed-JSON error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where it went wrong.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (must consume the whole input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Serializes to a compact single-line string.
    pub fn to_wire(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    // Guarantee a valid JSON number (never "inf"/"NaN").
                    let s = format!("{x}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar. Input is a &str, so boundaries
                    // are trustworthy.
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = Json::obj([
            ("t", Json::str("execute")),
            ("session", Json::Int(7)),
            ("sql", Json::str("SELECT * FROM \"T\" WHERE a = ?x\n")),
            (
                "bindings",
                Json::Arr(vec![Json::Arr(vec![
                    Json::str("x"),
                    Json::obj([("i", Json::Int(-3))]),
                ])]),
            ),
        ]);
        let wire = v.to_wire();
        assert_eq!(Json::parse(&wire).unwrap(), v);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\"b\\c\nd\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\ndé😀");
        // And writes back to something that re-parses identically.
        assert_eq!(Json::parse(&v.to_wire()).unwrap(), v);
    }

    #[test]
    fn integers_stay_exact() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(Json::parse("-1").unwrap(), Json::Int(-1));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
    }

    #[test]
    fn rejects_garbage_with_offsets() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "\"\\q\"", "1 2", "\u{1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"));
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(r#"{"a":1,"b":"x","c":true,"d":[null]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("d").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(v.get("zz").is_none());
    }
}
