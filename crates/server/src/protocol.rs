//! The wire protocol: typed request/response messages and their JSON
//! encoding.
//!
//! Every frame carries one JSON object whose `"t"` member tags the
//! message. Client → server:
//!
//! | `t` | fields | meaning |
//! |-----|--------|---------|
//! | `hello` | `v` | handshake; must be the first message |
//! | `begin` | `bindings` | open a session with policy-parameter bindings |
//! | `execute` | `session`, `sql`, `bindings` | run one statement under enforcement |
//! | `prepare` | `session`, `sql` | compile a statement template into a server-held plan |
//! | `execute_prepared` | `session`, `plan`, `bindings` | run a previously prepared plan |
//! | `trace` | `session` | summarize the session's trace (+ its recent decision events) |
//! | `stats` | | proxy counters + latency percentiles |
//! | `metrics` | | Prometheus text exposition of the proxy's registry |
//! | `journal` | `after`, `max` | drain decision events with sequence ≥ `after` |
//! | `subscribe` | `after` | stream journal events as they are published (event-driven front-end only) |
//! | `end` | `session` | end a session (idempotent) |
//! | `shutdown` | | ask the whole server to drain and stop |
//!
//! Server → client: `welcome`, `busy`, `began`, `prepared`, `rows`,
//! `affected`, `blocked`, `trace`, `stats`, `metrics`, `journal`,
//! `subscribed`, `events`, `ended`, `bye`, and `error` (with a stable
//! `kind`). After a `subscribed` ack the server *pushes* `events` frames
//! (each a batch of journal events plus the subscription's cumulative
//! drop count) without further requests. SQL [`Value`]s are encoded
//! unambiguously as `null`, `{"i":n}`, `{"s":"…"}`, `{"b":bool}` so
//! integer 1, string "1", and boolean true never collide.
//!
//! Decision events ride in `trace`, `journal`, and `events` responses as
//! objects of the form `{"seq", "session", "hash", "verdict", "tier",
//! "neg", "total_ns", "phases", "span"?}` — `hash` is the query-template
//! FNV-1a hash as a 16-digit hex string (it does not fit a signed JSON
//! integer), `tier` and `verdict` use the stable labels from
//! [`bep_core::CacheTier`] and [`bep_core::Verdict`], and `phases` is the
//! per-phase nanosecond array indexed by [`bep_core::Phase`]. `span` is
//! the compact solver-work summary (`{"rw","cc","hn","hb","cr","cf",
//! "spans","trunc"}` — rewrite iterations, containment checks,
//! homomorphism nodes/backtracks, certificate replays/fallbacks, span
//! count, truncation flag); it is omitted when all-zero and defaults on
//! decode, so pre-span peers interoperate. Unknown fields are ignored on
//! decode, so these extensions stay within protocol version 1.

use bep_core::{CacheTier, DecisionEvent, SpanSummary, Verdict, PHASE_COUNT};
use sqlir::Value;

use crate::json::Json;

/// Protocol version sent in `hello` and echoed in `welcome`.
pub const PROTOCOL_VERSION: i64 = 1;

/// A decode failure: the frame was valid JSON-shaped bytes but not a
/// well-formed message (or not valid JSON at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed message: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

/// Stable error kinds carried by `error` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame did not decode to a well-formed request.
    Malformed,
    /// The referenced session does not exist (or belongs to another
    /// connection).
    NoSuchSession,
    /// The referenced prepared-plan id was never issued on this
    /// connection (plans, like sessions, are connection-scoped).
    NoSuchPlan,
    /// Protocol version mismatch or out-of-order handshake.
    Unsupported,
    /// A server-side invariant failed.
    Internal,
}

impl ErrorKind {
    /// The stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            ErrorKind::Malformed => "malformed",
            ErrorKind::NoSuchSession => "no-such-session",
            ErrorKind::NoSuchPlan => "no-such-plan",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Internal => "internal",
        }
    }

    fn from_label(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "malformed" => ErrorKind::Malformed,
            "no-such-session" => ErrorKind::NoSuchSession,
            "no-such-plan" => ErrorKind::NoSuchPlan,
            "unsupported" => ErrorKind::Unsupported,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake.
    Hello {
        /// Client protocol version.
        version: i64,
    },
    /// Open a session.
    Begin {
        /// Policy-parameter bindings (e.g. `MyUId = 1`).
        bindings: Vec<(String, Value)>,
    },
    /// Execute one statement.
    Execute {
        /// Session to execute under.
        session: u64,
        /// SQL template (may contain `?name` parameters).
        sql: String,
        /// Request parameters.
        bindings: Vec<(String, Value)>,
    },
    /// Compile one statement template into a plan held by the server for
    /// this connection; later [`Request::ExecutePrepared`] frames reference
    /// it by id and skip parse/translate/rewrite entirely.
    Prepare {
        /// Session the plan is prepared for (ownership is checked, like
        /// `execute`).
        session: u64,
        /// SQL template (may contain `?name` parameters).
        sql: String,
    },
    /// Execute a previously prepared plan.
    ExecutePrepared {
        /// Session to execute under.
        session: u64,
        /// Plan id from a `prepared` response on this connection.
        plan: u64,
        /// Request parameters.
        bindings: Vec<(String, Value)>,
    },
    /// Summarize a session's trace.
    Trace {
        /// Session to summarize.
        session: u64,
    },
    /// Fetch proxy statistics.
    Stats,
    /// Fetch the Prometheus text exposition of the proxy's metrics.
    Metrics,
    /// Drain decision events from the journal.
    Journal {
        /// Deliver events with sequence number ≥ this (0 = from the oldest
        /// retained).
        after: u64,
        /// At most this many events.
        max: u64,
    },
    /// Stream journal events as they are published: the server acks with
    /// `subscribed`, then pushes [`Response::Events`] frames without
    /// further requests. Only the event-driven front-end streams; the
    /// blocking front-end answers `error` with kind `unsupported`.
    Subscribe {
        /// Start the stream at sequence number ≥ this (0 = from the
        /// oldest retained); earlier events are skipped, not counted as
        /// dropped.
        after: u64,
    },
    /// End a session.
    End {
        /// Session to end.
        session: u64,
    },
    /// Drain and stop the server.
    Shutdown,
}

/// Proxy statistics as shipped over the wire (a flattened
/// [`bep_core::ProxyStats`] plus the live session count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Queries allowed.
    pub allowed: u64,
    /// Queries blocked.
    pub blocked: u64,
    /// Template cache hits.
    pub template_cache_hits: u64,
    /// Fresh template proofs.
    pub template_proofs: u64,
    /// Session cache hits.
    pub session_cache_hits: u64,
    /// Fresh concrete proofs.
    pub concrete_proofs: u64,
    /// DML statements passed through.
    pub writes: u64,
    /// Mutations allowed by write enforcement.
    pub write_allowed: u64,
    /// Mutations blocked (mode, config, or coverage).
    pub write_blocked: u64,
    /// Mutations executed without coverage checking.
    pub write_passthrough: u64,
    /// Statements executed with enforcement bypassed entirely.
    pub unchecked_statements: u64,
    /// Live sessions server-wide.
    pub sessions: u64,
    /// Decisions measured by the latency histogram.
    pub latency_count: u64,
    /// Median decision latency, nanoseconds.
    pub p50_ns: u64,
    /// 95th-percentile decision latency, nanoseconds.
    pub p95_ns: u64,
    /// 99th-percentile decision latency, nanoseconds.
    pub p99_ns: u64,
    /// Slowest decision, nanoseconds.
    pub max_ns: u64,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// Server protocol version.
        version: i64,
    },
    /// The server is at capacity; the connection will be closed. Retry
    /// later. May arrive instead of `welcome`. Carries a load snapshot so
    /// clients can make an informed backoff decision.
    Busy {
        /// Requests queued ahead of the rejected one at rejection time.
        queue_depth: u64,
        /// Worker threads serving the pool (the concurrency ceiling).
        workers: u64,
    },
    /// Session opened.
    Began {
        /// The new session id.
        session: u64,
    },
    /// Statement template compiled; execute it with `execute_prepared`.
    Prepared {
        /// Connection-scoped plan id (sequential from 1).
        plan: u64,
    },
    /// Rows of an allowed `SELECT`.
    Rows {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows.
        rows: Vec<Vec<Value>>,
    },
    /// Row count of a pass-through DML statement.
    Affected {
        /// Rows affected.
        n: u64,
    },
    /// The statement was blocked by the policy.
    Blocked {
        /// Stable reason label (`not-determined`, `parse-error`, …).
        reason: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Trace summary.
    TraceSummary {
        /// Recorded queries.
        entries: u64,
        /// Derived ground facts.
        facts: u64,
        /// The session's recent decision events (provenance), oldest
        /// first. Empty when the proxy is not observing or the events
        /// have been evicted.
        events: Vec<DecisionEvent>,
    },
    /// Statistics snapshot.
    Stats(WireStats),
    /// Prometheus text exposition.
    Metrics {
        /// The exposition body (`# HELP`/`# TYPE` + samples).
        text: String,
    },
    /// Journal drain result.
    Journal {
        /// Events with sequence ≥ the requested `after`, oldest first.
        events: Vec<DecisionEvent>,
        /// Total events ever published server-wide.
        published: u64,
        /// Total events evicted by ring wrap-around (a client that wants
        /// loss accounting compares this against its own cursor).
        evicted: u64,
    },
    /// Subscription accepted: `events` frames will follow unprompted.
    Subscribed,
    /// One pushed batch of journal events on a subscribed connection,
    /// oldest first, strictly increasing sequence numbers across the
    /// whole stream.
    Events {
        /// The new events since the last push.
        events: Vec<DecisionEvent>,
        /// Cumulative events this subscription lost to ring eviction
        /// (e.g. while the connection was backlogged). Monotone.
        dropped: u64,
    },
    /// Session ended.
    Ended {
        /// Whether the session was live.
        was_live: bool,
    },
    /// The server (or this connection) is going away.
    Bye,
    /// A typed error; the connection stays usable unless the transport
    /// itself is broken.
    Error {
        /// Stable kind.
        kind: ErrorKind,
        /// Human-readable detail.
        msg: String,
    },
}

fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Int(n) => Json::obj([("i", Json::Int(*n))]),
        Value::Str(s) => Json::obj([("s", Json::str(s.clone()))]),
        Value::Bool(b) => Json::obj([("b", Json::Bool(*b))]),
    }
}

fn value_from_json(j: &Json) -> Result<Value, ProtocolError> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Obj(pairs) if pairs.len() == 1 => {
            let (k, v) = &pairs[0];
            match (k.as_str(), v) {
                ("i", Json::Int(n)) => Ok(Value::Int(*n)),
                ("s", Json::Str(s)) => Ok(Value::Str(s.clone())),
                ("b", Json::Bool(b)) => Ok(Value::Bool(*b)),
                _ => Err(ProtocolError(format!("bad value tag {k:?}"))),
            }
        }
        _ => Err(ProtocolError("bad value encoding".into())),
    }
}

fn bindings_to_json(bindings: &[(String, Value)]) -> Json {
    Json::Arr(
        bindings
            .iter()
            .map(|(k, v)| Json::Arr(vec![Json::str(k.clone()), value_to_json(v)]))
            .collect(),
    )
}

fn bindings_from_json(j: &Json) -> Result<Vec<(String, Value)>, ProtocolError> {
    let items = j
        .as_arr()
        .ok_or_else(|| ProtocolError("bindings must be an array".into()))?;
    items
        .iter()
        .map(|item| {
            let pair = item
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| ProtocolError("binding must be a [name, value] pair".into()))?;
            let name = pair[0]
                .as_str()
                .ok_or_else(|| ProtocolError("binding name must be a string".into()))?;
            Ok((name.to_string(), value_from_json(&pair[1])?))
        })
        .collect()
}

fn rows_to_json(rows: &[Vec<Value>]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|row| Json::Arr(row.iter().map(value_to_json).collect()))
            .collect(),
    )
}

fn rows_from_json(j: &Json) -> Result<Vec<Vec<Value>>, ProtocolError> {
    j.as_arr()
        .ok_or_else(|| ProtocolError("rows must be an array".into()))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| ProtocolError("row must be an array".into()))?
                .iter()
                .map(value_from_json)
                .collect()
        })
        .collect()
}

fn span_to_json(s: &SpanSummary) -> Json {
    Json::obj([
        ("rw", Json::Int(s.rewrite_iterations as i64)),
        ("cc", Json::Int(s.containment_checks as i64)),
        ("hn", Json::Int(s.hom_nodes as i64)),
        ("hb", Json::Int(s.hom_backtracks as i64)),
        ("cr", Json::Int(s.cert_replays as i64)),
        ("cf", Json::Int(s.cert_fallbacks as i64)),
        ("spans", Json::Int(s.spans as i64)),
        ("trunc", Json::Bool(s.truncated)),
    ])
}

fn span_from_json(j: &Json) -> Result<SpanSummary, ProtocolError> {
    // Each counter defaults to zero when absent so a peer that adds (or
    // never learned) a field still interoperates.
    let counter = |name: &str| j.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(SpanSummary {
        rewrite_iterations: counter("rw") as u32,
        containment_checks: counter("cc") as u32,
        hom_nodes: counter("hn") as u32,
        hom_backtracks: counter("hb") as u32,
        cert_replays: counter("cr") as u16,
        cert_fallbacks: counter("cf") as u16,
        spans: counter("spans") as u16,
        truncated: j.get("trunc").and_then(Json::as_bool).unwrap_or(false),
    })
}

fn event_to_json(e: &DecisionEvent) -> Json {
    let mut fields = vec![
        ("seq", Json::Int(e.seq as i64)),
        ("session", Json::Int(e.session as i64)),
        ("hash", Json::str(format!("{:016x}", e.template_hash))),
        ("verdict", Json::str(e.verdict.label())),
        ("tier", Json::str(e.tier.label())),
        ("neg", Json::Bool(e.negative_template_hit)),
        ("total_ns", Json::Int(e.total_ns as i64)),
        (
            "phases",
            Json::Arr(e.phase_ns.iter().map(|&n| Json::Int(n as i64)).collect()),
        ),
    ];
    // All-zero summaries (spans disabled) are omitted entirely: the
    // common streaming case costs no extra bytes, and decode defaults.
    if !e.span.is_empty() {
        fields.push(("span", span_to_json(&e.span)));
    }
    Json::obj(fields)
}

fn event_from_json(j: &Json) -> Result<DecisionEvent, ProtocolError> {
    let hash = str_field(j, "hash")?;
    let template_hash = u64::from_str_radix(hash, 16)
        .map_err(|_| ProtocolError(format!("bad template hash {hash:?}")))?;
    let verdict_label = str_field(j, "verdict")?;
    let verdict = Verdict::from_label(verdict_label)
        .ok_or_else(|| ProtocolError(format!("unknown verdict {verdict_label:?}")))?;
    let tier_label = str_field(j, "tier")?;
    let tier = CacheTier::from_label(tier_label)
        .ok_or_else(|| ProtocolError(format!("unknown cache tier {tier_label:?}")))?;
    let phases = field(j, "phases")?
        .as_arr()
        .ok_or_else(|| ProtocolError("phases must be an array".into()))?;
    // Tolerate a peer with more (or fewer) phases than we know about:
    // extra entries are dropped, missing ones stay zero.
    let mut phase_ns = [0u64; PHASE_COUNT];
    for (slot, p) in phase_ns.iter_mut().zip(phases) {
        *slot = p
            .as_u64()
            .ok_or_else(|| ProtocolError("phase entry must be a non-negative integer".into()))?;
    }
    Ok(DecisionEvent {
        seq: u64_field(j, "seq")?,
        session: u64_field(j, "session")?,
        template_hash,
        verdict,
        tier,
        negative_template_hit: field(j, "neg")?
            .as_bool()
            .ok_or_else(|| ProtocolError("neg must be a boolean".into()))?,
        total_ns: u64_field(j, "total_ns")?,
        phase_ns,
        // Absent on pre-span peers (and on span-disabled events, which
        // omit the all-zero summary): default.
        span: match j.get("span") {
            Some(s) => span_from_json(s)?,
            None => SpanSummary::default(),
        },
    })
}

fn events_to_json(events: &[DecisionEvent]) -> Json {
    Json::Arr(events.iter().map(event_to_json).collect())
}

fn events_from_json(j: &Json) -> Result<Vec<DecisionEvent>, ProtocolError> {
    j.as_arr()
        .ok_or_else(|| ProtocolError("events must be an array".into()))?
        .iter()
        .map(event_from_json)
        .collect()
}

fn field<'a>(j: &'a Json, name: &str) -> Result<&'a Json, ProtocolError> {
    j.get(name)
        .ok_or_else(|| ProtocolError(format!("missing field {name:?}")))
}

fn u64_field(j: &Json, name: &str) -> Result<u64, ProtocolError> {
    field(j, name)?
        .as_u64()
        .ok_or_else(|| ProtocolError(format!("field {name:?} must be a non-negative integer")))
}

fn str_field<'a>(j: &'a Json, name: &str) -> Result<&'a str, ProtocolError> {
    field(j, name)?
        .as_str()
        .ok_or_else(|| ProtocolError(format!("field {name:?} must be a string")))
}

impl Request {
    /// Encodes to wire JSON text.
    pub fn to_wire(&self) -> String {
        let j = match self {
            Request::Hello { version } => {
                Json::obj([("t", Json::str("hello")), ("v", Json::Int(*version))])
            }
            Request::Begin { bindings } => Json::obj([
                ("t", Json::str("begin")),
                ("bindings", bindings_to_json(bindings)),
            ]),
            Request::Execute {
                session,
                sql,
                bindings,
            } => Json::obj([
                ("t", Json::str("execute")),
                ("session", Json::Int(*session as i64)),
                ("sql", Json::str(sql.clone())),
                ("bindings", bindings_to_json(bindings)),
            ]),
            Request::Prepare { session, sql } => Json::obj([
                ("t", Json::str("prepare")),
                ("session", Json::Int(*session as i64)),
                ("sql", Json::str(sql.clone())),
            ]),
            Request::ExecutePrepared {
                session,
                plan,
                bindings,
            } => Json::obj([
                ("t", Json::str("execute_prepared")),
                ("session", Json::Int(*session as i64)),
                ("plan", Json::Int(*plan as i64)),
                ("bindings", bindings_to_json(bindings)),
            ]),
            Request::Trace { session } => Json::obj([
                ("t", Json::str("trace")),
                ("session", Json::Int(*session as i64)),
            ]),
            Request::Stats => Json::obj([("t", Json::str("stats"))]),
            Request::Metrics => Json::obj([("t", Json::str("metrics"))]),
            Request::Journal { after, max } => Json::obj([
                ("t", Json::str("journal")),
                ("after", Json::Int(*after as i64)),
                ("max", Json::Int(*max as i64)),
            ]),
            Request::Subscribe { after } => Json::obj([
                ("t", Json::str("subscribe")),
                ("after", Json::Int(*after as i64)),
            ]),
            Request::End { session } => Json::obj([
                ("t", Json::str("end")),
                ("session", Json::Int(*session as i64)),
            ]),
            Request::Shutdown => Json::obj([("t", Json::str("shutdown"))]),
        };
        j.to_wire()
    }

    /// Decodes from wire JSON text.
    pub fn from_wire(text: &str) -> Result<Request, ProtocolError> {
        let j = Json::parse(text).map_err(|e| ProtocolError(e.to_string()))?;
        let tag = str_field(&j, "t")?;
        match tag {
            "hello" => Ok(Request::Hello {
                version: field(&j, "v")?
                    .as_i64()
                    .ok_or_else(|| ProtocolError("field \"v\" must be an integer".into()))?,
            }),
            "begin" => Ok(Request::Begin {
                bindings: bindings_from_json(field(&j, "bindings")?)?,
            }),
            "execute" => Ok(Request::Execute {
                session: u64_field(&j, "session")?,
                sql: str_field(&j, "sql")?.to_string(),
                bindings: bindings_from_json(field(&j, "bindings")?)?,
            }),
            "prepare" => Ok(Request::Prepare {
                session: u64_field(&j, "session")?,
                sql: str_field(&j, "sql")?.to_string(),
            }),
            "execute_prepared" => Ok(Request::ExecutePrepared {
                session: u64_field(&j, "session")?,
                plan: u64_field(&j, "plan")?,
                bindings: bindings_from_json(field(&j, "bindings")?)?,
            }),
            "trace" => Ok(Request::Trace {
                session: u64_field(&j, "session")?,
            }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "journal" => Ok(Request::Journal {
                after: u64_field(&j, "after")?,
                max: u64_field(&j, "max")?,
            }),
            "subscribe" => Ok(Request::Subscribe {
                after: u64_field(&j, "after")?,
            }),
            "end" => Ok(Request::End {
                session: u64_field(&j, "session")?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError(format!("unknown request tag {other:?}"))),
        }
    }
}

impl Response {
    /// Encodes to wire JSON text.
    pub fn to_wire(&self) -> String {
        let j = match self {
            Response::Welcome { version } => Json::obj([
                ("t", Json::str("welcome")),
                ("v", Json::Int(*version)),
                ("server", Json::str("bep-server")),
            ]),
            Response::Busy {
                queue_depth,
                workers,
            } => Json::obj([
                ("t", Json::str("busy")),
                ("queue_depth", Json::Int(*queue_depth as i64)),
                ("workers", Json::Int(*workers as i64)),
            ]),
            Response::Began { session } => Json::obj([
                ("t", Json::str("began")),
                ("session", Json::Int(*session as i64)),
            ]),
            Response::Prepared { plan } => Json::obj([
                ("t", Json::str("prepared")),
                ("plan", Json::Int(*plan as i64)),
            ]),
            Response::Rows { columns, rows } => Json::obj([
                ("t", Json::str("rows")),
                (
                    "columns",
                    Json::Arr(columns.iter().map(|c| Json::str(c.clone())).collect()),
                ),
                ("rows", rows_to_json(rows)),
            ]),
            Response::Affected { n } => {
                Json::obj([("t", Json::str("affected")), ("n", Json::Int(*n as i64))])
            }
            Response::Blocked { reason, detail } => Json::obj([
                ("t", Json::str("blocked")),
                ("reason", Json::str(reason.clone())),
                ("detail", Json::str(detail.clone())),
            ]),
            Response::TraceSummary {
                entries,
                facts,
                events,
            } => Json::obj([
                ("t", Json::str("trace")),
                ("entries", Json::Int(*entries as i64)),
                ("facts", Json::Int(*facts as i64)),
                ("events", events_to_json(events)),
            ]),
            Response::Stats(s) => Json::obj([
                ("t", Json::str("stats")),
                ("allowed", Json::Int(s.allowed as i64)),
                ("blocked", Json::Int(s.blocked as i64)),
                (
                    "template_cache_hits",
                    Json::Int(s.template_cache_hits as i64),
                ),
                ("template_proofs", Json::Int(s.template_proofs as i64)),
                ("session_cache_hits", Json::Int(s.session_cache_hits as i64)),
                ("concrete_proofs", Json::Int(s.concrete_proofs as i64)),
                ("writes", Json::Int(s.writes as i64)),
                ("write_allowed", Json::Int(s.write_allowed as i64)),
                ("write_blocked", Json::Int(s.write_blocked as i64)),
                ("write_passthrough", Json::Int(s.write_passthrough as i64)),
                (
                    "unchecked_statements",
                    Json::Int(s.unchecked_statements as i64),
                ),
                ("sessions", Json::Int(s.sessions as i64)),
                ("latency_count", Json::Int(s.latency_count as i64)),
                ("p50_ns", Json::Int(s.p50_ns as i64)),
                ("p95_ns", Json::Int(s.p95_ns as i64)),
                ("p99_ns", Json::Int(s.p99_ns as i64)),
                ("max_ns", Json::Int(s.max_ns as i64)),
            ]),
            Response::Metrics { text } => Json::obj([
                ("t", Json::str("metrics")),
                ("text", Json::str(text.clone())),
            ]),
            Response::Journal {
                events,
                published,
                evicted,
            } => Json::obj([
                ("t", Json::str("journal")),
                ("events", events_to_json(events)),
                ("published", Json::Int(*published as i64)),
                ("evicted", Json::Int(*evicted as i64)),
            ]),
            Response::Subscribed => Json::obj([("t", Json::str("subscribed"))]),
            Response::Events { events, dropped } => Json::obj([
                ("t", Json::str("events")),
                ("events", events_to_json(events)),
                ("dropped", Json::Int(*dropped as i64)),
            ]),
            Response::Ended { was_live } => Json::obj([
                ("t", Json::str("ended")),
                ("was_live", Json::Bool(*was_live)),
            ]),
            Response::Bye => Json::obj([("t", Json::str("bye"))]),
            Response::Error { kind, msg } => Json::obj([
                ("t", Json::str("error")),
                ("kind", Json::str(kind.label())),
                ("msg", Json::str(msg.clone())),
            ]),
        };
        j.to_wire()
    }

    /// Decodes from wire JSON text.
    pub fn from_wire(text: &str) -> Result<Response, ProtocolError> {
        let j = Json::parse(text).map_err(|e| ProtocolError(e.to_string()))?;
        let tag = str_field(&j, "t")?;
        match tag {
            "welcome" => Ok(Response::Welcome {
                version: field(&j, "v")?
                    .as_i64()
                    .ok_or_else(|| ProtocolError("field \"v\" must be an integer".into()))?,
            }),
            // Load fields default to 0 when absent so frames from a
            // pre-payload server still decode.
            "busy" => Ok(Response::Busy {
                queue_depth: j.get("queue_depth").and_then(Json::as_u64).unwrap_or(0),
                workers: j.get("workers").and_then(Json::as_u64).unwrap_or(0),
            }),
            "began" => Ok(Response::Began {
                session: u64_field(&j, "session")?,
            }),
            "prepared" => Ok(Response::Prepared {
                plan: u64_field(&j, "plan")?,
            }),
            "rows" => {
                let columns = field(&j, "columns")?
                    .as_arr()
                    .ok_or_else(|| ProtocolError("columns must be an array".into()))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| ProtocolError("column must be a string".into()))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Rows {
                    columns,
                    rows: rows_from_json(field(&j, "rows")?)?,
                })
            }
            "affected" => Ok(Response::Affected {
                n: u64_field(&j, "n")?,
            }),
            "blocked" => Ok(Response::Blocked {
                reason: str_field(&j, "reason")?.to_string(),
                detail: str_field(&j, "detail")?.to_string(),
            }),
            "trace" => Ok(Response::TraceSummary {
                entries: u64_field(&j, "entries")?,
                facts: u64_field(&j, "facts")?,
                // Absent on pre-observability servers: default to empty.
                events: match j.get("events") {
                    Some(ev) => events_from_json(ev)?,
                    None => Vec::new(),
                },
            }),
            "stats" => Ok(Response::Stats(WireStats {
                allowed: u64_field(&j, "allowed")?,
                blocked: u64_field(&j, "blocked")?,
                template_cache_hits: u64_field(&j, "template_cache_hits")?,
                template_proofs: u64_field(&j, "template_proofs")?,
                session_cache_hits: u64_field(&j, "session_cache_hits")?,
                concrete_proofs: u64_field(&j, "concrete_proofs")?,
                writes: u64_field(&j, "writes")?,
                // Write-enforcement counters default to 0 so frames from a
                // pre-write-path server still decode.
                write_allowed: j.get("write_allowed").and_then(Json::as_u64).unwrap_or(0),
                write_blocked: j.get("write_blocked").and_then(Json::as_u64).unwrap_or(0),
                write_passthrough: j
                    .get("write_passthrough")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                unchecked_statements: j
                    .get("unchecked_statements")
                    .and_then(Json::as_u64)
                    .unwrap_or(0),
                sessions: u64_field(&j, "sessions")?,
                latency_count: u64_field(&j, "latency_count")?,
                p50_ns: u64_field(&j, "p50_ns")?,
                p95_ns: u64_field(&j, "p95_ns")?,
                p99_ns: u64_field(&j, "p99_ns")?,
                max_ns: u64_field(&j, "max_ns")?,
            })),
            "metrics" => Ok(Response::Metrics {
                text: str_field(&j, "text")?.to_string(),
            }),
            "journal" => Ok(Response::Journal {
                events: events_from_json(field(&j, "events")?)?,
                published: u64_field(&j, "published")?,
                evicted: u64_field(&j, "evicted")?,
            }),
            "subscribed" => Ok(Response::Subscribed),
            "events" => Ok(Response::Events {
                events: events_from_json(field(&j, "events")?)?,
                dropped: u64_field(&j, "dropped")?,
            }),
            "ended" => Ok(Response::Ended {
                was_live: field(&j, "was_live")?
                    .as_bool()
                    .ok_or_else(|| ProtocolError("was_live must be a boolean".into()))?,
            }),
            "bye" => Ok(Response::Bye),
            "error" => {
                let kind = str_field(&j, "kind")?;
                Ok(Response::Error {
                    kind: ErrorKind::from_label(kind)
                        .ok_or_else(|| ProtocolError(format!("unknown error kind {kind:?}")))?,
                    msg: str_field(&j, "msg")?.to_string(),
                })
            }
            other => Err(ProtocolError(format!("unknown response tag {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bep_core::Phase;

    fn sample_event(seq: u64) -> DecisionEvent {
        let mut phase_ns = [0u64; PHASE_COUNT];
        phase_ns[Phase::Parse as usize] = 420;
        phase_ns[Phase::Proof as usize] = 77_000;
        DecisionEvent {
            seq,
            session: 7,
            // Top bit set: does not fit a signed JSON integer, which is
            // exactly why the hash rides as a hex string.
            template_hash: 0xdead_beef_0000_0000 | seq,
            verdict: Verdict::Allowed,
            tier: CacheTier::TemplateProof,
            negative_template_hit: seq % 2 == 1,
            total_ns: 80_000,
            phase_ns,
            // Odd seqs carry solver work, even seqs are span-disabled
            // (all-zero, omitted on the wire) — both shapes round-trip.
            span: if seq % 2 == 1 {
                SpanSummary {
                    rewrite_iterations: 3 + seq as u32,
                    containment_checks: 40,
                    hom_nodes: 200,
                    hom_backtracks: 17,
                    cert_replays: 2,
                    cert_fallbacks: 1,
                    spans: 9,
                    truncated: seq == 1,
                }
            } else {
                SpanSummary::default()
            },
        }
    }

    #[test]
    fn decision_events_round_trip_including_big_hashes() {
        for seq in [0u64, 1, 2] {
            let ev = sample_event(seq);
            let wire = event_to_json(&ev).to_wire();
            assert_eq!(event_from_json(&Json::parse(&wire).unwrap()).unwrap(), ev);
        }
    }

    #[test]
    fn span_summaries_are_omitted_when_empty_and_default_when_absent() {
        // Span-disabled events carry no "span" member at all.
        let wire = event_to_json(&sample_event(0)).to_wire();
        assert!(
            !wire.contains("\"span\""),
            "empty summary serialized: {wire}"
        );
        // A frame from a pre-span peer decodes with the default summary.
        let legacy = r#"{"seq":3,"session":7,"hash":"00000000000000ff","verdict":"allowed",
                         "tier":"template-proof","neg":false,"total_ns":10,"phases":[]}"#;
        let ev = event_from_json(&Json::parse(legacy).unwrap()).unwrap();
        assert_eq!(ev.span, SpanSummary::default());
        // A span object with unknown-to-us extra members still decodes.
        let extended = r#"{"seq":3,"session":7,"hash":"ff","verdict":"allowed",
                           "tier":"template-proof","neg":false,"total_ns":10,"phases":[],
                           "span":{"rw":5,"cc":6,"future_field":1}}"#;
        let ev = event_from_json(&Json::parse(extended).unwrap()).unwrap();
        assert_eq!(ev.span.rewrite_iterations, 5);
        assert_eq!(ev.span.containment_checks, 6);
        assert_eq!(ev.span.hom_nodes, 0);
    }

    #[test]
    fn busy_without_load_fields_still_decodes() {
        // A pre-payload server sends a bare busy frame; the load snapshot
        // defaults to zero.
        let resp = Response::from_wire(r#"{"t":"busy"}"#).unwrap();
        assert_eq!(
            resp,
            Response::Busy {
                queue_depth: 0,
                workers: 0,
            }
        );
    }

    #[test]
    fn trace_without_events_field_still_decodes() {
        // A pre-observability server omits "events"; the field defaults.
        let resp = Response::from_wire(r#"{"t":"trace","entries":4,"facts":6}"#).unwrap();
        assert_eq!(
            resp,
            Response::TraceSummary {
                entries: 4,
                facts: 6,
                events: Vec::new(),
            }
        );
    }

    #[test]
    fn requests_round_trip() {
        let all = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Begin {
                bindings: vec![
                    ("MyUId".into(), Value::Int(1)),
                    ("Role".into(), Value::str("admin")),
                    ("Flag".into(), Value::Bool(false)),
                    ("Gone".into(), Value::Null),
                ],
            },
            Request::Execute {
                session: 42,
                sql: "SELECT * FROM Events WHERE EId = ?event".into(),
                bindings: vec![("event".into(), Value::Int(2))],
            },
            Request::Prepare {
                session: 42,
                sql: "SELECT * FROM Events WHERE EId = ?event".into(),
            },
            Request::ExecutePrepared {
                session: 42,
                plan: 3,
                bindings: vec![("event".into(), Value::Int(2))],
            },
            Request::Trace { session: 42 },
            Request::Stats,
            Request::Metrics,
            Request::Journal {
                after: 128,
                max: 64,
            },
            Request::Subscribe { after: 900 },
            Request::End { session: 42 },
            Request::Shutdown,
        ];
        for req in all {
            let wire = req.to_wire();
            assert_eq!(Request::from_wire(&wire).unwrap(), req, "wire: {wire}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let all = [
            Response::Welcome {
                version: PROTOCOL_VERSION,
            },
            Response::Busy {
                queue_depth: 3,
                workers: 2,
            },
            Response::Began { session: 7 },
            Response::Prepared { plan: 1 },
            Response::Rows {
                columns: vec!["EId".into(), "Title".into()],
                rows: vec![
                    vec![Value::Int(2), Value::str("standup")],
                    vec![Value::Null, Value::Bool(true)],
                ],
            },
            Response::Affected { n: 3 },
            Response::Blocked {
                reason: "not-determined".into(),
                detail: "ans() :- Events(e, t, k)".into(),
            },
            Response::TraceSummary {
                entries: 5,
                facts: 9,
                events: vec![sample_event(3)],
            },
            Response::Metrics {
                text: "# HELP bep_sessions Live sessions\n# TYPE bep_sessions gauge\n\
                       bep_sessions 2\n"
                    .into(),
            },
            Response::Journal {
                events: vec![sample_event(1), sample_event(2)],
                published: 77,
                evicted: 13,
            },
            Response::Subscribed,
            Response::Events {
                events: vec![sample_event(4), sample_event(5)],
                dropped: 6,
            },
            Response::Stats(WireStats {
                allowed: 1,
                blocked: 2,
                template_cache_hits: 3,
                template_proofs: 4,
                session_cache_hits: 5,
                concrete_proofs: 6,
                writes: 7,
                write_allowed: 14,
                write_blocked: 15,
                write_passthrough: 16,
                unchecked_statements: 17,
                sessions: 8,
                latency_count: 9,
                p50_ns: 10,
                p95_ns: 11,
                p99_ns: 12,
                max_ns: 13,
            }),
            Response::Ended { was_live: true },
            Response::Bye,
            Response::Error {
                kind: ErrorKind::NoSuchSession,
                msg: "no such session: 9".into(),
            },
            Response::Error {
                kind: ErrorKind::NoSuchPlan,
                msg: "no such prepared plan: 5".into(),
            },
        ];
        for resp in all {
            let wire = resp.to_wire();
            assert_eq!(Response::from_wire(&wire).unwrap(), resp, "wire: {wire}");
        }
    }

    #[test]
    fn malformed_messages_are_typed_errors() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"t":"warp"}"#,
            r#"{"t":"execute","sql":"SELECT 1"}"#,
            r#"{"t":"execute","session":-1,"sql":"x","bindings":[]}"#,
            r#"{"t":"begin","bindings":[["x",{"q":1}]]}"#,
            r#"{"t":"begin","bindings":[["x"]]}"#,
            r#"{"t":"prepare","sql":"SELECT 1"}"#,
            r#"{"t":"execute_prepared","session":1,"bindings":[]}"#,
        ] {
            assert!(
                Request::from_wire(bad).is_err(),
                "{bad:?} should not decode"
            );
        }
    }

    #[test]
    fn value_encoding_is_unambiguous() {
        // Integer 1, string "1", and boolean true all encode differently.
        let reqs: Vec<String> = [Value::Int(1), Value::str("1"), Value::Bool(true)]
            .into_iter()
            .map(|v| {
                Request::Begin {
                    bindings: vec![("x".into(), v)],
                }
                .to_wire()
            })
            .collect();
        assert_ne!(reqs[0], reqs[1]);
        assert_ne!(reqs[1], reqs[2]);
        assert_ne!(reqs[0], reqs[2]);
    }
}
