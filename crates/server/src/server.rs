//! The TCP server: front-end selection, admission control, graceful
//! shutdown.
//!
//! [`Server::start`] binds a listener and launches one of two front-ends,
//! chosen by [`ServerConfig::mode`]:
//!
//! * [`ServerMode::EventDriven`] (default) — a single reactor thread runs
//!   the epoll readiness loop in [`crate::event_loop`]: nonblocking
//!   sockets, pipelined frames, cross-connection decision batching, 10k+
//!   idle connections with no thread growth. Admission control is the
//!   `max_connections` cap; past it the acceptor answers `busy` with a
//!   load snapshot.
//! * [`ServerMode::Blocking`] — the original connection-per-worker pool
//!   ([`crate::pool::ThreadPool`]): each accepted connection occupies a
//!   worker thread for its lifetime; when every worker is occupied and
//!   the bounded backlog is full, the acceptor writes `busy` (with the
//!   pool's queue depth and worker count) and closes. Kept as the
//!   differential baseline: both front-ends answer byte-identically, and
//!   the T12 gate asserts it on replayed workloads.
//!
//! Shutdown — either [`Server::shutdown`] from the owning process or a
//! client's `shutdown` request — is graceful in both modes: the flag
//! flips, the front-end is woken (loopback poke or reactor waker), every
//! connection gets its in-flight answer and a `bye`, session sweeps run,
//! and only then are the serving threads joined.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bep_core::{snapshot, SqlProxy};

use crate::conn::{handle_connection, ConnShared};
use crate::event_loop;
use crate::framing::{write_frame, MAX_FRAME};
use crate::pool::ThreadPool;
use crate::protocol::Response;
use crate::reactor::{waker_pair, Waker};

/// Which front-end serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServerMode {
    /// One reactor thread, epoll readiness, pipelining, cross-connection
    /// decision batching.
    #[default]
    EventDriven,
    /// Connection-per-worker thread pool with a bounded backlog — the
    /// pre-reactor front-end, kept for differential comparison.
    Blocking,
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Front-end selection (event-driven by default).
    pub mode: ServerMode,
    /// Worker threads (blocking mode); each owns one live connection at a
    /// time.
    pub workers: usize,
    /// Accepted connections that may wait for a worker beyond the ones
    /// being served (blocking mode); anything past `workers +
    /// queue_capacity` gets `busy`.
    pub queue_capacity: usize,
    /// Live-connection admission cap (event mode); past it new
    /// connections get `busy`.
    pub max_connections: usize,
    /// Largest group of decisions run through one
    /// [`SqlProxy::execute_batch`] call (event mode).
    pub batch_max: usize,
    /// Fairness cap: frames decoded per connection per loop iteration
    /// (event mode); surplus pipelined frames wait one lap.
    pub frames_per_conn_per_tick: usize,
    /// Largest accepted frame in bytes.
    pub max_frame: usize,
    /// Socket read timeout (blocking mode) / poll tick (event mode);
    /// paces the shutdown flag and the idle clock.
    pub poll_interval: Duration,
    /// Socket write timeout (bounds a stuck peer's backpressure).
    pub write_timeout: Duration,
    /// A connection silent this long is reaped and its sessions ended.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            mode: ServerMode::default(),
            workers: 4,
            queue_capacity: 2,
            max_connections: 12_288,
            batch_max: 64,
            frames_per_conn_per_tick: 32,
            max_frame: MAX_FRAME,
            poll_interval: Duration::from_millis(20),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// The mode-specific serving machinery behind a running [`Server`].
enum Engine {
    /// Accept thread owning the worker pool.
    Blocking(JoinHandle<ThreadPool<TcpStream>>),
    /// Reactor thread plus the waker that interrupts its poller.
    Event {
        thread: JoinHandle<()>,
        waker: Waker,
    },
}

/// A running enforcement server. Dropping without calling
/// [`Server::shutdown`] or [`Server::wait`] aborts ungracefully (threads
/// detach); prefer an explicit stop.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    busy_rejections: Arc<AtomicU64>,
    engine: Option<Engine>,
    proxy: Arc<SqlProxy>,
    /// Warm-start snapshot location: loaded (verification-gated) before
    /// the listener serves its first connection, rewritten at drain time.
    snapshot_path: Option<PathBuf>,
}

impl Server {
    /// Binds `bind_addr` (use `127.0.0.1:0` for an ephemeral port), wraps
    /// `proxy`, and starts serving in the configured mode.
    pub fn start(
        proxy: Arc<SqlProxy>,
        config: ServerConfig,
        bind_addr: &str,
    ) -> io::Result<Server> {
        Server::launch(proxy, config, bind_addr, None)
    }

    /// Like [`Server::start`], but warm-starts from `snapshot_path` before
    /// accepting connections and persists a fresh snapshot there during
    /// drain (after the serving threads join, so every in-flight compile
    /// is included).
    ///
    /// The load is best-effort by design: a missing file is a silent cold
    /// start, and a corrupt / stale / version-skewed file logs a typed
    /// warning and cold-starts — a snapshot can cost a warm-up, never a
    /// wrong decision.
    pub fn start_with_snapshot(
        proxy: Arc<SqlProxy>,
        config: ServerConfig,
        bind_addr: &str,
        snapshot_path: impl Into<PathBuf>,
    ) -> io::Result<Server> {
        Server::launch(proxy, config, bind_addr, Some(snapshot_path.into()))
    }

    fn launch(
        proxy: Arc<SqlProxy>,
        config: ServerConfig,
        bind_addr: &str,
        snapshot_path: Option<PathBuf>,
    ) -> io::Result<Server> {
        if let Some(path) = &snapshot_path {
            match proxy.load_snapshot(path) {
                Ok(report) => {
                    if report.rejected > 0 {
                        eprintln!(
                            "bep-server: snapshot {}: {} entries failed re-verification \
                             (loaded {}); those templates start cold",
                            path.display(),
                            report.rejected,
                            report.loaded
                        );
                    }
                }
                Err(e) if snapshot::is_not_found(&e) => {} // first boot
                Err(e) => {
                    eprintln!(
                        "bep-server: snapshot {} unusable ({e}); starting cold",
                        path.display()
                    );
                }
            }
        }
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let busy_rejections = Arc::new(AtomicU64::new(0));
        let shared = Arc::new(ConnShared {
            proxy: Arc::clone(&proxy),
            config,
            shutdown: Arc::clone(&shutdown),
            addr,
        });

        let engine = match config.mode {
            ServerMode::EventDriven => {
                let (waker, waker_rx) = waker_pair()?;
                let loop_shared = Arc::clone(&shared);
                let loop_busy = Arc::clone(&busy_rejections);
                let thread = std::thread::Builder::new()
                    .name("bep-server-reactor".into())
                    .spawn(move || {
                        event_loop::run(listener, loop_shared, waker_rx, loop_busy);
                    })?;
                Engine::Event { thread, waker }
            }
            ServerMode::Blocking => {
                let handler_shared = Arc::clone(&shared);
                let pool = ThreadPool::new(config.workers, config.queue_capacity, move |stream| {
                    // A panicking handler must not kill the worker; the
                    // connection guard inside still sweeps its sessions
                    // during unwind.
                    let _ = catch_unwind(AssertUnwindSafe(|| {
                        handle_connection(&handler_shared, stream);
                    }));
                });

                let accept_shutdown = Arc::clone(&shutdown);
                let accept_busy = Arc::clone(&busy_rejections);
                let thread = std::thread::Builder::new()
                    .name("bep-server-accept".into())
                    .spawn(move || {
                        accept_loop(&listener, &pool, &shared, &accept_shutdown, &accept_busy);
                        pool
                    })?;
                Engine::Blocking(thread)
            }
        };

        Ok(Server {
            addr,
            shutdown,
            busy_rejections,
            engine: Some(engine),
            proxy,
            snapshot_path,
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections turned away with `busy` so far.
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Acquire)
    }

    /// `true` once shutdown has been requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown and blocks until drained: connections finish
    /// their in-flight request, orphaned sessions are swept, serving
    /// threads join.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.finish();
    }

    /// Blocks until a client-initiated `shutdown` request stops the
    /// server, then drains exactly like [`Server::shutdown`].
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.finish();
    }

    fn finish(&mut self) {
        let Some(engine) = self.engine.take() else {
            return;
        };
        match engine {
            Engine::Blocking(handle) => {
                // Poke the blocking accept() so it observes the flag.
                let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
                if let Ok(pool) = handle.join() {
                    pool.shutdown();
                }
            }
            Engine::Event { thread, waker } => {
                waker.wake();
                let _ = thread.join();
            }
        }
        // Drained: every connection has answered and joined, so the plan
        // cache is quiescent — persist it for the next process's warm
        // start. Save failures only cost the warming, never the drain.
        if let Some(path) = &self.snapshot_path {
            if let Err(e) = self.proxy.save_snapshot(path) {
                eprintln!(
                    "bep-server: failed to save snapshot {} ({e})",
                    path.display()
                );
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.shutdown.store(true, Ordering::Release);
            self.finish();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &ThreadPool<TcpStream>,
    shared: &Arc<ConnShared>,
    shutdown: &AtomicBool,
    busy_rejections: &AtomicU64,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            // The poke connection (or a late client); turn it away.
            reject(stream, &Response::Bye, shared.config.write_timeout);
            return;
        }
        if let Err(rejection) = pool.try_execute(stream) {
            // Saturation: every worker busy and the backlog full. The
            // rejected stream comes back with the pool's load snapshot, so
            // the client hears a quantified `busy` instead of a silent
            // close or an unbounded wait.
            busy_rejections.fetch_add(1, Ordering::Relaxed);
            reject(
                rejection.item,
                &Response::Busy {
                    queue_depth: rejection.queue_depth as u64,
                    workers: rejection.workers as u64,
                },
                shared.config.write_timeout,
            );
        }
    }
}

/// Writes one terminal response on a connection the server will not
/// serve, then closes it politely. "Politely" matters: the client has
/// usually pipelined its `hello` already, and closing a socket with
/// unread data sends an RST that destroys the very `busy` frame we just
/// wrote. So the rejection drains the client's bytes until FIN (briefly),
/// and runs on its own short-lived thread to keep the accept/event loop
/// free.
pub(crate) fn reject(mut stream: TcpStream, response: &Response, write_timeout: Duration) {
    let wire = response.to_wire();
    let _ = std::thread::Builder::new()
        .name("bep-server-reject".into())
        .spawn(move || {
            let _ = stream.set_nonblocking(false);
            let _ = stream.set_write_timeout(Some(write_timeout));
            let _ = stream.set_nodelay(true);
            let _ = write_frame(&mut stream, wire.as_bytes());
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let deadline = std::time::Instant::now() + Duration::from_millis(500);
            let mut sink = [0u8; 256];
            loop {
                use std::io::Read;
                match stream.read(&mut sink) {
                    Ok(0) => break, // client saw our frame and closed: FIN
                    Ok(_) => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        if std::time::Instant::now() >= deadline {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
}
