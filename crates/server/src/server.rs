//! The TCP server: accept loop, admission control, graceful shutdown.
//!
//! [`Server::start`] binds a listener, spawns the worker
//! [`ThreadPool`](crate::pool::ThreadPool), and hands each accepted
//! connection to a worker for its whole lifetime (connection-per-worker:
//! the proxy's decision path is CPU-bound, so more in-flight connections
//! than workers would only add queueing delay). Admission control is
//! explicit: when every worker is occupied and the bounded backlog is
//! full, the acceptor immediately writes one `busy` frame and closes —
//! overload produces fast typed rejections, never a stalled accept queue.
//!
//! Shutdown — either [`Server::shutdown`] from the owning process or a
//! client's `shutdown` request — is graceful: the flag flips, the accept
//! loop is poked awake and stops admitting, every connection loop finishes
//! its in-flight request, answers it, sends `bye`, and its drop guard ends
//! any sessions the client left behind. Only then are the workers joined.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bep_core::SqlProxy;

use crate::conn::{handle_connection, ConnShared};
use crate::framing::{write_frame, MAX_FRAME};
use crate::pool::ThreadPool;
use crate::protocol::Response;

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads; each owns one live connection at a time.
    pub workers: usize,
    /// Accepted connections that may wait for a worker beyond the ones
    /// being served; anything past `workers + queue_capacity` gets `busy`.
    pub queue_capacity: usize,
    /// Largest accepted frame in bytes.
    pub max_frame: usize,
    /// Socket read timeout; doubles as the poll tick for the shutdown flag
    /// and the idle clock.
    pub poll_interval: Duration,
    /// Socket write timeout (bounds a stuck peer's backpressure).
    pub write_timeout: Duration,
    /// A connection silent this long is reaped and its sessions ended.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            queue_capacity: 2,
            max_frame: MAX_FRAME,
            poll_interval: Duration::from_millis(20),
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// A running enforcement server. Dropping without calling
/// [`Server::shutdown`] or [`Server::wait`] aborts ungracefully (threads
/// detach); prefer an explicit stop.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    busy_rejections: Arc<AtomicU64>,
    accept_thread: Option<JoinHandle<ThreadPool<TcpStream>>>,
}

impl Server {
    /// Binds `bind_addr` (use `127.0.0.1:0` for an ephemeral port), wraps
    /// `proxy`, and starts serving.
    pub fn start(
        proxy: Arc<SqlProxy>,
        config: ServerConfig,
        bind_addr: &str,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(bind_addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let busy_rejections = Arc::new(AtomicU64::new(0));
        let shared = Arc::new(ConnShared {
            proxy,
            config,
            shutdown: Arc::clone(&shutdown),
            addr,
        });
        let handler_shared = Arc::clone(&shared);
        let pool = ThreadPool::new(config.workers, config.queue_capacity, move |stream| {
            // A panicking handler must not kill the worker; the connection
            // guard inside still sweeps its sessions during unwind.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                handle_connection(&handler_shared, stream);
            }));
        });

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_busy = Arc::clone(&busy_rejections);
        let accept_thread = std::thread::Builder::new()
            .name("bep-server-accept".into())
            .spawn(move || {
                accept_loop(&listener, &pool, &shared, &accept_shutdown, &accept_busy);
                pool
            })?;

        Ok(Server {
            addr,
            shutdown,
            busy_rejections,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections turned away with `busy` so far.
    pub fn busy_rejections(&self) -> u64 {
        self.busy_rejections.load(Ordering::Acquire)
    }

    /// `true` once shutdown has been requested (locally or by a client).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Requests shutdown and blocks until drained: connections finish
    /// their in-flight request, orphaned sessions are swept, workers join.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.finish();
    }

    /// Blocks until a client-initiated `shutdown` request stops the
    /// server, then drains exactly like [`Server::shutdown`].
    pub fn wait(mut self) {
        while !self.shutdown.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(20));
        }
        self.finish();
    }

    fn finish(&mut self) {
        let Some(handle) = self.accept_thread.take() else {
            return;
        };
        // Poke the blocking accept() so it observes the flag.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Ok(pool) = handle.join() {
            pool.shutdown();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.shutdown.store(true, Ordering::Release);
            self.finish();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    pool: &ThreadPool<TcpStream>,
    shared: &Arc<ConnShared>,
    shutdown: &AtomicBool,
    busy_rejections: &AtomicU64,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::Acquire) {
            // The poke connection (or a late client); turn it away.
            reject(stream, &Response::Bye, shared.config.write_timeout);
            return;
        }
        if let Err(stream) = pool.try_execute(stream) {
            // Saturation: every worker busy and the backlog full. The
            // rejected stream comes back, so the client hears `busy`
            // instead of a silent close or an unbounded wait.
            busy_rejections.fetch_add(1, Ordering::Relaxed);
            reject(stream, &Response::Busy, shared.config.write_timeout);
        }
    }
}

/// Writes one terminal response on a connection the server will not
/// serve, then closes it politely. "Politely" matters: the client has
/// usually pipelined its `hello` already, and closing a socket with
/// unread data sends an RST that destroys the very `busy` frame we just
/// wrote. So the rejection drains the client's bytes until FIN (briefly),
/// and runs on its own short-lived thread to keep the accept loop free.
fn reject(mut stream: TcpStream, response: &Response, write_timeout: Duration) {
    let wire = response.to_wire();
    let _ = std::thread::Builder::new()
        .name("bep-server-reject".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(write_timeout));
            let _ = stream.set_nodelay(true);
            let _ = write_frame(&mut stream, wire.as_bytes());
            let _ = stream.shutdown(std::net::Shutdown::Write);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
            let deadline = std::time::Instant::now() + Duration::from_millis(500);
            let mut sink = [0u8; 256];
            loop {
                use std::io::Read;
                match stream.read(&mut sink) {
                    Ok(0) => break, // client saw our frame and closed: FIN
                    Ok(_) => continue,
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                        ) =>
                    {
                        if std::time::Instant::now() >= deadline {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
}
