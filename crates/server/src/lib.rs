//! `bep-server` — the networked enforcement front-end.
//!
//! Blockaid-style deployments put the compliance checker on the network
//! path as a SQL proxy; this crate is that missing serving layer for the
//! workspace's [`SqlProxy`](bep_core::SqlProxy). It is built on `std::net`
//! alone (the workspace stays offline-buildable — no async runtime):
//!
//! * [`protocol`] — typed `hello`/`begin`/`execute`/`trace`/`stats`/
//!   `metrics`/`journal`/`subscribe`/`end`/`shutdown` messages over a
//!   hand-rolled JSON layer ([`json`]); `trace`, `journal`, and pushed
//!   `events` frames carry decision provenance
//!   ([`bep_core::DecisionEvent`], including its solver-span summary),
//!   `metrics` the Prometheus text exposition;
//! * [`framing`] — 4-byte length-prefixed frames with split-read tolerance
//!   and oversized-frame rejection, in both pull
//!   ([`framing::FrameReader`]) and push ([`framing::FrameDecoder`]) form;
//! * [`reactor`] — a minimal level-triggered epoll abstraction (raw
//!   syscalls against the libc `std` already links: no external deps);
//! * [`event_loop`] — the default front-end: one reactor thread holding
//!   every connection, pipelined frames, cross-connection decision
//!   batching through [`bep_core::SqlProxy::execute_batch`], and per-tick
//!   journal pushes to `subscribe`d connections (bounded backlog, exact
//!   drop accounting);
//! * [`pool`] — a fixed worker thread-pool with a bounded backlog and
//!   explicit admission control (saturation returns the connection to the
//!   acceptor, which answers `busy` with a load snapshot — the server
//!   never stalls); drives the blocking front-end kept for differential
//!   comparison ([`server::ServerMode::Blocking`]);
//! * [`conn`] — per-connection protocol state shared by both front-ends:
//!   handshake enforcement, connection-scoped session ownership, typed
//!   errors for malformed frames, idle reaping, and a drop guard that
//!   sweeps orphaned sessions;
//! * [`server`] — front-end selection and graceful drain-then-join
//!   shutdown;
//! * [`client`] — the blocking client used by tests, the benches
//!   (T8/T12), and the `serve_calendar` example; supports pipelined
//!   bursts via [`client::Client::execute_pipelined`].

#![warn(missing_docs)]

pub mod client;
pub(crate) mod conn;
pub(crate) mod event_loop;
pub mod framing;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod reactor;
pub mod server;

pub use client::{Client, ClientError, EventBatch, ExecOutcome, JournalPage, TraceInfo};
pub use protocol::{ErrorKind, Request, Response, WireStats, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig, ServerMode};
