//! `bep-server` — the networked enforcement front-end.
//!
//! Blockaid-style deployments put the compliance checker on the network
//! path as a SQL proxy; this crate is that missing serving layer for the
//! workspace's [`SqlProxy`](bep_core::SqlProxy). It is built on `std::net`
//! alone (the workspace stays offline-buildable — no async runtime):
//!
//! * [`protocol`] — typed `hello`/`begin`/`execute`/`trace`/`stats`/
//!   `metrics`/`journal`/`end`/`shutdown` messages over a hand-rolled
//!   JSON layer ([`json`]); `trace` and `journal` carry decision
//!   provenance ([`bep_core::DecisionEvent`]), `metrics` the Prometheus
//!   text exposition;
//! * [`framing`] — 4-byte length-prefixed frames with split-read tolerance
//!   and oversized-frame rejection;
//! * [`pool`] — a fixed worker thread-pool with a bounded backlog and
//!   explicit admission control (saturation returns the connection to the
//!   acceptor, which answers `busy` — the server never stalls);
//! * [`conn`] — the per-connection loop: handshake enforcement,
//!   connection-scoped session ownership, typed errors for malformed
//!   frames, idle reaping, and a drop guard that sweeps orphaned sessions;
//! * [`server`] — accept loop and graceful drain-then-join shutdown;
//! * [`client`] — the blocking client used by tests, the benches (T8),
//!   and the `serve_calendar` example.

#![warn(missing_docs)]

pub mod client;
pub(crate) mod conn;
pub mod framing;
pub mod json;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, ExecOutcome, JournalPage, TraceInfo};
pub use protocol::{ErrorKind, Request, Response, WireStats, PROTOCOL_VERSION};
pub use server::{Server, ServerConfig};
