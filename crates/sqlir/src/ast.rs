//! Typed AST for the supported SQL subset.

use crate::value::{SqlType, Value};

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Select(Query),
    /// An `INSERT` statement.
    Insert(Insert),
    /// An `UPDATE` statement.
    Update(Update),
    /// A `DELETE` statement.
    Delete(Delete),
    /// A `CREATE TABLE` statement.
    CreateTable(CreateTable),
}

impl Statement {
    /// Returns the inner query if this is a `SELECT`.
    pub fn as_select(&self) -> Option<&Query> {
        match self {
            Statement::Select(q) => Some(q),
            _ => None,
        }
    }

    /// Returns `true` if the statement only reads data.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_))
    }
}

/// Whether duplicate rows are kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distinctness {
    /// `SELECT ALL` (the default).
    All,
    /// `SELECT DISTINCT`.
    Distinct,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `DISTINCT` or `ALL`.
    pub distinct: Distinctness,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// Tables in the `FROM` clause (comma-separated cross products).
    pub from: Vec<TableRef>,
    /// `JOIN ... ON ...` clauses, applied left to right after `from`.
    pub joins: Vec<JoinClause>,
    /// The `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` keys.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (requires `group_by` or aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

impl Query {
    /// Creates an empty `SELECT` skeleton for programmatic construction.
    pub fn new() -> Query {
        Query {
            distinct: Distinctness::All,
            items: Vec::new(),
            from: Vec::new(),
            joins: Vec::new(),
            where_clause: None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// Returns `true` if any select item is an aggregate function.
    pub fn has_aggregates(&self) -> bool {
        self.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }) || self
            .having
            .as_ref()
            .map(|h| h.contains_aggregate())
            .unwrap_or(false)
    }

    /// Iterates over every table referenced in `FROM` and `JOIN` clauses.
    pub fn table_refs(&self) -> impl Iterator<Item = &TableRef> {
        self.from.iter().chain(self.joins.iter().map(|j| &j.table))
    }
}

impl Default for Query {
    fn default() -> Query {
        Query::new()
    }
}

/// One entry in a `SELECT` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// The output-column alias, if any.
        alias: Option<String>,
    },
}

/// A table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// The table name.
    pub table: String,
    /// The binding alias (`FROM Events e`).
    pub alias: Option<String>,
}

impl TableRef {
    /// Creates an unaliased reference.
    pub fn new(table: impl Into<String>) -> TableRef {
        TableRef {
            table: table.into(),
            alias: None,
        }
    }

    /// Creates an aliased reference.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> TableRef {
        TableRef {
            table: table.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name this reference binds in scope (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// An inner-join clause (`JOIN t ON cond`).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// The join predicate.
    pub on: Expr,
}

/// A sort key in `ORDER BY`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The key expression.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub desc: bool,
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// The qualifying table binding, if written.
    pub table: Option<String>,
    /// The column name.
    pub column: String,
}

impl ColumnRef {
    /// Creates an unqualified reference.
    pub fn new(column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// Creates a qualified reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> ColumnRef {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

/// A query parameter placeholder.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Param {
    /// `?Name`.
    Named(String),
    /// `?`, identified by 0-based occurrence index.
    Positional(usize),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`.
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `AND`.
    And,
    /// `OR`.
    Or,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
}

impl BinaryOp {
    /// Returns `true` for the six comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// The SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// The comparison with operand order swapped (`<` becomes `>`).
    pub fn flipped(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::Le => BinaryOp::Ge,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::Ge => BinaryOp::Le,
            other => other,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Logical `NOT`.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate (set) functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetFunc {
    /// `COUNT`.
    Count,
    /// `SUM`.
    Sum,
    /// `MIN`.
    Min,
    /// `MAX`.
    Max,
    /// `AVG`.
    Avg,
}

impl SetFunc {
    /// The SQL spelling of the function.
    pub fn name(self) -> &'static str {
        match self {
            SetFunc::Count => "COUNT",
            SetFunc::Sum => "SUM",
            SetFunc::Min => "MIN",
            SetFunc::Max => "MAX",
            SetFunc::Avg => "AVG",
        }
    }

    /// Parses a function name (case-insensitive).
    pub fn parse(name: &str) -> Option<SetFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(SetFunc::Count),
            "SUM" => Some(SetFunc::Sum),
            "MIN" => Some(SetFunc::Min),
            "MAX" => Some(SetFunc::Max),
            "AVG" => Some(SetFunc::Avg),
            _ => None,
        }
    }
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A parameter placeholder.
    Param(Param),
    /// A column reference.
    Column(ColumnRef),
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `true` for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate values.
        list: Vec<Expr>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// The tested expression.
        expr: Box<Expr>,
        /// The subquery (must project one column).
        query: Box<Query>,
        /// `true` for `NOT IN`.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// `true` for `NOT EXISTS`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `true` for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern`.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression.
        pattern: Box<Expr>,
        /// `true` for `NOT LIKE`.
        negated: bool,
    },
    /// An aggregate function call; `arg` is `None` for `COUNT(*)`.
    Agg {
        /// The aggregate function.
        func: SetFunc,
        /// Argument expression (`None` means `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// `true` for `COUNT(DISTINCT x)` etc.
        distinct: bool,
    },
}

impl Expr {
    /// An integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// A string literal.
    pub fn string(v: impl Into<String>) -> Expr {
        Expr::Literal(Value::Str(v.into()))
    }

    /// An unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::new(name))
    }

    /// A qualified column reference.
    pub fn qcol(table: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column(ColumnRef::qualified(table, name))
    }

    /// A named parameter.
    pub fn named_param(name: impl Into<String>) -> Expr {
        Expr::Param(Param::Named(name.into()))
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Builds `lhs = rhs`.
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, lhs, rhs)
    }

    /// Builds `lhs AND rhs`.
    pub fn and(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinaryOp::And, lhs, rhs)
    }

    /// Conjoins a list of predicates; `None` if the list is empty.
    pub fn and_all(exprs: impl IntoIterator<Item = Expr>) -> Option<Expr> {
        exprs.into_iter().reduce(Expr::and)
    }

    /// Returns `true` if this expression (transitively) contains an aggregate.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } => false,
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
        }
    }

    /// Splits an expression into its top-level `AND` conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    op: BinaryOp::And,
                    lhs,
                    rhs,
                } => {
                    walk(lhs, out);
                    walk(rhs, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// Calls `f` on this expression and every sub-expression (pre-order),
    /// including expressions inside subqueries.
    pub fn walk(&self, f: &mut dyn FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::InSubquery { expr, query, .. } => {
                expr.walk(f);
                walk_query(query, f);
            }
            Expr::Exists { query, .. } => walk_query(query, f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.walk(f);
                pattern.walk(f);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
        }
    }
}

/// Calls `f` on every expression appearing anywhere in a query.
pub fn walk_query(q: &Query, f: &mut dyn FnMut(&Expr)) {
    for item in &q.items {
        if let SelectItem::Expr { expr, .. } = item {
            expr.walk(f);
        }
    }
    for j in &q.joins {
        j.on.walk(f);
    }
    if let Some(w) = &q.where_clause {
        w.walk(f);
    }
    for g in &q.group_by {
        g.walk(f);
    }
    if let Some(h) = &q.having {
        h.walk(f);
    }
    for k in &q.order_by {
        k.expr.walk(f);
    }
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list (empty means "all columns in schema order").
    pub columns: Vec<String>,
    /// One or more value rows.
    pub rows: Vec<Vec<Expr>>,
}

/// A `SET` assignment inside `UPDATE`.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// Target column.
    pub column: String,
    /// New value.
    pub value: Expr,
}

/// An `UPDATE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// Column assignments.
    pub assignments: Vec<Assignment>,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// A `DELETE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Row filter.
    pub where_clause: Option<Expr>,
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: SqlType,
    /// `NOT NULL` constraint.
    pub not_null: bool,
    /// Inline `PRIMARY KEY` marker.
    pub primary_key: bool,
    /// Inline `UNIQUE` marker.
    pub unique: bool,
}

/// A table-level constraint in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableConstraint {
    /// `PRIMARY KEY (c1, ...)`.
    PrimaryKey(Vec<String>),
    /// `UNIQUE (c1, ...)`.
    Unique(Vec<String>),
    /// `FOREIGN KEY (c1, ...) REFERENCES t (d1, ...)`.
    ForeignKey {
        /// Referencing columns.
        columns: Vec<String>,
        /// Referenced table.
        ref_table: String,
        /// Referenced columns (empty means the referenced primary key).
        ref_columns: Vec<String>,
    },
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_splitting() {
        let e = Expr::and(
            Expr::eq(Expr::col("a"), Expr::int(1)),
            Expr::and(
                Expr::eq(Expr::col("b"), Expr::int(2)),
                Expr::eq(Expr::col("c"), Expr::int(3)),
            ),
        );
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn and_all_handles_empty_and_single() {
        assert_eq!(Expr::and_all(Vec::new()), None);
        let single = Expr::eq(Expr::col("a"), Expr::int(1));
        assert_eq!(Expr::and_all(vec![single.clone()]), Some(single));
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg {
            func: SetFunc::Count,
            arg: None,
            distinct: false,
        };
        let nested = Expr::binary(BinaryOp::Add, agg, Expr::int(1));
        assert!(nested.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn table_ref_binding() {
        assert_eq!(TableRef::new("Events").binding(), "Events");
        assert_eq!(TableRef::aliased("Events", "e").binding(), "e");
    }

    #[test]
    fn flipped_comparisons() {
        assert_eq!(BinaryOp::Lt.flipped(), BinaryOp::Gt);
        assert_eq!(BinaryOp::Eq.flipped(), BinaryOp::Eq);
    }
}
