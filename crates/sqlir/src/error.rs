//! Error types for SQL parsing and parameter binding.

use std::fmt;

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Creates a parse error at the given byte offset.
    pub fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors produced by this crate outside of parsing proper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The input failed to parse.
    Parse(ParseError),
    /// A named parameter had no binding.
    UnboundParameter(String),
    /// A positional parameter index had no binding.
    UnboundPositional(usize),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => e.fmt(f),
            SqlError::UnboundParameter(name) => {
                write!(f, "no binding for named parameter ?{name}")
            }
            SqlError::UnboundPositional(idx) => {
                write!(f, "no binding for positional parameter #{idx}")
            }
        }
    }
}

impl std::error::Error for SqlError {}

impl From<ParseError> for SqlError {
    fn from(e: ParseError) -> SqlError {
        SqlError::Parse(e)
    }
}
