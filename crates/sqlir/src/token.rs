//! Hand-written SQL lexer.
//!
//! The lexer is case-insensitive for keywords but preserves identifier case
//! (schemas in this workspace use mixed-case names like `EId`). Tokens carry
//! the byte offset at which they start, which the parser threads into error
//! messages.

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// A bare identifier (table, column, alias, function name).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A string literal with quotes removed and `''` unescaped.
    Str(String),
    /// A named parameter `?Name`.
    NamedParam(String),
    /// A positional parameter `?` (0-based index in occurrence order).
    PositionalParam(usize),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `,`.
    Comma,
    /// `.`.
    Dot,
    /// `*`.
    Star,
    /// `=`.
    Eq,
    /// `<>` or `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `;`.
    Semicolon,
    /// End of input.
    Eof,
}

impl Tok {
    /// Returns a short description for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Int(i) => format!("integer `{i}`"),
            Tok::Str(s) => format!("string '{s}'"),
            Tok::NamedParam(n) => format!("parameter ?{n}"),
            Tok::PositionalParam(_) => "parameter ?".to_string(),
            Tok::LParen => "`(`".to_string(),
            Tok::RParen => "`)`".to_string(),
            Tok::Comma => "`,`".to_string(),
            Tok::Dot => "`.`".to_string(),
            Tok::Star => "`*`".to_string(),
            Tok::Eq => "`=`".to_string(),
            Tok::Ne => "`<>`".to_string(),
            Tok::Lt => "`<`".to_string(),
            Tok::Le => "`<=`".to_string(),
            Tok::Gt => "`>`".to_string(),
            Tok::Ge => "`>=`".to_string(),
            Tok::Plus => "`+`".to_string(),
            Tok::Minus => "`-`".to_string(),
            Tok::Slash => "`/`".to_string(),
            Tok::Semicolon => "`;`".to_string(),
            Tok::Eof => "end of input".to_string(),
        }
    }
}

/// A token paired with its starting byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Lexes an entire input string into tokens (ending with [`Tok::Eof`]).
pub fn lex(input: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let bytes = input.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut positional = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment: skip to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                toks.push(SpannedTok {
                    tok: Tok::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                toks.push(SpannedTok {
                    tok: Tok::RParen,
                    offset: start,
                });
                i += 1;
            }
            ',' => {
                toks.push(SpannedTok {
                    tok: Tok::Comma,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                toks.push(SpannedTok {
                    tok: Tok::Dot,
                    offset: start,
                });
                i += 1;
            }
            '*' => {
                toks.push(SpannedTok {
                    tok: Tok::Star,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                toks.push(SpannedTok {
                    tok: Tok::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '+' => {
                toks.push(SpannedTok {
                    tok: Tok::Plus,
                    offset: start,
                });
                i += 1;
            }
            '-' => {
                toks.push(SpannedTok {
                    tok: Tok::Minus,
                    offset: start,
                });
                i += 1;
            }
            '/' => {
                toks.push(SpannedTok {
                    tok: Tok::Slash,
                    offset: start,
                });
                i += 1;
            }
            '=' => {
                toks.push(SpannedTok {
                    tok: Tok::Eq,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(ParseError::new("unexpected `!`", start));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Le,
                        offset: start,
                    });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    toks.push(SpannedTok {
                        tok: Tok::Ne,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    toks.push(SpannedTok {
                        tok: Tok::Ge,
                        offset: start,
                    });
                    i += 2;
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::Gt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '?' => {
                i += 1;
                let ident_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i > ident_start {
                    toks.push(SpannedTok {
                        tok: Tok::NamedParam(input[ident_start..i].to_string()),
                        offset: start,
                    });
                } else {
                    toks.push(SpannedTok {
                        tok: Tok::PositionalParam(positional),
                        offset: start,
                    });
                    positional += 1;
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Strings are UTF-8; copy char-by-char from the slice.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
                toks.push(SpannedTok {
                    tok: Tok::Str(s),
                    offset: start,
                });
            }
            '0'..='9' => {
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("integer out of range: {text}"), start))?;
                toks.push(SpannedTok {
                    tok: Tok::Int(v),
                    offset: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // Quoted identifier.
                    i += 1;
                    let ident_start = i;
                    while i < bytes.len() && bytes[i] != b'"' {
                        i += 1;
                    }
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated quoted identifier", start));
                    }
                    toks.push(SpannedTok {
                        tok: Tok::Ident(input[ident_start..i].to_string()),
                        offset: start,
                    });
                    i += 1;
                } else {
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    toks.push(SpannedTok {
                        tok: Tok::Ident(input[start..i].to_string()),
                        offset: start,
                    });
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    start,
                ));
            }
        }
    }
    toks.push(SpannedTok {
        tok: Tok::Eof,
        offset: input.len(),
    });
    Ok(toks)
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Tok> {
        lex(input).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_basic_select() {
        let ts = toks("SELECT * FROM t WHERE a = 1");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("SELECT".into()),
                Tok::Star,
                Tok::Ident("FROM".into()),
                Tok::Ident("t".into()),
                Tok::Ident("WHERE".into()),
                Tok::Ident("a".into()),
                Tok::Eq,
                Tok::Int(1),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_params() {
        let ts = toks("? ?MyUId ?");
        assert_eq!(
            ts,
            vec![
                Tok::PositionalParam(0),
                Tok::NamedParam("MyUId".into()),
                Tok::PositionalParam(1),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_string_escapes() {
        let ts = toks("'it''s' ''");
        assert_eq!(
            ts,
            vec![Tok::Str("it's".into()), Tok::Str("".into()), Tok::Eof]
        );
    }

    #[test]
    fn lexes_comparison_operators() {
        let ts = toks("<> != <= >= < >");
        assert_eq!(
            ts,
            vec![
                Tok::Ne,
                Tok::Ne,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_line_comments() {
        let ts = toks("SELECT -- comment\n 1");
        assert_eq!(ts, vec![Tok::Ident("SELECT".into()), Tok::Int(1), Tok::Eof]);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lexes_quoted_identifier() {
        let ts = toks("\"Order\"");
        assert_eq!(ts, vec![Tok::Ident("Order".into()), Tok::Eof]);
    }

    #[test]
    fn lexes_unicode_string() {
        let ts = toks("'héllo ☃'");
        assert_eq!(ts, vec![Tok::Str("héllo ☃".into()), Tok::Eof]);
    }
}
