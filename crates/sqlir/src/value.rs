//! Runtime values and SQL scalar types.
//!
//! [`Value`] is the single dynamic value type shared by the whole workspace:
//! the parser produces it for literals, the database engine stores rows of it,
//! the logic crate uses it for constants in conjunctive queries, and policies
//! instantiate parameters with it.

use std::cmp::Ordering;
use std::fmt;

/// A SQL scalar type.
///
/// `minidb` uses these for column declarations and type checking; the parser
/// maps `CREATE TABLE` type names onto them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlType {
    /// 64-bit signed integers (`INT`, `INTEGER`, `BIGINT`).
    Int,
    /// UTF-8 strings (`TEXT`, `VARCHAR`, `CHAR`).
    Text,
    /// Booleans (`BOOL`, `BOOLEAN`).
    Bool,
}

impl SqlType {
    /// Returns the canonical SQL name of the type.
    pub fn name(self) -> &'static str {
        match self {
            SqlType::Int => "INT",
            SqlType::Text => "TEXT",
            SqlType::Bool => "BOOL",
        }
    }

    /// Parses a SQL type name (case-insensitive), accepting common synonyms.
    pub fn parse(name: &str) -> Option<SqlType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" => Some(SqlType::Int),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => Some(SqlType::Text),
            "BOOL" | "BOOLEAN" => Some(SqlType::Bool),
            _ => None,
        }
    }
}

impl fmt::Display for SqlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of a SQL comparison under three-valued logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpResult {
    /// The comparison is true.
    True,
    /// The comparison is false.
    False,
    /// The comparison involves `NULL` and is therefore unknown.
    Unknown,
}

impl CmpResult {
    /// Converts a boolean into a definite comparison result.
    pub fn from_bool(b: bool) -> CmpResult {
        if b {
            CmpResult::True
        } else {
            CmpResult::False
        }
    }

    /// Returns `true` only for [`CmpResult::True`] (SQL `WHERE` semantics).
    pub fn is_true(self) -> bool {
        self == CmpResult::True
    }

    /// Three-valued logical AND.
    pub fn and(self, other: CmpResult) -> CmpResult {
        use CmpResult::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued logical OR.
    pub fn or(self, other: CmpResult) -> CmpResult {
        use CmpResult::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued logical NOT. Not `std::ops::Not`: this is Kleene
    /// negation on a three-valued result, not boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> CmpResult {
        match self {
            CmpResult::True => CmpResult::False,
            CmpResult::False => CmpResult::True,
            CmpResult::Unknown => CmpResult::Unknown,
        }
    }
}

/// A dynamically-typed SQL value.
///
/// Equality (`PartialEq`/`Eq`/`Hash`) is *structural*: `Null == Null`. This is
/// the right notion for storage, deduplication, and logic; SQL's three-valued
/// comparison semantics live in [`Value::sql_cmp`] and are applied by the
/// expression evaluator, not by `==`.
// The derived `Ord` agrees with [`Value::total_cmp`] (variant declaration
// order is Null < Int < Str < Bool).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The SQL `NULL`.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// Returns a string value from anything string-like.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Returns `true` if the value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value's runtime type, or `None` for `NULL`.
    pub fn sql_type(&self) -> Option<SqlType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(SqlType::Int),
            Value::Str(_) => Some(SqlType::Text),
            Value::Bool(_) => Some(SqlType::Bool),
        }
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued comparison: any `NULL` operand yields `None`.
    ///
    /// Cross-type comparisons between non-null values order by type tag
    /// (Int < Str < Bool), matching [`Value::total_cmp`], so that mixed data
    /// still sorts deterministically rather than erroring at runtime.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order over all values, used for `ORDER BY` and index keys.
    ///
    /// `NULL` sorts first; across types the order is
    /// `Null < Int < Str < Bool`.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Str(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality under three-valued logic.
    pub fn sql_eq(&self, other: &Value) -> CmpResult {
        match self.sql_cmp(other) {
            None => CmpResult::Unknown,
            Some(ord) => CmpResult::from_bool(ord == Ordering::Equal),
        }
    }

    /// Renders the value as a SQL literal (strings quoted and escaped).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// Evaluates SQL `LIKE` with `%` (any run) and `_` (any single char).
///
/// Comparison is case-sensitive, matching SQLite's default for non-ASCII
/// safety; patterns contain no escape sequences in our subset.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => t.is_empty(),
            Some(('%', rest)) => {
                // `%` matches any suffix, including the empty one.
                (0..=t.len()).any(|k| rec(&t[k..], rest))
            }
            Some(('_', rest)) => !t.is_empty() && rec(&t[1..], rest),
            Some((c, rest)) => t.first() == Some(c) && rec(&t[1..], rest),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parse_synonyms() {
        assert_eq!(SqlType::parse("integer"), Some(SqlType::Int));
        assert_eq!(SqlType::parse("VARCHAR"), Some(SqlType::Text));
        assert_eq!(SqlType::parse("Boolean"), Some(SqlType::Bool));
        assert_eq!(SqlType::parse("BLOB"), None);
    }

    #[test]
    fn null_propagates_in_sql_cmp() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), CmpResult::Unknown);
    }

    #[test]
    fn total_order_is_total() {
        let vals = [
            Value::Null,
            Value::Int(-3),
            Value::Int(7),
            Value::str("a"),
            Value::str("b"),
            Value::Bool(false),
            Value::Bool(true),
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                let ord = a.total_cmp(b);
                assert_eq!(ord, i.cmp(&j), "{a:?} vs {b:?}");
                assert_eq!(b.total_cmp(a), ord.reverse());
            }
        }
    }

    #[test]
    fn three_valued_logic_tables() {
        use CmpResult::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn like_basic_patterns() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn literal_escaping() {
        assert_eq!(Value::str("it's").to_sql_literal(), "'it''s'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Bool(true).to_sql_literal(), "TRUE");
    }
}
