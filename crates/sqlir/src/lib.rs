//! SQL intermediate representation for the `beyond-enforcement` toolkit.
//!
//! This crate provides a hand-written lexer and recursive-descent parser for
//! the SQL subset used throughout the workspace, together with a typed AST,
//! a pretty-printer whose output round-trips through the parser, and the
//! [`Value`] type shared by every other crate.
//!
//! The supported subset covers what database-backed web applications issue in
//! practice (and everything the HotOS '23 paper "Access Control for Database
//! Applications: Beyond Policy Enforcement" uses in its examples):
//!
//! * `SELECT [DISTINCT] ... FROM ... [JOIN ... ON ...]* [WHERE ...]
//!   [GROUP BY ...] [ORDER BY ...] [LIMIT n]` with aggregates
//!   (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`), `IN` lists and subqueries, `EXISTS`,
//!   `BETWEEN`, `LIKE`, and `IS [NOT] NULL`;
//! * `INSERT`, `UPDATE`, `DELETE`;
//! * `CREATE TABLE` with `PRIMARY KEY`, `UNIQUE`, `NOT NULL`, and
//!   `FOREIGN KEY ... REFERENCES` constraints;
//! * named (`?MyUId`) and positional (`?`) parameters, as used by
//!   view-based policies.
//!
//! # Examples
//!
//! ```
//! use sqlir::parse_statement;
//!
//! let stmt = parse_statement(
//!     "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId \
//!      WHERE a.UId = ?MyUId",
//! )
//! .unwrap();
//! let printed = stmt.to_string();
//! assert!(printed.contains("JOIN Attendance"));
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod params;
pub mod parser;
pub mod printer;
pub mod token;
pub mod value;

pub use ast::{
    Assignment, BinaryOp, ColumnDef, ColumnRef, CreateTable, Delete, Distinctness, Expr, Insert,
    JoinClause, OrderKey, Param, Query, SelectItem, SetFunc, Statement, TableConstraint, TableRef,
    UnaryOp, Update,
};
pub use error::{ParseError, SqlError};
pub use params::{bind_statement, collect_params, ParamBindings};
pub use parser::{parse_expr, parse_query, parse_statement, parse_statements};
pub use value::{CmpResult, SqlType, Value};
