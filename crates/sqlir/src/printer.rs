//! Pretty-printing of AST nodes back to SQL text.
//!
//! The printer's output parses back to the same AST (property-tested in the
//! crate's test suite), which lets every crate in the workspace treat SQL
//! strings and ASTs interchangeably.

use std::fmt;

use crate::ast::{
    Distinctness, Expr, Param, Query, SelectItem, Statement, TableConstraint, TableRef,
};

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => q.fmt(f),
            Statement::Insert(ins) => {
                write!(f, "INSERT INTO {}", ins.table)?;
                if !ins.columns.is_empty() {
                    write!(f, " ({})", ins.columns.join(", "))?;
                }
                f.write_str(" VALUES ")?;
                for (i, row) in ins.rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    write_comma_separated(f, row)?;
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Update(u) => {
                write!(f, "UPDATE {} SET ", u.table)?;
                for (i, a) in u.assignments.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{} = {}", a.column, a.value)?;
                }
                if let Some(w) = &u.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::Delete(d) => {
                write!(f, "DELETE FROM {}", d.table)?;
                if let Some(w) = &d.where_clause {
                    write!(f, " WHERE {w}")?;
                }
                Ok(())
            }
            Statement::CreateTable(ct) => {
                write!(f, "CREATE TABLE {} (", ct.name)?;
                let mut first = true;
                for c in &ct.columns {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    write!(f, "{} {}", c.name, c.ty)?;
                    if c.not_null {
                        f.write_str(" NOT NULL")?;
                    }
                    if c.primary_key {
                        f.write_str(" PRIMARY KEY")?;
                    }
                    if c.unique {
                        f.write_str(" UNIQUE")?;
                    }
                }
                for con in &ct.constraints {
                    if !first {
                        f.write_str(", ")?;
                    }
                    first = false;
                    match con {
                        TableConstraint::PrimaryKey(cols) => {
                            write!(f, "PRIMARY KEY ({})", cols.join(", "))?;
                        }
                        TableConstraint::Unique(cols) => {
                            write!(f, "UNIQUE ({})", cols.join(", "))?;
                        }
                        TableConstraint::ForeignKey {
                            columns,
                            ref_table,
                            ref_columns,
                        } => {
                            write!(
                                f,
                                "FOREIGN KEY ({}) REFERENCES {}",
                                columns.join(", "),
                                ref_table
                            )?;
                            if !ref_columns.is_empty() {
                                write!(f, " ({})", ref_columns.join(", "))?;
                            }
                        }
                    }
                }
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.distinct == Distinctness::Distinct {
            f.write_str("DISTINCT ")?;
        }
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match item {
                SelectItem::Wildcard => f.write_str("*")?,
                SelectItem::QualifiedWildcard(t) => write!(f, "{t}.*")?,
                SelectItem::Expr { expr, alias } => {
                    expr.fmt(f)?;
                    if let Some(a) = alias {
                        write!(f, " AS {a}")?;
                    }
                }
            }
        }
        if !self.from.is_empty() {
            f.write_str(" FROM ")?;
            for (i, t) in self.from.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                t.fmt(f)?;
            }
            for j in &self.joins {
                write!(f, " JOIN {} ON {}", j.table, j.on)?;
            }
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            write_comma_separated(f, &self.group_by)?;
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            f.write_str(" ORDER BY ")?;
            for (i, k) in self.order_by.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                k.expr.fmt(f)?;
                if k.desc {
                    f.write_str(" DESC")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.table)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

/// Operator precedence levels used to decide parenthesization.
fn precedence(e: &Expr) -> u8 {
    use crate::ast::BinaryOp::*;
    match e {
        Expr::Binary { op: Or, .. } => 1,
        Expr::Binary { op: And, .. } => 2,
        Expr::Unary {
            op: crate::ast::UnaryOp::Not,
            ..
        } => 3,
        Expr::Binary { op, .. } if op.is_comparison() => 4,
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. } => 4,
        Expr::Binary { op: Add | Sub, .. } => 5,
        Expr::Binary { op: Mul | Div, .. } => 6,
        _ => 7,
    }
}

fn write_operand(f: &mut fmt::Formatter<'_>, parent: u8, child: &Expr) -> fmt::Result {
    if precedence(child) < parent {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

/// Like [`write_operand`] but also parenthesizes equal-precedence children,
/// for right operands of non-associative positions.
fn write_operand_strict(f: &mut fmt::Formatter<'_>, parent: u8, child: &Expr) -> fmt::Result {
    if precedence(child) <= parent {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&v.to_sql_literal()),
            Expr::Param(Param::Named(n)) => write!(f, "?{n}"),
            Expr::Param(Param::Positional(_)) => f.write_str("?"),
            Expr::Column(c) => match &c.table {
                Some(t) => write!(f, "{t}.{}", c.column),
                None => f.write_str(&c.column),
            },
            Expr::Unary { op, expr } => match op {
                crate::ast::UnaryOp::Not => {
                    f.write_str("NOT ")?;
                    write_operand(f, 3, expr)
                }
                crate::ast::UnaryOp::Neg => {
                    f.write_str("-")?;
                    write_operand_strict(f, 6, expr)
                }
            },
            Expr::Binary { op, lhs, rhs } => {
                let p = precedence(self);
                if op.is_comparison() {
                    // Comparisons are non-associative on both sides:
                    // `a = b = c` and `a BETWEEN x AND y = c` are invalid.
                    write_operand_strict(f, p, lhs)?;
                    write!(f, " {} ", op.symbol())?;
                    write_operand_strict(f, p, rhs)
                } else {
                    // The grammar is left-associative, so a right operand at
                    // equal precedence needs parentheses — both to round-trip
                    // the tree shape and for correctness of `-` and `/`.
                    write_operand(f, p, lhs)?;
                    write!(f, " {} ", op.symbol())?;
                    write_operand_strict(f, p, rhs)
                }
            }
            Expr::IsNull { expr, negated } => {
                write_operand_strict(f, 4, expr)?;
                f.write_str(if *negated { " IS NOT NULL" } else { " IS NULL" })
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write_operand_strict(f, 4, expr)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                write_comma_separated(f, list)?;
                f.write_str(")")
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                write_operand_strict(f, 4, expr)?;
                f.write_str(if *negated { " NOT IN (" } else { " IN (" })?;
                query.fmt(f)?;
                f.write_str(")")
            }
            Expr::Exists { query, negated } => {
                if *negated {
                    f.write_str("NOT ")?;
                }
                write!(f, "EXISTS ({query})")
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                write_operand_strict(f, 4, expr)?;
                f.write_str(if *negated {
                    " NOT BETWEEN "
                } else {
                    " BETWEEN "
                })?;
                write_operand_strict(f, 4, low)?;
                f.write_str(" AND ")?;
                write_operand_strict(f, 4, high)
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                write_operand_strict(f, 4, expr)?;
                f.write_str(if *negated { " NOT LIKE " } else { " LIKE " })?;
                write_operand_strict(f, 4, pattern)
            }
            Expr::Agg {
                func,
                arg,
                distinct,
            } => {
                write!(f, "{}(", func.name())?;
                match arg {
                    None => f.write_str("*")?,
                    Some(a) => {
                        if *distinct {
                            f.write_str("DISTINCT ")?;
                        }
                        a.fmt(f)?;
                    }
                }
                f.write_str(")")
            }
        }
    }
}

fn write_comma_separated(f: &mut fmt::Formatter<'_>, items: &[Expr]) -> fmt::Result {
    for (i, e) in items.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        fmt::Display::fmt(e, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_statement};

    /// Statements round-trip: parse -> print -> parse yields the same AST.
    fn roundtrip(sql: &str) {
        let ast1 = parse_statement(sql).unwrap();
        let printed = ast1.to_string();
        let ast2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("reparse of `{printed}` failed: {e}"));
        assert_eq!(
            ast1, ast2,
            "round-trip changed AST for `{sql}` -> `{printed}`"
        );
    }

    #[test]
    fn roundtrips_paper_examples() {
        roundtrip("SELECT EId FROM Attendance WHERE UId = ?MyUId");
        roundtrip("SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId");
        roundtrip("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2");
        roundtrip("SELECT * FROM Events WHERE EId = 2");
        roundtrip("SELECT name FROM Employees WHERE age >= 60");
    }

    #[test]
    fn roundtrips_complex_queries() {
        roundtrip(
            "SELECT DISTINCT e.Title AS t, COUNT(*) AS n FROM Events e \
             JOIN Attendance a ON e.EId = a.EId WHERE a.UId = 3 AND (e.Kind = 'x' OR e.Kind = 'y') \
             GROUP BY e.Title HAVING COUNT(*) >= 2 ORDER BY n DESC, t LIMIT 10",
        );
        roundtrip("SELECT 1 FROM t WHERE a NOT IN (1, 2) AND b IS NOT NULL");
        roundtrip("SELECT 1 FROM t WHERE NOT EXISTS (SELECT 1 FROM u WHERE u.x = t.x)");
        roundtrip("SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 OR b LIKE 'x%'");
        roundtrip("SELECT 1 FROM t WHERE a IN (SELECT b FROM u WHERE u.c = 1)");
    }

    #[test]
    fn roundtrips_dml_and_ddl() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x''y'), (2, NULL)");
        roundtrip("UPDATE t SET a = a + 1 WHERE b < 10");
        roundtrip("DELETE FROM t WHERE a = 1");
        roundtrip(
            "CREATE TABLE t (a INT NOT NULL PRIMARY KEY, b TEXT, c BOOL NOT NULL, \
             UNIQUE (b), FOREIGN KEY (a) REFERENCES u (x))",
        );
    }

    #[test]
    fn parenthesization_preserves_precedence() {
        let e = parse_expr("(a = 1 OR b = 2) AND c = 3").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
        assert!(printed.contains('('), "needs parens: {printed}");
    }

    #[test]
    fn not_binds_tighter_than_and() {
        let e = parse_expr("NOT (a = 1 AND b = 2)").unwrap();
        let printed = e.to_string();
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }

    #[test]
    fn arithmetic_parens() {
        let e = parse_expr("(1 + 2) * 3").unwrap();
        let printed = e.to_string();
        assert_eq!(printed, "(1 + 2) * 3");
        assert_eq!(parse_expr(&printed).unwrap(), e);
    }
}
