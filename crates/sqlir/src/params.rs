//! Parameter collection and binding.
//!
//! Policies and applications use named parameters (`?MyUId`) and positional
//! parameters (`?`). [`collect_params`] enumerates the parameters a statement
//! mentions; [`bind_statement`] substitutes literal values for them, which is
//! how a policy view is instantiated for a concrete session.

use std::collections::BTreeSet;

use crate::ast::{walk_query, Assignment, Expr, Param, Query, SelectItem, Statement};
use crate::error::SqlError;
use crate::value::Value;

/// A set of bindings from parameters to values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamBindings {
    named: Vec<(String, Value)>,
    positional: Vec<Value>,
}

impl ParamBindings {
    /// Creates an empty binding set.
    pub fn new() -> ParamBindings {
        ParamBindings::default()
    }

    /// Adds (or replaces) a named binding and returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, value: impl Into<Value>) -> ParamBindings {
        self.set(name, value);
        self
    }

    /// Adds (or replaces) a named binding.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<Value>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.named.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value;
        } else {
            self.named.push((name, value));
        }
    }

    /// Appends a positional binding (for the next `?`).
    pub fn push(&mut self, value: impl Into<Value>) {
        self.positional.push(value.into());
    }

    /// Appends a positional binding and returns `self` for chaining.
    pub fn with_positional(mut self, value: impl Into<Value>) -> ParamBindings {
        self.push(value);
        self
    }

    /// Looks up a named binding.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.named.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Looks up a positional binding.
    pub fn get_positional(&self, index: usize) -> Option<&Value> {
        self.positional.get(index)
    }

    /// Iterates over the named bindings.
    pub fn named_iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.named.iter().map(|(n, v)| (n.as_str(), v))
    }

    fn resolve(&self, p: &Param) -> Result<Value, SqlError> {
        match p {
            Param::Named(n) => self
                .get(n)
                .cloned()
                .ok_or_else(|| SqlError::UnboundParameter(n.clone())),
            Param::Positional(i) => self
                .get_positional(*i)
                .cloned()
                .ok_or(SqlError::UnboundPositional(*i)),
        }
    }
}

/// Returns the named parameters mentioned anywhere in a statement (sorted),
/// plus the count of positional parameters.
pub fn collect_params(stmt: &Statement) -> (BTreeSet<String>, usize) {
    let mut named = BTreeSet::new();
    let mut max_positional = 0usize;
    let mut visit = |e: &Expr| {
        if let Expr::Param(p) = e {
            match p {
                Param::Named(n) => {
                    named.insert(n.clone());
                }
                Param::Positional(i) => max_positional = max_positional.max(i + 1),
            }
        }
    };
    match stmt {
        Statement::Select(q) => walk_query(q, &mut visit),
        Statement::Insert(ins) => {
            for row in &ins.rows {
                for e in row {
                    e.walk(&mut visit);
                }
            }
        }
        Statement::Update(u) => {
            for a in &u.assignments {
                a.value.walk(&mut visit);
            }
            if let Some(w) = &u.where_clause {
                w.walk(&mut visit);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &d.where_clause {
                w.walk(&mut visit);
            }
        }
        Statement::CreateTable(_) => {}
    }
    (named, max_positional)
}

/// Substitutes parameter values throughout a statement.
///
/// Fails with [`SqlError::UnboundParameter`] / [`SqlError::UnboundPositional`]
/// if the statement mentions a parameter the bindings don't cover.
pub fn bind_statement(stmt: &Statement, bindings: &ParamBindings) -> Result<Statement, SqlError> {
    Ok(match stmt {
        Statement::Select(q) => Statement::Select(bind_query(q, bindings)?),
        Statement::Insert(ins) => {
            let mut out = ins.clone();
            for row in &mut out.rows {
                for e in row.iter_mut() {
                    *e = bind_expr(e, bindings)?;
                }
            }
            Statement::Insert(out)
        }
        Statement::Update(u) => {
            let mut out = u.clone();
            out.assignments = u
                .assignments
                .iter()
                .map(|a| {
                    Ok(Assignment {
                        column: a.column.clone(),
                        value: bind_expr(&a.value, bindings)?,
                    })
                })
                .collect::<Result<_, SqlError>>()?;
            out.where_clause = match &u.where_clause {
                Some(w) => Some(bind_expr(w, bindings)?),
                None => None,
            };
            Statement::Update(out)
        }
        Statement::Delete(d) => {
            let mut out = d.clone();
            out.where_clause = match &d.where_clause {
                Some(w) => Some(bind_expr(w, bindings)?),
                None => None,
            };
            Statement::Delete(out)
        }
        Statement::CreateTable(ct) => Statement::CreateTable(ct.clone()),
    })
}

/// Substitutes parameter values throughout a query.
pub fn bind_query(q: &Query, bindings: &ParamBindings) -> Result<Query, SqlError> {
    let mut out = q.clone();
    out.items = q
        .items
        .iter()
        .map(|item| {
            Ok(match item {
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: bind_expr(expr, bindings)?,
                    alias: alias.clone(),
                },
                other => other.clone(),
            })
        })
        .collect::<Result<_, SqlError>>()?;
    for j in &mut out.joins {
        j.on = bind_expr(&j.on, bindings)?;
    }
    out.where_clause = match &q.where_clause {
        Some(w) => Some(bind_expr(w, bindings)?),
        None => None,
    };
    out.group_by = q
        .group_by
        .iter()
        .map(|g| bind_expr(g, bindings))
        .collect::<Result<_, _>>()?;
    out.having = match &q.having {
        Some(h) => Some(bind_expr(h, bindings)?),
        None => None,
    };
    for k in &mut out.order_by {
        k.expr = bind_expr(&k.expr, bindings)?;
    }
    Ok(out)
}

/// Substitutes parameter values throughout an expression.
pub fn bind_expr(e: &Expr, bindings: &ParamBindings) -> Result<Expr, SqlError> {
    Ok(match e {
        Expr::Param(p) => Expr::Literal(bindings.resolve(p)?),
        Expr::Literal(_) | Expr::Column(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(bind_expr(expr, bindings)?),
        },
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(bind_expr(lhs, bindings)?),
            rhs: Box::new(bind_expr(rhs, bindings)?),
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(bind_expr(expr, bindings)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(bind_expr(expr, bindings)?),
            list: list
                .iter()
                .map(|e| bind_expr(e, bindings))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => Expr::InSubquery {
            expr: Box::new(bind_expr(expr, bindings)?),
            query: Box::new(bind_query(query, bindings)?),
            negated: *negated,
        },
        Expr::Exists { query, negated } => Expr::Exists {
            query: Box::new(bind_query(query, bindings)?),
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => Expr::Between {
            expr: Box::new(bind_expr(expr, bindings)?),
            low: Box::new(bind_expr(low, bindings)?),
            high: Box::new(bind_expr(high, bindings)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(bind_expr(expr, bindings)?),
            pattern: Box::new(bind_expr(pattern, bindings)?),
            negated: *negated,
        },
        Expr::Agg {
            func,
            arg,
            distinct,
        } => Expr::Agg {
            func: *func,
            arg: match arg {
                Some(a) => Some(Box::new(bind_expr(a, bindings)?)),
                None => None,
            },
            distinct: *distinct,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    #[test]
    fn collects_named_and_positional() {
        let stmt =
            parse_statement("SELECT * FROM t WHERE a = ?MyUId AND b = ? AND c = ?Other AND d = ?")
                .unwrap();
        let (named, positional) = collect_params(&stmt);
        assert_eq!(
            named.into_iter().collect::<Vec<_>>(),
            vec!["MyUId", "Other"]
        );
        assert_eq!(positional, 2);
    }

    #[test]
    fn binds_view_for_session() {
        let stmt = parse_statement("SELECT EId FROM Attendance WHERE UId = ?MyUId").unwrap();
        let bound = bind_statement(&stmt, &ParamBindings::new().with("MyUId", 1)).unwrap();
        assert_eq!(
            bound.to_string(),
            "SELECT EId FROM Attendance WHERE UId = 1"
        );
    }

    #[test]
    fn binds_positional_in_order() {
        let stmt = parse_statement("SELECT 1 FROM t WHERE a = ? AND b = ?").unwrap();
        let b = ParamBindings::new()
            .with_positional(10)
            .with_positional("x");
        let bound = bind_statement(&stmt, &b).unwrap();
        assert_eq!(
            bound.to_string(),
            "SELECT 1 FROM t WHERE a = 10 AND b = 'x'"
        );
    }

    #[test]
    fn unbound_parameter_errors() {
        let stmt = parse_statement("SELECT 1 FROM t WHERE a = ?Missing").unwrap();
        match bind_statement(&stmt, &ParamBindings::new()) {
            Err(SqlError::UnboundParameter(n)) => assert_eq!(n, "Missing"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn binds_inside_subqueries() {
        let stmt =
            parse_statement("SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = ?MyUId)")
                .unwrap();
        let bound = bind_statement(&stmt, &ParamBindings::new().with("MyUId", 7)).unwrap();
        assert!(bound.to_string().contains("u.id = 7"));
    }

    #[test]
    fn set_replaces_existing_binding() {
        let mut b = ParamBindings::new();
        b.set("X", 1);
        b.set("X", 2);
        assert_eq!(b.get("X"), Some(&Value::Int(2)));
    }
}
