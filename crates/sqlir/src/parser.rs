//! Recursive-descent parser for the supported SQL subset.

use crate::ast::{
    Assignment, BinaryOp, ColumnDef, ColumnRef, CreateTable, Delete, Distinctness, Expr, Insert,
    JoinClause, OrderKey, Param, Query, SelectItem, SetFunc, Statement, TableConstraint, TableRef,
    UnaryOp, Update,
};
use crate::error::ParseError;
use crate::token::{lex, SpannedTok, Tok};
use crate::value::{SqlType, Value};

/// Parses a single SQL statement.
///
/// # Examples
///
/// ```
/// let stmt = sqlir::parse_statement("SELECT * FROM Events WHERE EId = 2").unwrap();
/// assert!(stmt.is_read_only());
/// ```
pub fn parse_statement(input: &str) -> Result<Statement, ParseError> {
    let mut p = Parser::new(input)?;
    let stmt = p.statement()?;
    p.eat_if(&Tok::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses a semicolon-separated sequence of statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>, ParseError> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    loop {
        while p.eat_if(&Tok::Semicolon) {}
        if p.peek() == &Tok::Eof {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_if(&Tok::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

/// Parses a `SELECT` query (rejecting other statement kinds).
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    match parse_statement(input)? {
        Statement::Select(q) => Ok(q),
        _ => Err(ParseError::new("expected a SELECT query", 0)),
    }
}

/// Parses a standalone scalar expression (useful for tests and tools).
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(input)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Parser, ParseError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].offset
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_if(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Case-insensitive keyword check without consuming.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn peek2_kw(&self, kw: &str) -> bool {
        matches!(self.peek2(), Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek().describe())))
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                t.describe(),
                self.peek().describe()
            )))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing {}", self.peek().describe())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.offset())
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ---- statements ----

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.peek_kw("SELECT") {
            Ok(Statement::Select(self.query()?))
        } else if self.peek_kw("INSERT") {
            Ok(Statement::Insert(self.insert()?))
        } else if self.peek_kw("UPDATE") {
            Ok(Statement::Update(self.update()?))
        } else if self.peek_kw("DELETE") {
            Ok(Statement::Delete(self.delete()?))
        } else if self.peek_kw("CREATE") {
            Ok(Statement::CreateTable(self.create_table()?))
        } else {
            Err(self.err(format!(
                "expected SELECT, INSERT, UPDATE, DELETE or CREATE, found {}",
                self.peek().describe()
            )))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.expect_kw("SELECT")?;
        let mut q = Query::new();
        if self.eat_kw("DISTINCT") {
            q.distinct = Distinctness::Distinct;
        } else {
            self.eat_kw("ALL");
        }
        loop {
            q.items.push(self.select_item()?);
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        if self.eat_kw("FROM") {
            loop {
                q.from.push(self.table_ref()?);
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
            while self.peek_kw("JOIN") || self.peek_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                q.joins.push(JoinClause { table, on });
            }
        }
        if self.eat_kw("WHERE") {
            q.where_clause = Some(self.expr()?);
        }
        if self.peek_kw("GROUP") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                q.group_by.push(self.expr()?);
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("HAVING") {
            q.having = Some(self.expr()?);
        }
        if self.peek_kw("ORDER") {
            self.bump();
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                q.order_by.push(OrderKey { expr, desc });
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.bump() {
                Tok::Int(n) if n >= 0 => q.limit = Some(n as u64),
                other => {
                    return Err(self.err(format!(
                        "expected non-negative LIMIT count, found {}",
                        other.describe()
                    )))
                }
            }
        }
        Ok(q)
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek() == &Tok::Star {
            self.bump();
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let Tok::Ident(name) = self.peek().clone() {
            if self.peek2() == &Tok::Dot {
                let saved = self.pos;
                self.bump();
                self.bump();
                if self.peek() == &Tok::Star {
                    self.bump();
                    return Ok(SelectItem::QualifiedWildcard(name));
                }
                self.pos = saved;
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(s) = self.peek() {
            // Bare alias, but not a clause keyword.
            let up = s.to_ascii_uppercase();
            const CLAUSE_KWS: &[&str] = &[
                "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON",
            ];
            if CLAUSE_KWS.contains(&up.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Tok::Ident(s) = self.peek() {
            let up = s.to_ascii_uppercase();
            const CLAUSE_KWS: &[&str] = &[
                "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "JOIN", "INNER", "ON", "SET",
            ];
            if CLAUSE_KWS.contains(&up.as_str()) {
                None
            } else {
                Some(self.ident()?)
            }
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    fn insert(&mut self) -> Result<Insert, ParseError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_if(&Tok::LParen) {
            loop {
                columns.push(self.ident()?);
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&Tok::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            rows.push(row);
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn update(&mut self) -> Result<Update, ParseError> {
        self.expect_kw("UPDATE")?;
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let column = self.ident()?;
            self.expect(&Tok::Eq)?;
            let value = self.expr()?;
            assignments.push(Assignment { column, value });
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Update {
            table,
            assignments,
            where_clause,
        })
    }

    fn delete(&mut self) -> Result<Delete, ParseError> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Delete {
            table,
            where_clause,
        })
    }

    fn create_table(&mut self) -> Result<CreateTable, ParseError> {
        self.expect_kw("CREATE")?;
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            if self.peek_kw("PRIMARY") {
                self.bump();
                self.expect_kw("KEY")?;
                constraints.push(TableConstraint::PrimaryKey(self.paren_ident_list()?));
            } else if self.peek_kw("UNIQUE") && self.peek2() == &Tok::LParen {
                self.bump();
                constraints.push(TableConstraint::Unique(self.paren_ident_list()?));
            } else if self.peek_kw("FOREIGN") {
                self.bump();
                self.expect_kw("KEY")?;
                let cols = self.paren_ident_list()?;
                self.expect_kw("REFERENCES")?;
                let ref_table = self.ident()?;
                let ref_columns = if self.peek() == &Tok::LParen {
                    self.paren_ident_list()?
                } else {
                    Vec::new()
                };
                constraints.push(TableConstraint::ForeignKey {
                    columns: cols,
                    ref_table,
                    ref_columns,
                });
            } else {
                let cname = self.ident()?;
                let tyname = self.ident()?;
                let ty = SqlType::parse(&tyname)
                    .ok_or_else(|| self.err(format!("unknown column type `{tyname}`")))?;
                let mut def = ColumnDef {
                    name: cname,
                    ty,
                    not_null: false,
                    primary_key: false,
                    unique: false,
                };
                loop {
                    if self.peek_kw("NOT") {
                        self.bump();
                        self.expect_kw("NULL")?;
                        def.not_null = true;
                    } else if self.peek_kw("PRIMARY") {
                        self.bump();
                        self.expect_kw("KEY")?;
                        def.primary_key = true;
                    } else if self.eat_kw("UNIQUE") {
                        def.unique = true;
                    } else {
                        break;
                    }
                }
                columns.push(def);
            }
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn paren_ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut out = Vec::new();
        loop {
            out.push(self.ident()?);
            if !self.eat_if(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(out)
    }

    // ---- expressions (precedence climbing) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinaryOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.peek_kw("AND") {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinaryOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek_kw("NOT") && !self.peek2_kw("EXISTS") {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.predicate()
    }

    /// Comparison-level predicates: `cmp`, `IS NULL`, `IN`, `BETWEEN`,
    /// `LIKE`, `EXISTS`.
    fn predicate(&mut self) -> Result<Expr, ParseError> {
        if self.peek_kw("EXISTS") || (self.peek_kw("NOT") && self.peek2_kw("EXISTS")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("EXISTS")?;
            self.expect(&Tok::LParen)?;
            let query = self.query()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(query),
                negated,
            });
        }
        let lhs = self.additive()?;
        // IS [NOT] NULL
        if self.peek_kw("IS") {
            self.bump();
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek_kw("NOT")
            && (self.peek2_kw("IN") || self.peek2_kw("BETWEEN") || self.peek2_kw("LIKE"))
        {
            self.bump();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect(&Tok::LParen)?;
            if self.peek_kw("SELECT") {
                let query = self.query()?;
                self.expect(&Tok::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_if(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(lhs),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(self.err("expected IN, BETWEEN or LIKE after NOT"));
        }
        // Plain comparison.
        let op = match self.peek() {
            Tok::Eq => Some(BinaryOp::Eq),
            Tok::Ne => Some(BinaryOp::Ne),
            Tok::Lt => Some(BinaryOp::Lt),
            Tok::Le => Some(BinaryOp::Le),
            Tok::Gt => Some(BinaryOp::Gt),
            Tok::Ge => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinaryOp::Add,
                Tok::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinaryOp::Mul,
                Tok::Slash => BinaryOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_if(&Tok::Minus) {
            let inner = self.unary()?;
            // Fold negative integer literals directly.
            if let Expr::Literal(Value::Int(i)) = inner {
                return Ok(Expr::Literal(Value::Int(-i)));
            }
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_if(&Tok::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Value::Int(i)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Value::Str(s)))
            }
            Tok::NamedParam(n) => {
                self.bump();
                Ok(Expr::Param(Param::Named(n)))
            }
            Tok::PositionalParam(i) => {
                self.bump();
                Ok(Expr::Param(Param::Positional(i)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let up = name.to_ascii_uppercase();
                // Reserved words never act as column references.
                const RESERVED: &[&str] = &[
                    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "JOIN",
                    "INNER", "ON", "AND", "OR", "AS", "INSERT", "INTO", "VALUES", "UPDATE", "SET",
                    "DELETE", "CREATE", "TABLE", "DISTINCT", "ALL",
                ];
                if RESERVED.contains(&up.as_str()) {
                    return Err(
                        self.err(format!("expected expression, found reserved word `{name}`"))
                    );
                }
                match up.as_str() {
                    "NULL" => {
                        self.bump();
                        return Ok(Expr::Literal(Value::Null));
                    }
                    "TRUE" => {
                        self.bump();
                        return Ok(Expr::Literal(Value::Bool(true)));
                    }
                    "FALSE" => {
                        self.bump();
                        return Ok(Expr::Literal(Value::Bool(false)));
                    }
                    _ => {}
                }
                // Aggregate call?
                if let Some(func) = SetFunc::parse(&name) {
                    if self.peek2() == &Tok::LParen {
                        self.bump();
                        self.bump();
                        if self.peek() == &Tok::Star {
                            if func != SetFunc::Count {
                                return Err(
                                    self.err(format!("{}(*) is only valid for COUNT", func.name()))
                                );
                            }
                            self.bump();
                            self.expect(&Tok::RParen)?;
                            return Ok(Expr::Agg {
                                func,
                                arg: None,
                                distinct: false,
                            });
                        }
                        let distinct = self.eat_kw("DISTINCT");
                        let arg = self.expr()?;
                        self.expect(&Tok::RParen)?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                            distinct,
                        });
                    }
                }
                // Column reference, possibly qualified.
                self.bump();
                if self.peek() == &Tok::Dot {
                    self.bump();
                    let col = self.ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(name, col)))
                } else {
                    Ok(Expr::Column(ColumnRef::new(name)))
                }
            }
            other => Err(self.err(format!("expected expression, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1_queries() {
        // The two queries from the paper's Example 2.1.
        let q1 = parse_query("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2").unwrap();
        assert_eq!(q1.from[0].table, "Attendance");
        assert_eq!(q1.where_clause.as_ref().unwrap().conjuncts().len(), 2);

        let q2 = parse_query("SELECT * FROM Events WHERE EId = 2").unwrap();
        assert_eq!(q2.items, vec![SelectItem::Wildcard]);
    }

    #[test]
    fn parses_view_v2() {
        let v2 = parse_query(
            "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
        )
        .unwrap();
        assert_eq!(v2.from[0].alias.as_deref(), Some("e"));
        assert_eq!(v2.joins.len(), 1);
        match v2.where_clause.unwrap() {
            Expr::Binary {
                op: BinaryOp::Eq,
                rhs,
                ..
            } => {
                assert_eq!(*rhs, Expr::Param(Param::Named("MyUId".into())));
            }
            other => panic!("unexpected where: {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_and_group_by() {
        let q = parse_query(
            "SELECT DId, COUNT(*) AS n FROM Treats GROUP BY DId HAVING COUNT(*) > 1 \
             ORDER BY n DESC LIMIT 5",
        )
        .unwrap();
        assert!(q.has_aggregates());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.limit, Some(5));
        assert!(q.order_by[0].desc);
    }

    #[test]
    fn parses_subqueries() {
        let q = parse_query(
            "SELECT Name FROM Users WHERE UId IN (SELECT UId FROM Attendance WHERE EId = 3)",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Expr::InSubquery { negated: false, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }

        let q = parse_query(
            "SELECT 1 FROM Events e WHERE NOT EXISTS \
             (SELECT 1 FROM Attendance a WHERE a.EId = e.EId)",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Expr::Exists { negated: true, .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_between_like_in_list() {
        let e = parse_expr("age BETWEEN 18 AND 60").unwrap();
        assert!(matches!(e, Expr::Between { negated: false, .. }));
        let e = parse_expr("name NOT LIKE 'A%'").unwrap();
        assert!(matches!(e, Expr::Like { negated: true, .. }));
        let e = parse_expr("x IN (1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::InList { ref list, .. } if list.len() == 3));
    }

    #[test]
    fn precedence_or_and() {
        // a = 1 OR b = 2 AND c = 3  ==  a = 1 OR (b = 2 AND c = 3)
        let e = parse_expr("a = 1 OR b = 2 AND c = 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Or,
                rhs,
                ..
            } => match *rhs {
                Expr::Binary {
                    op: BinaryOp::And, ..
                } => {}
                other => panic!("expected AND on rhs, got {other:?}"),
            },
            other => panic!("expected OR at top, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        // 1 + 2 * 3 parses as 1 + (2 * 3).
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::int(-5));
    }

    #[test]
    fn parses_dml() {
        let s = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match s {
            Statement::Insert(ins) => {
                assert_eq!(ins.columns, vec!["a", "b"]);
                assert_eq!(ins.rows.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let s = parse_statement("UPDATE t SET a = 1, b = 'z' WHERE a = 0").unwrap();
        assert!(matches!(s, Statement::Update(u) if u.assignments.len() == 2));
        let s = parse_statement("DELETE FROM t WHERE a = 1").unwrap();
        assert!(matches!(s, Statement::Delete(_)));
    }

    #[test]
    fn parses_create_table() {
        let s = parse_statement(
            "CREATE TABLE Attendance (
                 UId INT NOT NULL,
                 EId INT NOT NULL,
                 Notes TEXT,
                 PRIMARY KEY (UId, EId),
                 FOREIGN KEY (UId) REFERENCES Users (UId),
                 FOREIGN KEY (EId) REFERENCES Events (EId)
             )",
        )
        .unwrap();
        match s {
            Statement::CreateTable(ct) => {
                assert_eq!(ct.columns.len(), 3);
                assert_eq!(ct.constraints.len(), 3);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_statements() {
        let stmts = parse_statements("SELECT 1; SELECT 2;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_statement("SELECT 1 FROM t garbage garbage").is_err());
    }

    #[test]
    fn positional_params_are_numbered() {
        let q = parse_query("SELECT 1 FROM t WHERE a = ? AND b = ?").unwrap();
        let mut seen = Vec::new();
        crate::ast::walk_query(&q, &mut |e| {
            if let Expr::Param(Param::Positional(i)) = e {
                seen.push(*i);
            }
        });
        assert_eq!(seen, vec![0, 1]);
    }

    #[test]
    fn count_star_requires_count() {
        assert!(parse_expr("SUM(*)").is_err());
        assert!(parse_expr("COUNT(*)").is_ok());
        assert!(parse_expr("COUNT(DISTINCT x)").is_ok());
    }
}
