//! Property-based tests: printing any generated statement yields SQL that
//! parses back to the identical AST.

use proptest::prelude::*;
use sqlir::{
    parse_statement, Assignment, BinaryOp, ColumnRef, Delete, Distinctness, Expr, Insert,
    JoinClause, OrderKey, Param, Query, SelectItem, SetFunc, Statement, TableRef, UnaryOp, Update,
    Value,
};

fn ident() -> impl Strategy<Value = String> {
    // Identifiers avoid reserved words by construction (prefix `c`).
    "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!("c{s}"))
}

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i64::from(i))),
        "[ -~&&[^']]{0,8}".prop_map(Value::Str),
        "[a-z '☃]{0,8}".prop_map(Value::Str),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn column_ref() -> impl Strategy<Value = ColumnRef> {
    (proptest::option::of(ident()), ident()).prop_map(|(table, column)| ColumnRef { table, column })
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        value().prop_map(Expr::Literal),
        column_ref().prop_map(Expr::Column),
        ident().prop_map(|n| Expr::Param(Param::Named(n))),
        Just(Expr::Param(Param::Positional(0))),
    ]
}

fn binary_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::Ne),
        Just(BinaryOp::Lt),
        Just(BinaryOp::Le),
        Just(BinaryOp::Gt),
        Just(BinaryOp::Ge),
        Just(BinaryOp::And),
        Just(BinaryOp::Or),
        Just(BinaryOp::Add),
        Just(BinaryOp::Sub),
        Just(BinaryOp::Mul),
        Just(BinaryOp::Div),
    ]
}

fn agg() -> impl Strategy<Value = Expr> {
    let func = prop_oneof![
        Just(SetFunc::Count),
        Just(SetFunc::Sum),
        Just(SetFunc::Min),
        Just(SetFunc::Max),
        Just(SetFunc::Avg),
    ];
    (func, proptest::option::of(column_ref()), any::<bool>()).prop_map(|(func, arg, distinct)| {
        match arg {
            // `COUNT(*)`; other functions require an argument.
            None if func == SetFunc::Count => Expr::Agg {
                func,
                arg: None,
                distinct: false,
            },
            None => Expr::Agg {
                func,
                arg: Some(Box::new(Expr::col("cfallback"))),
                distinct,
            },
            Some(c) => Expr::Agg {
                func,
                arg: Some(Box::new(Expr::Column(c))),
                distinct,
            },
        }
    })
}

fn expr() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (binary_op(), inner.clone(), inner.clone()).prop_map(|(op, l, r)| Expr::Binary {
                op,
                lhs: Box::new(l),
                rhs: Box::new(r),
            }),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e)
            }),
            (
                inner.clone(),
                proptest::collection::vec(value().prop_map(Expr::Literal), 1..3),
                any::<bool>()
            )
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated,
                }),
            (inner.clone(), value(), value(), any::<bool>()).prop_map(|(e, lo, hi, negated)| {
                Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(Expr::Literal(lo)),
                    high: Box::new(Expr::Literal(hi)),
                    negated,
                }
            }),
            (inner, "[a-z%_]{0,6}", any::<bool>()).prop_map(|(e, pat, negated)| Expr::Like {
                expr: Box::new(e),
                pattern: Box::new(Expr::string(pat)),
                negated,
            }),
        ]
    })
}

fn table_ref() -> impl Strategy<Value = TableRef> {
    (ident(), proptest::option::of(ident())).prop_map(|(table, alias)| TableRef { table, alias })
}

fn select_item() -> impl Strategy<Value = SelectItem> {
    prop_oneof![
        Just(SelectItem::Wildcard),
        ident().prop_map(SelectItem::QualifiedWildcard),
        (expr(), proptest::option::of(ident()))
            .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
        agg().prop_map(|expr| SelectItem::Expr { expr, alias: None }),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (
        any::<bool>(),
        proptest::collection::vec(select_item(), 1..4),
        proptest::collection::vec(table_ref(), 1..3),
        proptest::collection::vec((table_ref(), expr()), 0..2),
        proptest::option::of(expr()),
        proptest::collection::vec((expr(), any::<bool>()), 0..2),
        proptest::option::of(0u64..100),
    )
        .prop_map(
            |(distinct, items, from, joins, where_clause, order_by, limit)| Query {
                distinct: if distinct {
                    Distinctness::Distinct
                } else {
                    Distinctness::All
                },
                items,
                from,
                joins: joins
                    .into_iter()
                    .map(|(table, on)| JoinClause { table, on })
                    .collect(),
                where_clause,
                group_by: Vec::new(),
                having: None,
                order_by: order_by
                    .into_iter()
                    .map(|(expr, desc)| OrderKey { expr, desc })
                    .collect(),
                limit,
            },
        )
}

fn statement() -> impl Strategy<Value = Statement> {
    prop_oneof![
        query().prop_map(Statement::Select),
        (
            ident(),
            proptest::collection::vec(ident(), 1..4),
            proptest::collection::vec(value().prop_map(Expr::Literal), 1..4)
        )
            .prop_map(|(table, columns, row)| {
                let width = columns.len();
                let mut r = row;
                r.resize(width, Expr::int(0));
                Statement::Insert(Insert {
                    table,
                    columns,
                    rows: vec![r],
                })
            }),
        (ident(), ident(), expr(), proptest::option::of(expr())).prop_map(
            |(table, column, value, where_clause)| {
                Statement::Update(Update {
                    table,
                    assignments: vec![Assignment { column, value }],
                    where_clause,
                })
            }
        ),
        (ident(), proptest::option::of(expr())).prop_map(
            |(table, where_clause)| Statement::Delete(Delete {
                table,
                where_clause
            })
        ),
    ]
}

/// Renumbers positional parameters in textual order, matching how the lexer
/// assigns indices (`?` indices are lexical by definition, so a generated AST
/// must be normalized before the round-trip comparison).
fn renumber_positionals(stmt: &mut Statement) {
    fn expr(e: &mut Expr, next: &mut usize) {
        match e {
            Expr::Param(Param::Positional(i)) => {
                *i = *next;
                *next += 1;
            }
            Expr::Param(Param::Named(_)) | Expr::Literal(_) | Expr::Column(_) => {}
            Expr::Unary { expr: inner, .. } | Expr::IsNull { expr: inner, .. } => expr(inner, next),
            Expr::Binary { lhs, rhs, .. } => {
                expr(lhs, next);
                expr(rhs, next);
            }
            Expr::InList {
                expr: inner, list, ..
            } => {
                expr(inner, next);
                for item in list {
                    expr(item, next);
                }
            }
            Expr::InSubquery {
                expr: inner, query, ..
            } => {
                expr(inner, next);
                query_params(query, next);
            }
            Expr::Exists { query, .. } => query_params(query, next),
            Expr::Between {
                expr: inner,
                low,
                high,
                ..
            } => {
                expr(inner, next);
                expr(low, next);
                expr(high, next);
            }
            Expr::Like {
                expr: inner,
                pattern,
                ..
            } => {
                expr(inner, next);
                expr(pattern, next);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    expr(a, next);
                }
            }
        }
    }
    fn query_params(q: &mut Query, next: &mut usize) {
        for item in &mut q.items {
            if let SelectItem::Expr { expr: e, .. } = item {
                expr(e, next);
            }
        }
        for j in &mut q.joins {
            expr(&mut j.on, next);
        }
        if let Some(w) = &mut q.where_clause {
            expr(w, next);
        }
        for g in &mut q.group_by {
            expr(g, next);
        }
        if let Some(h) = &mut q.having {
            expr(h, next);
        }
        for k in &mut q.order_by {
            expr(&mut k.expr, next);
        }
    }
    let mut next = 0usize;
    match stmt {
        Statement::Select(q) => query_params(q, &mut next),
        Statement::Insert(ins) => {
            for row in &mut ins.rows {
                for e in row {
                    expr(e, &mut next);
                }
            }
        }
        Statement::Update(u) => {
            for a in &mut u.assignments {
                expr(&mut a.value, &mut next);
            }
            if let Some(w) = &mut u.where_clause {
                expr(w, &mut next);
            }
        }
        Statement::Delete(d) => {
            if let Some(w) = &mut d.where_clause {
                expr(w, &mut next);
            }
        }
        Statement::CreateTable(_) => {}
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn print_parse_roundtrip(stmt in statement()) {
        let mut stmt = stmt;
        renumber_positionals(&mut stmt);
        let printed = stmt.to_string();
        let reparsed = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("failed to reparse `{printed}`: {e}"));
        prop_assert_eq!(stmt, reparsed, "printed form: {}", printed);
    }

    #[test]
    fn like_matching_never_panics(text in "[a-z ]{0,12}", pat in "[a-z%_]{0,12}") {
        let _ = sqlir::value::like_match(&text, &pat);
    }
}
