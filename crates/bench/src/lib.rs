//! Shared harness for the evaluation: environment builders and table
//! formatting used by both the Criterion benches (`benches/`) and the
//! table-generating binaries (`src/bin/`).
//!
//! The experiment inventory lives in `DESIGN.md`; per-experiment
//! paper-vs-measured records live in `EXPERIMENTS.md`. Each binary prints
//! one table/figure series:
//!
//! | id | binary / bench |
//! |----|----------------|
//! | T1 | `t1_extraction` |
//! | T2 | bench `extraction` |
//! | F1 | `f1_generalization` |
//! | T3 | `t3_disclosure` |
//! | F2 | bench `disclosure` |
//! | T4 | `t4_enforcement` |
//! | F3 | bench `enforcement` |
//! | T5 | `t5_diagnosis` |
//! | F4 | `f4_rewriting` |
//! | T6 | `t6_ablation` |
//! | T7 | `t7_concurrency` |
//! | T8 | `t8_server` |
//! | T9 | `t9_observability` |
//! | T10 | `t10_plans` |
//! | T11 | `t11_kernel` |
//! | T12 | `t12_reactor` |
//! | T13 | `t13_scale` |
//! | T14 | `t14_introspect` |

#![warn(missing_docs)]

use appdsl::Request;
use appsim::{seed_app, workload_for, Scale, SimApp};
use bep_core::{ComplianceChecker, Policy, ProxyConfig, SqlProxy};
use minidb::Database;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A ready-to-run experiment environment for one application.
pub struct AppEnv {
    /// The application definition.
    pub sim: &'static SimApp,
    /// Seeded database.
    pub db: Database,
    /// Request workload.
    pub requests: Vec<Request>,
}

/// Builds a seeded environment for an application.
pub fn app_env(sim: &'static SimApp, seed: u64, scale: Scale, n_requests: usize) -> AppEnv {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut db = sim.empty_db();
    seed_app(sim.name, &mut db, &mut rng, &scale);
    let requests = workload_for(sim.name, &db, &mut rng, n_requests).expect("workload");
    assert!(
        n_requests == 0 || !requests.is_empty(),
        "{} workload must be non-empty",
        sim.name
    );
    AppEnv { sim, db, requests }
}

/// Builds an enforcing proxy over a clone of the environment's database.
pub fn proxy_for(env: &AppEnv, config: ProxyConfig) -> SqlProxy {
    let schema = env.sim.schema();
    let policy = env.sim.policy().expect("ground-truth policy compiles");
    SqlProxy::new(
        env.db.clone(),
        ComplianceChecker::new(schema, policy),
        config,
    )
}

/// Builds an enforcing proxy with an explicit policy.
pub fn proxy_with_policy(env: &AppEnv, policy: Policy, config: ProxyConfig) -> SqlProxy {
    let schema = env.sim.schema();
    SqlProxy::new(
        env.db.clone(),
        ComplianceChecker::new(schema, policy),
        config,
    )
}

/// Prepares one request of a replayed workload for round `round`: replays
/// of a create-request must insert fresh rows, not re-insert the same
/// primary key, so each `comment_id` parameter is offset by a per-round
/// stride far above the workload generator's id range. Round 0 keeps the
/// generator's ids; requests without fresh-id parameters are returned
/// borrowed (no allocation on the common path).
pub fn salted_params(
    params: &[(String, sqlir::Value)],
    round: usize,
) -> std::borrow::Cow<'_, [(String, sqlir::Value)]> {
    use sqlir::Value;
    if round == 0 || !params.iter().any(|(k, _)| k == "comment_id") {
        return std::borrow::Cow::Borrowed(params);
    }
    std::borrow::Cow::Owned(
        params
            .iter()
            .map(|(k, v)| match (k.as_str(), v) {
                ("comment_id", Value::Int(n)) => {
                    (k.clone(), Value::Int(n + round as i64 * 1_000_000))
                }
                _ => (k.clone(), v.clone()),
            })
            .collect(),
    )
}

/// Prints a row of fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:>w$} ", w = w));
    }
    println!("{}", line.trim_end());
}

/// Prints a table header with a rule underneath.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        widths,
    );
    println!(
        "{}",
        "-".repeat(widths.iter().map(|w| w + 1).sum::<usize>())
    );
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use appsim::CALENDAR;

    #[test]
    fn env_builder_works() {
        let env = app_env(&CALENDAR, 1, Scale::small(), 10);
        assert_eq!(env.requests.len(), 10);
        assert!(env.db.total_rows() > 0);
        let proxy = proxy_for(&env, ProxyConfig::default());
        assert_eq!(proxy.stats().allowed, 0);
    }
}
