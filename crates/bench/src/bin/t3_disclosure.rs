//! T3 — Disclosure criteria across scenarios: for each (policy, sensitive
//! query) pair, what PQI/NQI certificates find, what the exact small-model
//! enumerator decides, how the Bayesian baseline moves with its prior, and
//! the k-anonymity of the release.
//!
//! Run: `cargo run -p bep-bench --bin t3_disclosure --release`

use bep_bench::{f2, header, row};
use bep_disclose::{
    belief_shift, check_nqi, check_pqi, check_release, decide, BayesConfig, RelationSpec, Universe,
};
use qlogic::{Atom, CmpOp, Comparison, Cq, Instance, Term, ViewSet};
use sqlir::Value;

struct Scenario {
    name: &'static str,
    views: ViewSet,
    sensitive: Cq,
    universe: Universe,
    /// A concrete instance for the k-anonymity column.
    release_db: Instance,
}

fn named(mut cq: Cq, name: &str) -> Cq {
    cq.name = Some(name.into());
    cq
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // 1. Hospital (Example 4.1).
    let v1 = named(
        Cq::new(
            vec![Term::var("p"), Term::var("d")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        ),
        "PatientDoctor",
    );
    let v2 = named(
        Cq::new(
            vec![Term::var("d"), Term::var("x")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        ),
        "DoctorDiseases",
    );
    out.push(Scenario {
        name: "hospital",
        views: ViewSet::new(vec![v1, v2]).unwrap(),
        sensitive: Cq::new(
            vec![Term::var("p"), Term::var("x")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        ),
        universe: Universe::with_int_domain(
            vec![RelationSpec {
                name: "Treatment".into(),
                arity: 3,
                max_rows: 2,
            }],
            2,
        ),
        release_db: Instance::from_rows([(
            "Treatment",
            [
                vec![Value::Int(0), Value::Int(0), Value::Int(0)],
                vec![Value::Int(1), Value::Int(0), Value::Int(1)],
            ]
            .as_slice(),
        )]),
    });

    // 2. Employees, positive direction (Example 4.2: V = seniors, S = adults).
    let seniors = |n: &str| {
        named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Employees", vec![Term::var("x"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(2))],
            ),
            n,
        )
    };
    let adults = |n: &str| {
        named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Employees", vec![Term::var("x"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(1))],
            ),
            n,
        )
    };
    // The bounded domain uses small stand-ins for the age thresholds
    // (domain {0,1,2} with 1 ≈ 18, 2 ≈ 60).
    let emp_universe = || {
        Universe::with_int_domain(
            vec![RelationSpec {
                name: "Employees".into(),
                arity: 2,
                max_rows: 2,
            }],
            3,
        )
    };
    let emp_release = Instance::from_rows([(
        "Employees",
        [
            vec![Value::Int(0), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(2), Value::Int(0)],
        ]
        .as_slice(),
    )]);
    out.push(Scenario {
        name: "emp:V=senior",
        views: ViewSet::new(vec![seniors("Q1")]).unwrap(),
        sensitive: adults("S"),
        universe: emp_universe(),
        release_db: emp_release.clone(),
    });

    // 3. Employees, negative direction (V = adults, S = seniors).
    out.push(Scenario {
        name: "emp:V=adult",
        views: ViewSet::new(vec![adults("Q2")]).unwrap(),
        sensitive: seniors("S"),
        universe: emp_universe(),
        release_db: emp_release,
    });

    // 4. Disjoint: views reveal nothing about the secret.
    out.push(Scenario {
        name: "disjoint",
        views: ViewSet::new(vec![named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Pub", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        )])
        .unwrap(),
        sensitive: Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Sec", vec![Term::var("y")])],
            vec![],
        ),
        universe: Universe::with_int_domain(
            vec![
                RelationSpec {
                    name: "Pub".into(),
                    arity: 1,
                    max_rows: 2,
                },
                RelationSpec {
                    name: "Sec".into(),
                    arity: 1,
                    max_rows: 2,
                },
            ],
            2,
        ),
        release_db: Instance::from_rows([(
            "Pub",
            [vec![Value::Int(0)], vec![Value::Int(1)]].as_slice(),
        )]),
    });

    // 5. Identity: the view IS the secret (total disclosure).
    out.push(Scenario {
        name: "identity",
        views: ViewSet::new(vec![named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Sec", vec![Term::var("x")])],
                vec![],
            ),
            "All",
        )])
        .unwrap(),
        sensitive: Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Sec", vec![Term::var("x")])],
            vec![],
        ),
        universe: Universe::with_int_domain(
            vec![RelationSpec {
                name: "Sec".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        ),
        release_db: Instance::from_rows([("Sec", [vec![Value::Int(0)]].as_slice())]),
    });

    // 6. Calendar: can user 1's policy reveal user 2's attendance?
    let cal_v1 = named(
        Cq::new(
            vec![Term::var("e")],
            vec![Atom::new("Att", vec![Term::int(1), Term::var("e")])],
            vec![],
        ),
        "V1",
    );
    out.push(Scenario {
        name: "calendar",
        views: ViewSet::new(vec![cal_v1]).unwrap(),
        sensitive: Cq::new(
            vec![Term::var("e")],
            vec![Atom::new("Att", vec![Term::int(0), Term::var("e")])],
            vec![],
        ),
        universe: Universe::with_int_domain(
            vec![RelationSpec {
                name: "Att".into(),
                arity: 2,
                max_rows: 2,
            }],
            2,
        ),
        release_db: Instance::from_rows([("Att", [vec![Value::Int(1), Value::Int(0)]].as_slice())]),
    });

    out
}

fn main() {
    let widths = [13usize, 9, 9, 9, 9, 10, 10, 6];
    header(
        &[
            "scenario", "PQI-cert", "NQI-cert", "SM-PQI", "SM-NQI", "bayes.1", "bayes.9", "k",
        ],
        &widths,
    );
    for sc in scenarios() {
        let pqi = check_pqi(&sc.sensitive, &sc.views).holds();
        let nqi = check_nqi(&sc.sensitive, &sc.views).holds();
        let sm = decide(&sc.universe, &sc.views, &sc.sensitive).expect("small model");
        let b1 = belief_shift(
            &sc.universe,
            &sc.views,
            &sc.sensitive,
            BayesConfig { tuple_prob: 0.1 },
        )
        .expect("bayes")
        .max_shift;
        let b9 = belief_shift(
            &sc.universe,
            &sc.views,
            &sc.sensitive,
            BayesConfig { tuple_prob: 0.9 },
        )
        .expect("bayes")
        .max_shift;
        let k = check_release(&sc.release_db, &sc.views, &[]).min_k();
        row(
            &[
                sc.name.to_string(),
                pqi.to_string(),
                nqi.to_string(),
                sm.pqi.to_string(),
                sm.nqi.to_string(),
                f2(b1),
                f2(b9),
                if k == usize::MAX {
                    "∞".into()
                } else {
                    k.to_string()
                },
            ],
            &widths,
        );
    }
    println!();
    println!("Shape claims checked:");
    println!("  - hospital: NQI certificate found (the 'narrowed to two diseases'");
    println!("    inference); small model also finds PQI (closed-world pinning),");
    println!("    which the certificate misses — the documented completeness gap.");
    println!("  - employees: PQI one way, NQI the other (Example 4.2 exactly).");
    println!("  - Bayesian verdicts move with the prior; PQI/NQI do not.");
}
