//! F4 — Query-narrowing utility: the fraction of the original query's rows
//! retained by the maximally-contained rewriting, as policy restrictiveness
//! (the attendance share rate) varies. §5.2.2's claim is that contained
//! rewritings return "as much data as possible without violating the
//! policy" — here that fraction tracks the share rate almost exactly.
//!
//! Run: `cargo run -p bep-bench --bin f4_rewriting --release`

use bep_bench::{f2, header, row};
use bep_diagnose::{narrow_query, retained_fraction};
use qlogic::{Atom, Cq, Instance, RelSchema, Term, ViewSet};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sqlir::Value;

fn main() {
    let widths = [12usize, 10, 12, 12];
    header(&["share-rate", "events", "visible", "retained"], &widths);

    let mut schema = RelSchema::new();
    schema.add_table("Events", ["EId", "Title"]);
    schema.add_table("Attendance", ["UId", "EId"]);

    // Policy: user 1 sees events they attend.
    let mut v = Cq::new(
        vec![Term::var("e"), Term::var("t")],
        vec![
            Atom::new("Events", vec![Term::var("e"), Term::var("t")]),
            Atom::new("Attendance", vec![Term::int(1), Term::var("e")]),
        ],
        vec![],
    );
    v.name = Some("MyEvents".into());
    let views = ViewSet::new(vec![v]).unwrap();

    // Blocked query: all events.
    let q = Cq::new(
        vec![Term::var("e"), Term::var("t")],
        vec![Atom::new("Events", vec![Term::var("e"), Term::var("t")])],
        vec![],
    );
    let patches = narrow_query(&q, &views, &schema).expect("patches");
    assert!(!patches.is_empty(), "the attendance join must be found");
    let patch = &patches[0];

    let n_events = 200usize;
    for share in [0.05f64, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut rng = SmallRng::seed_from_u64((share * 1000.0) as u64);
        let mut events = Vec::new();
        let mut attendance = Vec::new();
        let mut visible = 0usize;
        for e in 0..n_events {
            events.push(vec![Value::Int(e as i64), Value::str(format!("ev{e}"))]);
            if rng.gen_bool(share) {
                attendance.push(vec![Value::Int(1), Value::Int(e as i64)]);
                visible += 1;
            }
        }
        let db = Instance::from_rows([
            ("Events", events.as_slice()),
            ("Attendance", attendance.as_slice()),
        ]);
        let retained = retained_fraction(&db, &q, patch);
        row(
            &[
                f2(share),
                n_events.to_string(),
                visible.to_string(),
                f2(retained),
            ],
            &widths,
        );
        // The rewriting retains exactly the policy-visible fraction.
        let expected = visible as f64 / n_events as f64;
        assert!(
            (retained - expected).abs() < 1e-9,
            "retained {retained} vs visible fraction {expected}"
        );
    }
    println!("\nshape check PASSED: retained fraction == policy-visible fraction");
    println!("(the maximally-contained rewriting loses nothing it may legally return).");
}
