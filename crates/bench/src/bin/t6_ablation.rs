//! T6 — Ablations of the design choices DESIGN.md calls out:
//!
//! 1. mining generalization controls (hints / policy-size minimization /
//!    active probes) vs extraction quality on the calendar app;
//! 2. fact-chase (trace-awareness) on/off vs the checker's allow rate on
//!    multi-step handlers;
//! 3. key-dependency chase on/off vs the forum metadata-probe pattern.
//!
//! Run: `cargo run -p bep-bench --bin t6_ablation --release`

use appsim::{ProxyPort, Scale, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row};
use bep_core::ProxyConfig;
use bep_extract::{
    collect_traces, mine_policy, refine, score_semantic_deps, ActiveOptions, Hints, MineOptions,
};

fn main() {
    mining_controls();
    trace_chase();
    key_chase();
}

fn mining_controls() {
    println!("-- ablation 1: mining generalization controls (calendar) --");
    let widths = [26usize, 7, 7, 7];
    header(&["variant", "views", "sem-P", "sem-R"], &widths);

    let env = app_env(&CALENDAR, 7, Scale::small(), 120);
    let schema = CALENDAR.schema();
    let truth = CALENDAR.ground_truth_cqs();
    let traces = collect_traces(&env.db, &CALENDAR.app(), &schema, &env.requests).unwrap();

    let variants: Vec<(&str, MineOptions)> = vec![
        (
            "gen only",
            MineOptions {
                hints: Hints::none(),
                minimize_policy: false,
                ..Default::default()
            },
        ),
        (
            "gen + minimize",
            MineOptions {
                hints: Hints::none(),
                minimize_policy: true,
                ..Default::default()
            },
        ),
        (
            "gen + hints",
            MineOptions {
                hints: Hints::id_columns(&schema),
                minimize_policy: false,
                ..Default::default()
            },
        ),
        (
            "gen + hints + minimize",
            MineOptions {
                hints: Hints::id_columns(&schema),
                minimize_policy: true,
                ..Default::default()
            },
        ),
    ];
    for (label, opts) in variants {
        let views = mine_policy(&traces, &opts);
        let s = score_semantic_deps(&views, &truth, &schema.dependencies());
        row(
            &[
                label.to_string(),
                views.len().to_string(),
                f2(s.precision),
                f2(s.recall),
            ],
            &widths,
        );
    }

    println!();

    // Active refinement matters on the wiki app when hints are NOT
    // available (hints and active probing are alternative remedies for the
    // same trap): the analytics probe's space id is invariant in a small
    // skewed workload, so mining pins it until mutation probing proves it
    // irrelevant.
    println!("-- ablation 1b: active constraint discovery (wiki, no hints) --");
    header(&["variant", "views", "sem-P", "sem-R"], &widths);
    let env = app_env(&appsim::WIKI, 21, Scale::small(), 10);
    let schema = appsim::WIKI.schema();
    let truth = appsim::WIKI.ground_truth_cqs();
    let traces = collect_traces(&env.db, &appsim::WIKI.app(), &schema, &env.requests).unwrap();
    let base = mine_policy(
        &traces,
        &MineOptions {
            hints: Hints::none(),
            minimize_policy: false,
            ..Default::default()
        },
    );
    let s = score_semantic_deps(&base, &truth, &schema.dependencies());
    row(
        &[
            "gen, no hints".to_string(),
            base.len().to_string(),
            f2(s.precision),
            f2(s.recall),
        ],
        &widths,
    );
    for budget in [0usize, 16, 64] {
        let (views, stats) = refine(
            base.clone(),
            &env.db,
            &appsim::WIKI.app(),
            &schema,
            &env.requests,
            ActiveOptions { max_probes: budget },
        )
        .unwrap();
        let s = score_semantic_deps(&views, &truth, &schema.dependencies());
        row(
            &[
                format!(
                    "+active (budget {budget}: {}p/{}gen)",
                    stats.probes, stats.generalized
                ),
                views.len().to_string(),
                f2(s.precision),
                f2(s.recall),
            ],
            &widths,
        );
    }
    println!();
}

fn run_app(sim: &'static appsim::SimApp, config: ProxyConfig, n: usize) -> (usize, usize) {
    let env = app_env(sim, 31, Scale::small(), n);
    let proxy = proxy_for(&env, config);
    let app = sim.app();
    let mut ok = 0;
    let mut blocked = 0;
    for req in &env.requests {
        let handler = app.handler(&req.handler).unwrap();
        let session = proxy.begin_session(req.session.clone());
        let mut port = ProxyPort {
            proxy: &proxy,
            session,
        };
        let result = appdsl::run_handler(
            &mut port,
            handler,
            &req.session,
            &req.params,
            appdsl::Limits::default(),
        )
        .unwrap();
        match result.outcome {
            appdsl::Outcome::Blocked { .. } => blocked += 1,
            _ => ok += 1,
        }
        proxy.end_session(session);
    }
    (ok, blocked)
}

fn trace_chase() {
    println!("-- ablation 2: trace facts on/off (calendar, 100 requests) --");
    let widths = [14usize, 8, 9];
    header(&["config", "ok", "blocked"], &widths);
    for (label, trace_aware) in [("trace-aware", true), ("trace-blind", false)] {
        let (ok, blocked) = run_app(
            &CALENDAR,
            ProxyConfig {
                trace_aware,
                ..Default::default()
            },
            100,
        );
        row(
            &[label.to_string(), ok.to_string(), blocked.to_string()],
            &widths,
        );
    }
    println!();
}

fn key_chase() {
    println!("-- ablation 3: key dependencies on/off (forum, 100 requests) --");
    let widths = [14usize, 8, 9];
    header(&["config", "ok", "blocked"], &widths);

    // With keys (normal path).
    let (ok, blocked) = run_app(&FORUM, ProxyConfig::default(), 100);
    row(
        &["with-keys".into(), ok.to_string(), blocked.to_string()],
        &widths,
    );

    // Without keys: rebuild the checker from a schema stripped of keys.
    let env = app_env(&FORUM, 31, Scale::small(), 100);
    let mut schema = qlogic::RelSchema::new();
    let db = FORUM.empty_db();
    for name in db.table_names() {
        let table = db.table(&name).unwrap();
        schema.add_table(name.clone(), table.schema.column_names());
        // Keys deliberately not declared.
    }
    let checker = bep_core::ComplianceChecker::new(schema, FORUM.policy().unwrap());
    let proxy = bep_core::SqlProxy::new(env.db.clone(), checker, ProxyConfig::default());
    let app = FORUM.app();
    let mut ok2 = 0;
    let mut blocked2 = 0;
    for req in &env.requests {
        let handler = app.handler(&req.handler).unwrap();
        let session = proxy.begin_session(req.session.clone());
        let mut port = ProxyPort {
            proxy: &proxy,
            session,
        };
        let result = appdsl::run_handler(
            &mut port,
            handler,
            &req.session,
            &req.params,
            appdsl::Limits::default(),
        )
        .unwrap();
        match result.outcome {
            appdsl::Outcome::Blocked { .. } => blocked2 += 1,
            _ => ok2 += 1,
        }
        proxy.end_session(session);
    }
    row(
        &["no-keys".into(), ok2.to_string(), blocked2.to_string()],
        &widths,
    );
    println!();
    println!("shape claims: trace-blind and key-blind configurations spuriously");
    println!("block multi-step handlers that the full checker admits.");
    assert_eq!(run_app(&FORUM, ProxyConfig::default(), 100).1, 0);
    assert!(
        blocked2 > 0,
        "key-blind checking must break the metadata-probe pattern"
    );
    let _ = (ok, blocked);
}
