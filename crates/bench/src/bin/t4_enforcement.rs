//! T4 — Trace-aware enforcement: allow/block decisions across proxy
//! configurations on the calendar and forum workloads, with cache
//! effectiveness. The headline row reproduces Example 2.1 at workload
//! scale: without trace awareness, multi-step handlers break.
//!
//! Run: `cargo run -p bep-bench --bin t4_enforcement --release`

use appsim::{ProxyPort, Scale, CALENDAR, FORUM};
use bep_bench::{app_env, header, proxy_for, row};
use bep_core::ProxyConfig;

fn main() {
    let widths = [9usize, 22, 8, 8, 8, 9, 9, 9];
    header(
        &[
            "app", "config", "ok", "denied", "blocked", "tmpl-hit", "sess-hit", "proofs",
        ],
        &widths,
    );

    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), 150);
        let configs: [(&str, ProxyConfig); 4] = [
            ("full", ProxyConfig::default()),
            (
                "no-trace",
                ProxyConfig {
                    trace_aware: false,
                    ..Default::default()
                },
            ),
            (
                "no-caches",
                ProxyConfig {
                    template_cache: false,
                    session_cache: false,
                    ..Default::default()
                },
            ),
            (
                "no-trace,no-caches",
                ProxyConfig {
                    trace_aware: false,
                    template_cache: false,
                    session_cache: false,
                    ..Default::default()
                },
            ),
        ];

        for (label, config) in configs {
            let proxy = proxy_for(&env, config);
            let app = env.sim.app();
            let mut counts = [0usize; 3];
            for req in &env.requests {
                let handler = app.handler(&req.handler).expect("handler");
                let session = proxy.begin_session(req.session.clone());
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session,
                };
                let result = appdsl::run_handler(
                    &mut port,
                    handler,
                    &req.session,
                    &req.params,
                    appdsl::Limits::default(),
                )
                .expect("run");
                match result.outcome {
                    appdsl::Outcome::Ok => counts[0] += 1,
                    appdsl::Outcome::Http(_) => counts[1] += 1,
                    appdsl::Outcome::Blocked { .. } => counts[2] += 1,
                }
                proxy.end_session(session);
            }
            let stats = proxy.stats();
            row(
                &[
                    sim.name.to_string(),
                    label.to_string(),
                    counts[0].to_string(),
                    counts[1].to_string(),
                    counts[2].to_string(),
                    stats.template_cache_hits.to_string(),
                    stats.session_cache_hits.to_string(),
                    (stats.template_proofs + stats.concrete_proofs).to_string(),
                ],
                &widths,
            );
        }
        println!();
    }

    println!("Shape claims:");
    println!("  - 'full' and 'no-caches' block 0 requests (the correct app is compliant;");
    println!("    caches change cost, not decisions);");
    println!("  - 'no-trace' blocks every multi-step handler (Example 2.1's point);");
    println!("  - template-cache hits dominate once templates are proven.");
}
