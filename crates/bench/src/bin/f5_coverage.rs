//! F5 — Coverage-guided trace collection (§3.2.2, step 1): distinct
//! application behaviours discovered per candidate request, coverage-guided
//! selection vs a naive fixed workload, and the effect on mining quality of
//! using the selected (small) workload instead of the raw one.
//!
//! Run: `cargo run -p bep-bench --bin f5_coverage --release`

use appsim::{seed_app, workload_for, Scale, CALENDAR, FORUM, WIKI};
use bep_bench::{f2, header, row};
use bep_extract::{
    collect_traces, coverage_guided, mine_policy, naive_curve, score_semantic_deps,
    CoverageOptions, Hints, MineOptions,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    for sim in [&CALENDAR, &FORUM, &WIKI] {
        println!("== {} ==", sim.name);
        let mut rng = SmallRng::seed_from_u64(23);
        let mut db = sim.empty_db();
        seed_app(sim.name, &mut db, &mut rng, &Scale::small());
        let app = sim.app();
        let schema = sim.schema();

        // Naive: a fixed 300-request workload.
        let workload = workload_for(sim.name, &db, &mut rng, 300).expect("workload");
        assert!(
            !workload.is_empty(),
            "{} workload must be non-empty",
            sim.name
        );
        let naive = naive_curve(&db, &app, &workload).expect("naive");

        // Guided: the same generator feeds a candidate pool; only
        // behaviour-novel requests (plus a few exemplars each) are kept.
        let mut gen_rng = SmallRng::seed_from_u64(29);
        let pool = workload_for(sim.name, &db, &mut gen_rng, 2_000).expect("workload");
        let report = coverage_guided(
            &db,
            &app,
            |i| pool.get(i).cloned(),
            CoverageOptions::default(),
        )
        .expect("guided");

        let widths = [12usize, 12, 12];
        header(&["requests", "naive-beh", "guided-beh"], &widths);
        for &n in &[10usize, 25, 50, 100, 200, 300] {
            let naive_at = naive
                .iter()
                .take_while(|(i, _)| *i <= n)
                .map(|(_, b)| *b)
                .last()
                .unwrap_or(0);
            let guided_at = report
                .curve
                .iter()
                .take_while(|(i, _)| *i <= n)
                .map(|(_, b)| *b)
                .last()
                .unwrap_or(0);
            row(
                &[n.to_string(), naive_at.to_string(), guided_at.to_string()],
                &widths,
            );
        }
        println!(
            "guided: {} behaviours from {} candidates, keeping {} requests",
            report.behaviours(),
            report.candidates_tried,
            report.selected.len()
        );

        // Mining on the selected workload matches mining on the raw one.
        let deps = schema.dependencies();
        let truth = sim.ground_truth_cqs();
        let opts = MineOptions {
            hints: Hints::id_columns(&schema),
            ..Default::default()
        };
        let raw_traces = collect_traces(&db, &app, &schema, &workload).expect("traces");
        let raw_score = score_semantic_deps(&mine_policy(&raw_traces, &opts), &truth, &deps);
        let sel_traces = collect_traces(&db, &app, &schema, &report.selected).expect("traces");
        let sel_score = score_semantic_deps(&mine_policy(&sel_traces, &opts), &truth, &deps);
        println!(
            "mining recall: raw({} reqs) = {}, selected({} reqs) = {}\n",
            workload.len(),
            f2(raw_score.recall),
            report.selected.len(),
            f2(sel_score.recall),
        );
        assert!(
            sel_score.recall >= raw_score.recall - 1e-9,
            "the selected workload must not lose mining recall"
        );
    }
    println!("shape check PASSED: guided selection reaches full behavioural");
    println!("coverage with a fraction of the traces, at equal mining recall.");
}
