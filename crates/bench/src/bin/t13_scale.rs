//! T13 — Scenario-fleet scale soak: the generated fleet (social, store,
//! review) at 10^5 users each, Zipf traffic with churning sessions driven
//! through the wire servers, a decision-differential gate, a thread
//! sweep, and a resident-memory trajectory.
//!
//! Three experiments, in order:
//!
//! 1. **Differential gate** (always first): for every fleet app at a
//!    small population, one sequential client drives the same seeded
//!    traffic stream against an event-driven server, a blocking server,
//!    and a second event-driven run with the same seed. Every
//!    per-statement outcome, the aggregate allowed/blocked counters, and
//!    the decision journals (template hash, verdict, cache tier) must
//!    match across all three — the generated apps decide identically
//!    regardless of front-end, and identically across reruns.
//! 2. **Scale soak**: each (app, mode, workers) cell populates the app
//!    at scale, starts a server, and lets `m` open-loop-ish workers each
//!    drive an independent traffic engine (derived seed, disjoint
//!    fresh-id range) over a persistent connection. The run is split
//!    into phases; at each phase boundary the driver samples process
//!    RSS, so the report carries a per-phase p50/p99 latency and a
//!    resident-memory-per-live-session trajectory. Decision errors — a
//!    handler request proxy-blocked, or a raw probe not blocked — must
//!    be zero in every cell.
//! 3. **Thread sweep**: workers m ∈ {1,2,4} for both server modes. On a
//!    multi-core host the sweep asserts multi-worker throughput does not
//!    collapse; on a single core it only records the numbers.
//!
//! `--smoke` runs the gate plus two short social-app cells at 10^4 users
//! (seconds); the full run covers all 18 cells at 10^5 users and writes
//! `BENCH_t13.json`.
//!
//! `--users N` (e.g. `--users 1000000`) is the host-gated big cell: the
//! gate, then a single event-driven soak of the first fleet app at N
//! users. Populating 10^6 users takes minutes and gigabytes, so this
//! cell never runs in CI — results are recorded in `EXPERIMENTS.md`.
//!
//! Run: `cargo run -p bep-bench --bin t13_scale --release [-- --smoke]`

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use appdsl::{run_handler, App, DslError, Limits, Outcome, PortOutcome, QueryPort};
use appsim::AppSpec;
use bep_bench::{f2, header, row};
use bep_core::{read_process_memory, ComplianceChecker, ProxyConfig, SqlProxy};
use bep_scenario::{
    derive, fleet, GeneratedApp, TrafficConfig, TrafficEngine, TrafficOp, FRESH_ID_BASE,
};
use bep_server::{Client, ExecOutcome, Server, ServerConfig, ServerMode};
use minidb::Database;
use sqlir::Value;

/// Fleet seed: every population, traffic stream, and rerun hangs off it.
const FLEET_SEED: u64 = 1307;
/// Users per generated app in the full run.
const USERS_FULL: u64 = 100_000;
/// Users per generated app under `--smoke`.
const USERS_SMOKE: u64 = 10_000;
/// Users per app in the differential gate (kept small: the gate is about
/// decisions, not scale).
const GATE_USERS: u64 = 512;
/// Traffic ops per app per gate run.
const GATE_OPS: usize = 500;
/// Worker counts swept in the full run.
const SWEEP: [usize; 3] = [1, 2, 4];
/// Soak phases (RSS is sampled at each boundary).
const PHASES_FULL: usize = 4;
const PHASES_SMOKE: usize = 2;
/// Traffic ops per worker per phase.
const PHASE_OPS_FULL: usize = 6000;
const PHASE_OPS_SMOKE: usize = 400;
/// Per-operation client I/O timeout.
const IO: Duration = Duration::from_secs(30);

fn mode_label(mode: ServerMode) -> &'static str {
    match mode {
        ServerMode::EventDriven => "event",
        ServerMode::Blocking => "blocking",
    }
}

fn config_for(mode: ServerMode, workers: usize) -> ServerConfig {
    match mode {
        ServerMode::EventDriven => ServerConfig::default(),
        ServerMode::Blocking => ServerConfig {
            mode: ServerMode::Blocking,
            // Persistent connections occupy a worker each; never starve
            // the sweep by design.
            workers: workers.max(4),
            queue_capacity: workers.max(4),
            ..Default::default()
        },
    }
}

/// Forwards each handler statement over the wire client, optionally
/// logging every outcome (the gate compares those logs entry by entry).
struct ClientPort<'a> {
    client: &'a mut Client,
    session: u64,
    log: Option<Vec<String>>,
}

impl QueryPort for ClientPort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        let out = self
            .client
            .execute(self.session, sql, bindings)
            .map_err(|e| DslError::Port(e.to_string()))?;
        if let Some(log) = &mut self.log {
            log.push(format!("{out:?}"));
        }
        Ok(match out {
            ExecOutcome::Rows(r) => PortOutcome::Rows(r),
            ExecOutcome::Affected(n) => PortOutcome::Affected(n as usize),
            ExecOutcome::Blocked { reason, .. } => PortOutcome::Blocked(reason),
        })
    }
}

/// A populated app, ready to stamp out per-cell proxies.
struct PreparedApp {
    app: GeneratedApp,
    parsed: App,
    db: Database,
    rows: usize,
    populate_s: f64,
}

fn prepare(app: GeneratedApp) -> PreparedApp {
    let mut db = app.empty_db();
    let t0 = Instant::now();
    let rows = app.populate(&mut db).expect("populate");
    let populate_s = t0.elapsed().as_secs_f64();
    let parsed = app.app();
    PreparedApp {
        app,
        parsed,
        db,
        rows,
        populate_s,
    }
}

fn proxy_of(prep: &PreparedApp) -> Arc<SqlProxy> {
    let checker = ComplianceChecker::new(prep.app.schema(), prep.app.policy().expect("policy"));
    Arc::new(SqlProxy::new(
        prep.db.clone(),
        checker,
        ProxyConfig::default(),
    ))
}

// ------------------------------------------------------- differential gate

/// One sequential traffic replay, in comparable form.
struct GateRun {
    log: Vec<String>,
    allowed: u64,
    blocked: u64,
    /// Journal provenance: (template hash, verdict, cache tier).
    journal: Vec<(u64, &'static str, &'static str)>,
}

fn gate_cfg() -> TrafficConfig {
    TrafficConfig {
        target_sessions: 8,
        mean_session_len: 10.0,
        ..TrafficConfig::default()
    }
}

fn gate_run(prep: &PreparedApp, mode: ServerMode, seed: u64) -> GateRun {
    let proxy = proxy_of(prep);
    let server = Server::start(Arc::clone(&proxy), config_for(mode, 1), "127.0.0.1:0")
        .expect("start server");
    let mut client = Client::connect(server.addr(), IO).expect("connect");
    let mut engine = TrafficEngine::new(&prep.app, gate_cfg(), seed);
    let mut sessions: Vec<Option<u64>> = vec![None; gate_cfg().target_sessions];
    let mut log = Vec::with_capacity(GATE_OPS * 2);
    for _ in 0..GATE_OPS {
        match engine.next_op() {
            TrafficOp::Begin {
                slot,
                uid,
                user_index,
            } => {
                let id = client
                    .begin(vec![("MyUId".into(), Value::Int(uid))])
                    .expect("begin");
                sessions[slot] = Some(id);
                log.push(format!("begin u{user_index}"));
            }
            TrafficOp::End { slot } => {
                let id = sessions[slot].take().expect("live session");
                client.end(id).expect("end");
                log.push("end".to_string());
            }
            TrafficOp::RawProbe { slot, sql } | TrafficOp::RawWriteProbe { slot, sql } => {
                let id = sessions[slot].expect("live session");
                let out = client.execute(id, &sql, &[]).expect("raw probe executes");
                log.push(format!("raw {out:?}"));
            }
            TrafficOp::Request { slot, request, .. } => {
                let id = sessions[slot].expect("live session");
                let handler = prep.parsed.handler(&request.handler).expect("handler");
                let mut port = ClientPort {
                    client: &mut client,
                    session: id,
                    log: Some(Vec::new()),
                };
                let result = run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                )
                .unwrap_or_else(|e| panic!("{}::{}: {e}", prep.app.name, request.handler));
                log.append(port.log.as_mut().expect("gate port logs"));
                log.push(format!("{}:{:?}", request.handler, result.outcome));
            }
        }
    }
    for id in sessions.iter().flatten() {
        client.end(*id).expect("end");
    }
    drop(client);
    server.shutdown();
    let stats = proxy.stats();
    let journal = proxy
        .journal()
        .events_since(0, usize::MAX)
        .into_iter()
        .map(|ev| (ev.template_hash, ev.verdict.label(), ev.tier.label()))
        .collect();
    GateRun {
        log,
        allowed: stats.allowed,
        blocked: stats.blocked,
        journal,
    }
}

fn compare_runs(name: &str, label: &str, a: &GateRun, b: &GateRun) -> usize {
    let mut mismatches = 0;
    if a.log.len() != b.log.len() {
        mismatches += 1;
        eprintln!(
            "{name} [{label}]: log lengths differ: {} vs {}",
            a.log.len(),
            b.log.len()
        );
    }
    for (i, (x, y)) in a.log.iter().zip(&b.log).enumerate() {
        if x != y {
            mismatches += 1;
            eprintln!("{name} [{label}] entry {i}: {x} vs {y}");
        }
    }
    if (a.allowed, a.blocked) != (b.allowed, b.blocked) {
        mismatches += 1;
        eprintln!(
            "{name} [{label}]: counters diverged: {}/{} vs {}/{}",
            a.allowed, a.blocked, b.allowed, b.blocked
        );
    }
    if a.journal != b.journal {
        mismatches += 1;
        eprintln!("{name} [{label}]: journal provenance diverged");
    }
    mismatches
}

/// Drives the same seeded traffic against both front-ends and an
/// event-driven rerun; returns (log entries, mismatches). Mismatches
/// must be zero.
fn differential_gate(prep: &PreparedApp) -> (usize, usize) {
    let event = gate_run(prep, ServerMode::EventDriven, 99);
    let blocking = gate_run(prep, ServerMode::Blocking, 99);
    let rerun = gate_run(prep, ServerMode::EventDriven, 99);
    let mut mismatches = compare_runs(&prep.app.name, "event vs blocking", &event, &blocking);
    mismatches += compare_runs(&prep.app.name, "event vs rerun", &event, &rerun);
    println!(
        "gate[{}]: {} log entries, {} journal events, {}/{} allowed/blocked, {} mismatches",
        prep.app.name,
        event.log.len(),
        event.journal.len(),
        event.allowed,
        event.blocked,
        mismatches
    );
    (event.log.len(), mismatches)
}

// ---------------------------------------------------------------- the soak

struct PhaseStat {
    ops: usize,
    wall_s: f64,
    p50_us: f64,
    p99_us: f64,
    live_sessions: usize,
    resident_bytes: u64,
    rss_per_session_bytes: u64,
}

struct CellResult {
    app: String,
    mode: &'static str,
    workers: usize,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    decision_errors: u64,
    sessions: u64,
    allowed: u64,
    blocked: u64,
    template_cache_hits: u64,
    template_negative_hits: u64,
    session_cache_hits: u64,
    deny_cache_hits: u64,
    template_proofs: u64,
    concrete_proofs: u64,
    phases: Vec<PhaseStat>,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// What each worker brings home from a soak cell.
struct WorkerReport {
    phase_latencies_us: Vec<Vec<f64>>,
    phase_live: Vec<usize>,
    ops: usize,
    decision_errors: u64,
    sessions_begun: u64,
}

/// One soak cell: `m` workers, each with its own connection, traffic
/// engine (derived seed, disjoint fresh-id range), and session slots,
/// against one server. The driver thread samples RSS at phase barriers.
fn soak(
    prep: &PreparedApp,
    mode: ServerMode,
    m: usize,
    phases: usize,
    phase_ops: usize,
) -> CellResult {
    let proxy = proxy_of(prep);
    let server = Server::start(Arc::clone(&proxy), config_for(mode, m), "127.0.0.1:0")
        .expect("start server");
    let addr = server.addr();
    let baseline = read_process_memory().resident_bytes;
    let cell_seed = derive(prep.app.seed, 0xB13);

    let phase_end = Barrier::new(m + 1);
    let phase_resume = Barrier::new(m + 1);
    let mut rss_samples: Vec<(f64, u64)> = Vec::with_capacity(phases);

    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|w| {
                let (phase_end, phase_resume) = (&phase_end, &phase_resume);
                let (app, parsed) = (&prep.app, &prep.parsed);
                scope.spawn(move || {
                    let cfg = TrafficConfig::default();
                    let slots = cfg.target_sessions;
                    let mut engine = TrafficEngine::new(app, cfg, derive(cell_seed, w as u64))
                        .with_fresh_base(FRESH_ID_BASE + (w as i64 + 1) * 1_000_000_000);
                    let mut client = Client::connect(addr, IO).expect("connect");
                    let mut sessions: Vec<Option<u64>> = vec![None; slots];
                    let mut report = WorkerReport {
                        phase_latencies_us: Vec::with_capacity(phases),
                        phase_live: Vec::with_capacity(phases),
                        ops: 0,
                        decision_errors: 0,
                        sessions_begun: 0,
                    };
                    for _ in 0..phases {
                        let mut lat = Vec::with_capacity(phase_ops);
                        for _ in 0..phase_ops {
                            let t0 = Instant::now();
                            match engine.next_op() {
                                TrafficOp::Begin { slot, uid, .. } => {
                                    let id = client
                                        .begin(vec![("MyUId".into(), Value::Int(uid))])
                                        .expect("begin");
                                    sessions[slot] = Some(id);
                                }
                                TrafficOp::End { slot } => {
                                    let id = sessions[slot].take().expect("live session");
                                    client.end(id).expect("end");
                                }
                                TrafficOp::RawProbe { slot, sql }
                                | TrafficOp::RawWriteProbe { slot, sql } => {
                                    let id = sessions[slot].expect("live session");
                                    match client.execute(id, &sql, &[]) {
                                        Ok(ExecOutcome::Blocked { .. }) => {}
                                        // A raw probe that is not blocked is
                                        // a decision error, full stop.
                                        _ => report.decision_errors += 1,
                                    }
                                }
                                TrafficOp::Request { slot, request, .. } => {
                                    let id = sessions[slot].expect("live session");
                                    let handler =
                                        parsed.handler(&request.handler).expect("handler");
                                    let mut port = ClientPort {
                                        client: &mut client,
                                        session: id,
                                        log: None,
                                    };
                                    match run_handler(
                                        &mut port,
                                        handler,
                                        &request.session,
                                        &request.params,
                                        Limits::default(),
                                    ) {
                                        // The ground-truth policy admits the
                                        // app: no handler request — authorized
                                        // or probe — may be proxy-blocked.
                                        Ok(r) => {
                                            if matches!(r.outcome, Outcome::Blocked { .. }) {
                                                report.decision_errors += 1;
                                            }
                                        }
                                        Err(_) => report.decision_errors += 1,
                                    }
                                }
                            }
                            report.ops += 1;
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        report.phase_live.push(engine.live_sessions());
                        report.phase_latencies_us.push(lat);
                        phase_end.wait();
                        phase_resume.wait();
                    }
                    for id in sessions.iter().flatten() {
                        client.end(*id).expect("end");
                    }
                    report.sessions_begun = engine.sessions_begun();
                    report
                })
            })
            .collect();

        let t0 = Instant::now();
        for _ in 0..phases {
            phase_end.wait();
            rss_samples.push((
                t0.elapsed().as_secs_f64(),
                read_process_memory().resident_bytes,
            ));
            phase_resume.wait();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    server.shutdown();
    let stats = proxy.stats();

    let mut phase_stats = Vec::with_capacity(phases);
    for p in 0..phases {
        let mut lat: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.phase_latencies_us[p].iter().copied())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let live: usize = reports.iter().map(|r| r.phase_live[p]).sum();
        let (t_end, resident) = rss_samples[p];
        let t_start = if p == 0 { 0.0 } else { rss_samples[p - 1].0 };
        let growth = resident.saturating_sub(baseline);
        phase_stats.push(PhaseStat {
            ops: lat.len(),
            wall_s: t_end - t_start,
            p50_us: percentile(&lat, 50.0),
            p99_us: percentile(&lat, 99.0),
            live_sessions: live,
            resident_bytes: resident,
            rss_per_session_bytes: growth / live.max(1) as u64,
        });
    }
    let ops: usize = reports.iter().map(|r| r.ops).sum();
    let wall_s = rss_samples.last().expect("phases ran").0;
    CellResult {
        app: prep.app.name.clone(),
        mode: mode_label(mode),
        workers: m,
        ops,
        wall_s,
        throughput: ops as f64 / wall_s,
        decision_errors: reports.iter().map(|r| r.decision_errors).sum(),
        sessions: reports.iter().map(|r| r.sessions_begun).sum(),
        allowed: stats.allowed,
        blocked: stats.blocked,
        template_cache_hits: stats.template_cache_hits,
        template_negative_hits: stats.template_negative_hits,
        session_cache_hits: stats.session_cache_hits,
        deny_cache_hits: stats.deny_cache_hits,
        template_proofs: stats.template_proofs,
        concrete_proofs: stats.concrete_proofs,
        phases: phase_stats,
    }
}

// ------------------------------------------------------------------- main

fn json_of(
    results: &[CellResult],
    preps: &[&PreparedApp],
    cores: usize,
    users: u64,
    gate: (usize, usize),
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t13_scale\",\n");
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(&format!("  \"fleet_seed\": {FLEET_SEED},\n"));
    out.push_str(&format!("  \"users_per_app\": {users},\n"));
    out.push_str(&format!(
        "  \"differential_gate\": {{\"apps\": {}, \"gate_users\": {GATE_USERS}, \
         \"ops_per_app\": {GATE_OPS}, \"log_entries\": {}, \"mismatches\": {}}},\n",
        preps.len(),
        gate.0,
        gate.1
    ));
    out.push_str("  \"populations\": [\n");
    for (i, p) in preps.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"rows\": {}, \"populate_s\": {:.2}}}{}\n",
            p.app.name,
            p.rows,
            p.populate_s,
            if i + 1 == preps.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"mode\": \"{}\", \"workers\": {}, \"ops\": {}, \
             \"wall_s\": {:.2}, \"throughput_ops_s\": {:.1}, \"decision_errors\": {}, \
             \"sessions\": {}, \"allowed\": {}, \"blocked\": {},\n",
            r.app,
            r.mode,
            r.workers,
            r.ops,
            r.wall_s,
            r.throughput,
            r.decision_errors,
            r.sessions,
            r.allowed,
            r.blocked,
        ));
        out.push_str(&format!(
            "     \"cache\": {{\"template_hits\": {}, \"template_negative_hits\": {}, \
             \"session_hits\": {}, \"deny_hits\": {}, \"template_proofs\": {}, \
             \"concrete_proofs\": {}}},\n",
            r.template_cache_hits,
            r.template_negative_hits,
            r.session_cache_hits,
            r.deny_cache_hits,
            r.template_proofs,
            r.concrete_proofs,
        ));
        out.push_str("     \"phases\": [\n");
        for (j, ph) in r.phases.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"ops\": {}, \"wall_s\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                 \"live_sessions\": {}, \"resident_mb\": {:.1}, \"rss_per_session_kb\": {}}}{}\n",
                ph.ops,
                ph.wall_s,
                ph.p50_us,
                ph.p99_us,
                ph.live_sessions,
                ph.resident_bytes as f64 / (1024.0 * 1024.0),
                ph.rss_per_session_bytes / 1024,
                if j + 1 == r.phases.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "     ]}}{}\n",
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // `--users N`: the host-gated single-cell run (see the module docs).
    let users_override = {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--users").map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse::<u64>().ok())
                .expect("--users takes a positive integer")
        })
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    // Phase 1: the differential gate — always, before anything is soaked.
    let gate_preps: Vec<PreparedApp> = fleet(FLEET_SEED, GATE_USERS)
        .into_iter()
        .map(prepare)
        .collect();
    let mut gate_entries = 0;
    let mut mismatches = 0;
    for prep in &gate_preps {
        let (entries, miss) = differential_gate(prep);
        gate_entries += entries;
        mismatches += miss;
    }
    assert_eq!(
        mismatches, 0,
        "differential gate: generated-app decisions must be identical \
         across front-ends and same-seed reruns"
    );

    // Phase 2: populate at scale and soak.
    let users = users_override.unwrap_or(if smoke { USERS_SMOKE } else { USERS_FULL });
    let (phases, phase_ops) = if smoke {
        (PHASES_SMOKE, PHASE_OPS_SMOKE)
    } else {
        (PHASES_FULL, PHASE_OPS_FULL)
    };
    // The big host-gated cell runs one app in one mode at one worker
    // count — the point is the population size, not the cell matrix.
    let single_app = smoke || users_override.is_some();
    let apps = if single_app {
        fleet(FLEET_SEED, users)
            .into_iter()
            .take(1)
            .collect::<Vec<_>>()
    } else {
        fleet(FLEET_SEED, users)
    };
    let sweep: &[usize] = if users_override.is_some() {
        &[2]
    } else if smoke {
        &[1]
    } else {
        &SWEEP
    };
    let modes: &[ServerMode] = if users_override.is_some() {
        &[ServerMode::EventDriven]
    } else {
        &[ServerMode::Blocking, ServerMode::EventDriven]
    };

    let preps: Vec<PreparedApp> = apps
        .into_iter()
        .map(|app| {
            let prep = prepare(app);
            println!(
                "populated {} with {} rows for {} users in {:.2}s",
                prep.app.name, prep.rows, users, prep.populate_s
            );
            prep
        })
        .collect();

    let widths = [8usize, 9, 3, 7, 9, 10, 10, 6, 8, 8, 5];
    header(
        &[
            "app", "mode", "m", "ops", "ops/s", "p50-us", "p99-us", "rss/s-kb", "ok", "denied",
            "err",
        ],
        &widths,
    );
    let mut results: Vec<CellResult> = Vec::new();
    for prep in &preps {
        for &m in sweep {
            for &mode in modes {
                let r = soak(prep, mode, m, phases, phase_ops);
                let last = r.phases.last().expect("phases");
                row(
                    &[
                        r.app.clone(),
                        r.mode.to_string(),
                        r.workers.to_string(),
                        r.ops.to_string(),
                        f2(r.throughput),
                        f2(last.p50_us),
                        f2(last.p99_us),
                        (last.rss_per_session_bytes / 1024).to_string(),
                        r.allowed.to_string(),
                        r.blocked.to_string(),
                        r.decision_errors.to_string(),
                    ],
                    &widths,
                );
                results.push(r);
            }
        }
        println!();
    }

    // Zero decision errors in every cell — enforcement never blocks
    // handler traffic and always blocks raw probes, at any scale.
    for r in &results {
        assert_eq!(
            r.decision_errors, 0,
            "{} {} m={}: decision errors in a scale soak",
            r.app, r.mode, r.workers
        );
    }

    // The memory claim. At the standard populations: a generous absolute
    // bound — steady-state resident bytes per live session stay tiny,
    // sessions are cheap, the population is not re-materialized per
    // session. At `--users` override scale the population's fixed RSS
    // dominates the numerator (10^6 users is gigabytes of base data
    // divided by ~10^2 live sessions), so the absolute ratio is
    // meaningless; what must still hold is the *trajectory* — per-session
    // residency flat across phases instead of growing with traffic.
    for r in &results {
        let first = r.phases.first().expect("phases");
        let last = r.phases.last().expect("phases");
        if users_override.is_none() {
            assert!(
                last.rss_per_session_bytes < 8 * 1024 * 1024,
                "{} {} m={}: {} bytes resident per live session",
                r.app,
                r.mode,
                r.workers,
                last.rss_per_session_bytes
            );
        } else {
            assert!(
                last.rss_per_session_bytes <= 2 * first.rss_per_session_bytes,
                "{} {} m={}: per-session residency grew across phases: {} -> {}",
                r.app,
                r.mode,
                r.workers,
                first.rss_per_session_bytes,
                last.rss_per_session_bytes
            );
        }
    }

    // Thread sweep: only assert scaling behavior when the host can
    // actually run workers in parallel; a 1-core host just records it.
    if !smoke && users_override.is_none() && cores >= 2 {
        for prep in &preps {
            for mode in ["event", "blocking"] {
                let of = |m: usize| {
                    results
                        .iter()
                        .find(|r| r.app == prep.app.name && r.mode == mode && r.workers == m)
                        .map(|r| r.throughput)
                        .unwrap_or(0.0)
                };
                let single = of(SWEEP[0]);
                let best = SWEEP[1..].iter().map(|&m| of(m)).fold(0.0, f64::max);
                println!(
                    "{} [{}]: 1 worker {:.1} ops/s, best multi-worker {:.1} ops/s ({:+.1}%)",
                    prep.app.name,
                    mode,
                    single,
                    best,
                    (best / single - 1.0) * 100.0
                );
                assert!(
                    best >= 0.8 * single,
                    "{} [{}]: multi-worker throughput collapsed",
                    prep.app.name,
                    mode
                );
            }
        }
    }

    if smoke {
        println!("smoke: gate clean ({gate_entries} log entries), soak cells error-free");
        return;
    }
    if users_override.is_some() {
        let r = results.first().expect("one cell ran");
        let last = r.phases.last().expect("phases");
        println!(
            "\nbig cell: {} at {} users, {:.1} ops/s, {} KiB resident per live \
             session, 0 decision errors (record in EXPERIMENTS.md)",
            r.app,
            users,
            r.throughput,
            last.rss_per_session_bytes / 1024,
        );
        return;
    }

    let prep_refs: Vec<&PreparedApp> = preps.iter().collect();
    let json = json_of(&results, &prep_refs, cores, users, (gate_entries, 0));
    std::fs::write("BENCH_t13.json", &json).expect("write BENCH_t13.json");
    println!("\nwrote BENCH_t13.json ({} cells)", results.len());
}
