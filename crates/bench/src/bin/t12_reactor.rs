//! T12 — Event-driven vs blocking front-end: throughput under concurrent
//! replayed workloads, a decision-differential gate, and the 10k-idle-
//! connection scaling claim.
//!
//! The workload is a *recorded replay*: each application's handler
//! workload runs once in-process through a recording port, producing the
//! flat per-session statement script the handlers actually issued. Both
//! front-ends then replay the identical script, which makes three
//! experiments possible:
//!
//! 1. **Differential gate** (runs before any sweep, and alone under
//!    `--smoke`): a single client replays the calendar (and, in the full
//!    run, forum) script sequentially against an event-driven and a
//!    blocking server. Every per-statement outcome, the aggregate
//!    allowed/blocked counters, and the decision journals (template hash,
//!    verdict, cache tier) must match exactly — zero mismatches or the
//!    process exits nonzero. The event loop is an *execution* strategy,
//!    never a *decision* strategy.
//! 2. **Idle-connection smoke**: the event-driven server holds ~10k open
//!    idle connections; the process thread count must not grow by even
//!    one, and a real client must still get decisions through the crowd
//!    (the blocking front-end would need a thread per connection).
//! 3. **Throughput sweep** (full run only): m ∈ {1,2,4,8} closed-loop
//!    clients replay their share of the script over persistent
//!    connections, pipelining each request's statements in one burst.
//!    The blocking server gets `workers = max(m, 4)` so it is never
//!    starved by design; the event server runs its single reactor thread
//!    with cross-connection batching. Results go to `BENCH_t12.json`.
//!
//! Run: `cargo run -p bep-bench --bin t12_reactor --release [-- --smoke]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use appdsl::{DslError, PortOutcome, QueryPort};
use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, salted_params, AppEnv};
use bep_core::{ProxyConfig, SqlProxy};
use bep_server::reactor::raise_nofile_limit;
use bep_server::{Client, Server, ServerConfig, ServerMode};
use sqlir::Value;

/// Requests drawn per app.
const N_REQUESTS: usize = 96;
/// Rounds each client replays its share in the throughput sweep.
const ROUNDS: usize = 3;
/// Client counts swept.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Idle connections held in the scaling smoke.
const IDLE_TARGET: usize = 10_000;
/// Per-operation client I/O timeout.
const IO: Duration = Duration::from_secs(30);

type Bindings = Vec<(String, Value)>;
/// One session's recorded statements: (sql, bindings) in issue order.
type Stmts = Vec<(String, Bindings)>;
/// The replay script: one (session bindings, statements) entry per
/// workload request.
type Script = Vec<(Bindings, Stmts)>;

/// Tees every statement a handler issues while delegating to the proxy.
struct RecordingPort<'a> {
    inner: ProxyPort<'a>,
    log: Stmts,
}

impl QueryPort for RecordingPort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        self.log.push((sql.to_string(), bindings.to_vec()));
        self.inner.run(sql, bindings)
    }
}

/// Runs the workload `ROUNDS` times in-process and records one flat
/// statement script per round. Create-style requests are salted per
/// round ([`salted_params`]) so replaying round r never re-inserts round
/// r-1's primary keys — the recording proxy's database evolves exactly
/// as the replay servers' databases will.
fn record_scripts(env: &AppEnv) -> Vec<Script> {
    let proxy = proxy_for(env, ProxyConfig::default());
    let app = env.sim.app();
    let mut scripts = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let mut script = Vec::with_capacity(env.requests.len());
        for req in &env.requests {
            let session = proxy.begin_session(req.session.clone());
            let mut port = RecordingPort {
                inner: ProxyPort {
                    proxy: &proxy,
                    session,
                },
                log: Vec::new(),
            };
            let handler = app.handler(&req.handler).expect("handler");
            let params = salted_params(&req.params, round);
            let _ = appdsl::run_handler(
                &mut port,
                handler,
                &req.session,
                &params,
                appdsl::Limits::default(),
            );
            proxy.end_session(session);
            script.push((req.session.clone(), port.log));
        }
        scripts.push(script);
    }
    scripts
}

fn config_for(mode: ServerMode, clients: usize) -> ServerConfig {
    match mode {
        ServerMode::EventDriven => ServerConfig::default(),
        ServerMode::Blocking => ServerConfig {
            mode: ServerMode::Blocking,
            // Persistent connections occupy a worker each; never starve
            // the sweep by design.
            workers: clients.max(4),
            queue_capacity: clients.max(4),
            ..Default::default()
        },
    }
}

fn mode_label(mode: ServerMode) -> &'static str {
    match mode {
        ServerMode::EventDriven => "event",
        ServerMode::Blocking => "blocking",
    }
}

// ------------------------------------------------------- differential gate

/// What one sequential replay produced, in comparable form.
struct GateRun {
    outcomes: Vec<String>,
    allowed: u64,
    blocked: u64,
    /// Journal provenance: (template hash, verdict, cache tier).
    journal: Vec<(u64, &'static str, &'static str)>,
}

fn gate_replay(env: &AppEnv, script: &Script, mode: ServerMode) -> GateRun {
    let proxy: Arc<SqlProxy> = Arc::new(proxy_for(env, ProxyConfig::default()));
    let server = Server::start(Arc::clone(&proxy), config_for(mode, 1), "127.0.0.1:0")
        .expect("start server");
    let mut client = Client::connect(server.addr(), IO).expect("connect");
    let mut outcomes = Vec::new();
    for (session_bindings, stmts) in script {
        let session = client.begin(session_bindings.clone()).expect("begin");
        for (sql, bindings) in stmts {
            outcomes.push(match client.execute(session, sql, bindings) {
                Ok(out) => format!("{out:?}"),
                Err(e) => format!("error: {e}"),
            });
        }
        client.end(session).expect("end");
    }
    drop(client);
    server.shutdown();
    let stats = proxy.stats();
    let journal = proxy
        .journal()
        .events_since(0, usize::MAX)
        .into_iter()
        .map(|ev| (ev.template_hash, ev.verdict.label(), ev.tier.label()))
        .collect();
    GateRun {
        outcomes,
        allowed: stats.allowed,
        blocked: stats.blocked,
        journal,
    }
}

/// Replays `script` through both front-ends and counts decision
/// mismatches (must be zero).
fn differential_gate(sim: &'static SimApp, env: &AppEnv, script: &Script) -> usize {
    let event = gate_replay(env, script, ServerMode::EventDriven);
    let blocking = gate_replay(env, script, ServerMode::Blocking);
    let mut mismatches = 0;
    assert_eq!(
        event.outcomes.len(),
        blocking.outcomes.len(),
        "{}: replay lengths differ",
        sim.name
    );
    for (i, (e, b)) in event.outcomes.iter().zip(&blocking.outcomes).enumerate() {
        if e != b {
            mismatches += 1;
            eprintln!("{} stmt {i}: event={e} blocking={b}", sim.name);
        }
    }
    if (event.allowed, event.blocked) != (blocking.allowed, blocking.blocked) {
        mismatches += 1;
        eprintln!(
            "{}: counters diverged: event {}/{} vs blocking {}/{}",
            sim.name, event.allowed, event.blocked, blocking.allowed, blocking.blocked
        );
    }
    if event.journal != blocking.journal {
        mismatches += 1;
        eprintln!("{}: journal provenance diverged", sim.name);
    }
    println!(
        "gate[{}]: {} statements, {} journal events, {} mismatches",
        sim.name,
        event.outcomes.len(),
        event.journal.len(),
        mismatches
    );
    mismatches
}

// ------------------------------------------------------------- idle smoke

fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

struct IdleSmoke {
    connections: usize,
    threads_before: usize,
    threads_while_held: usize,
    roundtrip_ok: bool,
}

/// The hidden `--hold <addr> <n>` child: opens `n` idle connections from
/// its own fd budget, reports how many it holds on stdout, and keeps
/// them open until stdin closes. Running the client ends in a separate
/// process lets the server side genuinely hold the full count — one
/// process's RLIMIT_NOFILE would otherwise be split between both ends.
fn hold_connections(addr: &str, n: usize) -> ! {
    use std::io::Read;
    let nofile = raise_nofile_limit((n + 512) as u64);
    let n = n.min(nofile.saturating_sub(256) as usize);
    let mut held = Vec::with_capacity(n);
    for i in 0..n {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => held.push(s),
            Err(e) => panic!("idle connect {i}/{n} failed: {e}"),
        }
    }
    println!("held {}", held.len());
    let _ = std::io::stdin().read(&mut [0u8; 1]);
    drop(held);
    std::process::exit(0);
}

/// Holds ~10k idle connections against the event-driven server and
/// verifies the thread count stays flat while a real client still gets
/// decisions through the crowd.
fn idle_smoke(env: &AppEnv) -> IdleSmoke {
    use std::io::{BufRead, BufReader};
    let nofile = raise_nofile_limit((IDLE_TARGET + 1024) as u64);
    let n = IDLE_TARGET.min(nofile.saturating_sub(512) as usize);
    if n < IDLE_TARGET {
        println!("idle smoke: RLIMIT_NOFILE={nofile}, scaling to {n} connections");
    }
    let proxy: Arc<SqlProxy> = Arc::new(proxy_for(env, ProxyConfig::default()));
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("start server");
    let addr = server.addr();

    let threads_before = thread_count();
    let exe = std::env::current_exe().expect("current exe");
    let mut holder = std::process::Command::new(exe)
        .arg("--hold")
        .arg(addr.to_string())
        .arg(n.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn connection holder");
    let mut line = String::new();
    BufReader::new(holder.stdout.as_mut().expect("holder stdout"))
        .read_line(&mut line)
        .expect("holder reports");
    let n: usize = line
        .trim()
        .strip_prefix("held ")
        .and_then(|s| s.parse().ok())
        .expect("holder report parses");
    let threads_while_held = thread_count();

    // A real conversation must still work through the idle crowd.
    let mut client = Client::connect(addr, IO).expect("active client connects");
    let session = client
        .begin(vec![("MyUId".into(), Value::Int(appsim::FIRST_UID))])
        .expect("begin");
    let roundtrip_ok = client
        .execute(
            session,
            "SELECT EId FROM Attendance WHERE UId = ?MyUId",
            &[],
        )
        .is_ok();
    client.end(session).expect("end");
    drop(client);
    // Closing the holder's stdin releases all its connections at once.
    drop(holder.stdin.take());
    let _ = holder.wait();
    server.shutdown();

    IdleSmoke {
        connections: n,
        threads_before,
        threads_while_held,
        roundtrip_ok,
    }
}

// -------------------------------------------------------- throughput sweep

struct Measurement {
    app: &'static str,
    mode: &'static str,
    clients: usize,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    allowed: u64,
    blocked: u64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// `m` closed-loop clients replay their round-robin share of the
/// per-round scripts over persistent connections, pipelining each
/// request's statements in one burst.
fn drive(
    sim: &'static SimApp,
    env: &AppEnv,
    scripts: &[Script],
    mode: ServerMode,
    m: usize,
) -> Measurement {
    let proxy: Arc<SqlProxy> = Arc::new(proxy_for(env, ProxyConfig::default()));
    let server = Server::start(Arc::clone(&proxy), config_for(mode, m), "127.0.0.1:0")
        .expect("start server");
    let addr = server.addr();

    let start = Instant::now();
    let per_client: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|worker| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr, IO).expect("connect");
                    let owned: Vec<(usize, u64)> = scripts[0]
                        .iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(m)
                        .map(|(i, (bindings, _))| {
                            (i, client.begin(bindings.clone()).expect("begin"))
                        })
                        .collect();
                    let mut latencies = Vec::new();
                    let mut ops = 0usize;
                    for script in scripts {
                        for &(i, session) in &owned {
                            let stmts = &script[i].1;
                            if stmts.is_empty() {
                                continue;
                            }
                            let t0 = Instant::now();
                            let answers = client
                                .execute_pipelined(session, stmts)
                                .expect("pipelined burst");
                            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                            ops += answers.len();
                        }
                    }
                    for &(_, session) in &owned {
                        client.end(session).expect("end");
                    }
                    (latencies, ops)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    server.shutdown();
    let stats = proxy.stats();

    let ops: usize = per_client.iter().map(|(_, o)| o).sum();
    let mut latencies: Vec<f64> = per_client.into_iter().flat_map(|(l, _)| l).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Measurement {
        app: sim.name,
        mode: mode_label(mode),
        clients: m,
        ops,
        wall_s,
        throughput: ops as f64 / wall_s,
        p50_us: percentile(&latencies, 50.0),
        p99_us: percentile(&latencies, 99.0),
        allowed: stats.allowed,
        blocked: stats.blocked,
    }
}

// ------------------------------------------------------------------- main

fn json_of(results: &[Measurement], cores: usize, gate_stmts: usize, idle: &IdleSmoke) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t12_reactor\",\n");
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS},\n"));
    out.push_str(&format!(
        "  \"differential_gate\": {{\"statements\": {gate_stmts}, \"mismatches\": 0}},\n"
    ));
    out.push_str(&format!(
        "  \"idle_smoke\": {{\"connections\": {}, \"threads_before\": {}, \
         \"threads_while_held\": {}, \"roundtrip_ok\": {}}},\n",
        idle.connections, idle.threads_before, idle.threads_while_held, idle.roundtrip_ok
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"mode\": \"{}\", \"clients\": {}, \"ops\": {}, \
             \"wall_s\": {:.4}, \"throughput_ops_s\": {:.1}, \"burst_p50_us\": {:.1}, \
             \"burst_p99_us\": {:.1}, \"allowed\": {}, \"blocked\": {}}}{}\n",
            r.app,
            r.mode,
            r.clients,
            r.ops,
            r.wall_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.allowed,
            r.blocked,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if argv.get(1).map(String::as_str) == Some("--hold") {
        hold_connections(&argv[2], argv[3].parse().expect("--hold <addr> <n>"));
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");

    // Phase 1: the differential gate — always, before anything is swept.
    let cal_env = app_env(&CALENDAR, 23, Scale::small(), N_REQUESTS);
    let cal_scripts = record_scripts(&cal_env);
    let mut mismatches = differential_gate(&CALENDAR, &cal_env, &cal_scripts[0]);
    let mut gate_stmts: usize = cal_scripts[0].iter().map(|(_, s)| s.len()).sum();

    let forum = if smoke {
        None
    } else {
        let env = app_env(&FORUM, 23, Scale::small(), N_REQUESTS);
        let scripts = record_scripts(&env);
        mismatches += differential_gate(&FORUM, &env, &scripts[0]);
        gate_stmts += scripts[0].iter().map(|(_, s)| s.len()).sum::<usize>();
        Some((env, scripts))
    };
    assert_eq!(
        mismatches, 0,
        "differential gate: the front-ends must decide identically"
    );

    // Phase 2: the 10k-idle-connection scaling claim.
    let idle = idle_smoke(&cal_env);
    println!(
        "idle smoke: {} connections held; threads {} -> {}; roundtrip ok: {}",
        idle.connections, idle.threads_before, idle.threads_while_held, idle.roundtrip_ok
    );
    assert!(
        idle.roundtrip_ok,
        "a client must get decisions through the idle crowd"
    );
    assert_eq!(
        idle.threads_before, idle.threads_while_held,
        "holding {} idle connections must not grow the thread count",
        idle.connections
    );

    if smoke {
        println!("\nsmoke: differential gate clean, idle scaling holds");
        return;
    }

    // Phase 3: the throughput sweep, both front-ends side by side.
    let (forum_env, forum_scripts) = forum.expect("full run records forum");
    let widths = [9usize, 9, 8, 7, 11, 10, 10, 7, 7];
    header(
        &[
            "app", "mode", "clients", "ops", "ops/s", "b-p50-us", "b-p99-us", "ok", "denied",
        ],
        &widths,
    );
    let mut results: Vec<Measurement> = Vec::new();
    for (sim, env, scripts) in [
        (&CALENDAR, &cal_env, &cal_scripts),
        (&FORUM, &forum_env, &forum_scripts),
    ] {
        for m in CLIENTS {
            for mode in [ServerMode::Blocking, ServerMode::EventDriven] {
                let r = drive(sim, env, scripts, mode, m);
                row(
                    &[
                        r.app.to_string(),
                        r.mode.to_string(),
                        r.clients.to_string(),
                        r.ops.to_string(),
                        f2(r.throughput),
                        f2(r.p50_us),
                        f2(r.p99_us),
                        r.allowed.to_string(),
                        r.blocked.to_string(),
                    ],
                    &widths,
                );
                results.push(r);
            }
        }
        println!();
    }

    // The headline claim: at the widest sweep point the event-driven
    // front-end must out-run the blocking pool on both applications.
    for app in [CALENDAR.name, FORUM.name] {
        let of = |mode: &str| {
            results
                .iter()
                .find(|r| r.app == app && r.mode == mode && r.clients == CLIENTS[CLIENTS.len() - 1])
                .map(|r| r.throughput)
                .unwrap_or(0.0)
        };
        let (event, blocking) = (of("event"), of("blocking"));
        println!(
            "{app} @ {} clients: event {:.1} ops/s vs blocking {:.1} ops/s ({:+.1}%)",
            CLIENTS[CLIENTS.len() - 1],
            event,
            blocking,
            (event / blocking - 1.0) * 100.0
        );
        assert!(
            event > blocking,
            "{app}: the event-driven front-end must beat the blocking pool at the widest point"
        );
    }

    let json = json_of(&results, cores, gate_stmts, &idle);
    std::fs::write("BENCH_t12.json", &json).expect("write BENCH_t12.json");
    println!("\nwrote BENCH_t12.json ({} measurements)", results.len());
}
