//! T16 — Write-path enforcement: the statement-generic decision core
//! under write-bearing traffic.
//!
//! Three experiments, in order:
//!
//! 1. **Differential gate** (always first): every fleet app at a small
//!    population runs mixed read/write traffic with enforcement on.
//!    Handler traffic — including its INSERTs — is never blocked; every
//!    raw write probe is blocked; and each probe's proxy verdict is
//!    checked against a *reference evaluator* that freshly compiles the
//!    write template and re-runs the concrete coverage check against the
//!    session's trace facts, with none of the proxy's caches. Two
//!    same-seed runs must produce identical decision logs.
//! 2. **Write-latency micro**: the cost of a write *decision* on top of
//!    execution, for both proof tiers. The template tier replays a
//!    pinned storefront INSERT (proved once per template, then
//!    cache-hit); the concrete tier replays a calendar INSERT whose
//!    coverage needs a trace fact (template-undecidable, so every
//!    distinct binding re-runs the concrete check). Each is measured
//!    enforced, as unenforced passthrough, and through the
//!    `execute_unchecked` F3 baseline.
//! 3. **Mixed soak**: each fleet app at population, enforcement on,
//!    traffic salted with 10% raw write probes. Decision errors — a
//!    handler request blocked, or any raw probe not blocked — must be
//!    zero everywhere.
//!
//! `--smoke` runs the gate plus shortened micro/soak cells on the first
//! app (seconds); the full run covers all three apps and writes
//! `BENCH_t16.json`.
//!
//! Run: `cargo run -p bep-bench --bin t16_writes --release [-- --smoke]`

use std::time::Instant;

use appdsl::{run_handler, Limits, Outcome};
use appsim::{AppSpec, ProxyPort};
use bep_bench::{f2, header, row};
use bep_core::{
    check_write_concrete, compile_write_template, schema_of_database, ComplianceChecker, Policy,
    ProxyConfig, ProxyResponse, SqlProxy,
};
use bep_scenario::{fleet, GeneratedApp, TrafficConfig, TrafficEngine, TrafficOp, FRESH_ID_BASE};
use minidb::Database;
use sqlir::{parse_statement, Value};

/// Fleet seed (shared with T13 so populations are comparable).
const FLEET_SEED: u64 = 1307;
/// Users per app in the differential gate.
const GATE_USERS: u64 = 512;
/// Traffic ops per gate run.
const GATE_OPS: usize = 700;
/// Raw-write-probe share of gate and soak traffic.
const WRITE_FRACTION: f64 = 0.10;
/// Users per app in the soak.
const USERS_FULL: u64 = 20_000;
const USERS_SMOKE: u64 = 2_000;
/// Traffic ops per soak cell.
const SOAK_OPS_FULL: usize = 20_000;
const SOAK_OPS_SMOKE: usize = 2_500;
/// Timed iterations per micro-bench cell.
const MICRO_FULL: usize = 20_000;
const MICRO_SMOKE: usize = 2_000;

fn enforced() -> ProxyConfig {
    ProxyConfig {
        enforce_writes: true,
        ..ProxyConfig::default()
    }
}

fn traffic_cfg() -> TrafficConfig {
    TrafficConfig {
        target_sessions: 8,
        mean_session_len: 10.0,
        write_probe_fraction: WRITE_FRACTION,
        ..TrafficConfig::default()
    }
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

// ------------------------------------------------------- differential gate

struct GateRun {
    log: Vec<String>,
    write_probes: u64,
    /// Proxy verdicts that disagreed with the cache-free reference
    /// evaluator on a raw write probe. Must be zero.
    reference_mismatches: u64,
    decision_errors: u64,
}

/// One in-process enforcement run over mixed read/write traffic.
fn gate_run(app: &GeneratedApp, seed: u64, ops: usize) -> GateRun {
    let mut db = app.empty_db();
    app.populate(&mut db).expect("populate");
    let schema = app.schema();
    let policy = app.policy().expect("policy");
    let proxy = SqlProxy::new(
        db,
        ComplianceChecker::new(schema.clone(), policy.clone()),
        enforced(),
    );
    let parsed = app.app();
    let mut engine = TrafficEngine::new(app, traffic_cfg(), seed);
    let mut sessions: Vec<Option<(u64, i64)>> = vec![None; traffic_cfg().target_sessions];
    let mut run = GateRun {
        log: Vec::with_capacity(ops),
        write_probes: 0,
        reference_mismatches: 0,
        decision_errors: 0,
    };
    for _ in 0..ops {
        match engine.next_op() {
            TrafficOp::Begin {
                slot,
                uid,
                user_index,
            } => {
                let id = proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
                sessions[slot] = Some((id, uid));
                run.log.push(format!("begin u{user_index}"));
            }
            TrafficOp::End { slot } => {
                let (id, _) = sessions[slot].take().expect("live session");
                proxy.end_session(id);
                run.log.push("end".to_string());
            }
            TrafficOp::RawProbe { slot, sql } => {
                let (id, _) = sessions[slot].expect("live session");
                let resp = proxy.execute(id, &sql, &[]).expect("probe executes");
                if !matches!(resp, ProxyResponse::Blocked(_)) {
                    run.decision_errors += 1;
                }
                run.log.push(format!("raw {}", verdict_of(&resp)));
            }
            TrafficOp::RawWriteProbe { slot, sql } => {
                let (id, uid) = sessions[slot].expect("live session");
                let bindings = vec![("MyUId".to_string(), Value::Int(uid))];
                // The reference: fresh template compile + fresh concrete
                // coverage check against this session's trace facts — no
                // plan cache, no template tier, no deny cache.
                let facts = proxy.session_trace(id).expect("trace").facts().to_vec();
                let reference_allows = match parse_statement(&sql) {
                    Err(_) => false,
                    Ok(stmt) => match compile_write_template(&stmt, policy.views(), &schema) {
                        Err(_) => false,
                        Ok(t) => {
                            check_write_concrete(&t, policy.views(), &bindings, &facts).is_ok()
                        }
                    },
                };
                let resp = proxy.execute(id, &sql, &[]).expect("probe executes");
                let allowed = !matches!(resp, ProxyResponse::Blocked(_));
                if allowed != reference_allows {
                    eprintln!(
                        "{}: proxy {} but reference {} on `{sql}`",
                        app.name,
                        verdict_of(&resp),
                        if reference_allows { "allows" } else { "denies" }
                    );
                    run.reference_mismatches += 1;
                }
                if allowed {
                    // A forged write not blocked is a decision error.
                    run.decision_errors += 1;
                }
                run.write_probes += 1;
                run.log.push(format!("raww {}", verdict_of(&resp)));
            }
            TrafficOp::Request { slot, request, .. } => {
                let (id, _) = sessions[slot].expect("live session");
                let handler = parsed.handler(&request.handler).expect("handler");
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session: id,
                };
                match run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                ) {
                    Ok(r) => {
                        // The ground-truth policy admits the app: no
                        // handler request may be proxy-blocked.
                        if matches!(r.outcome, Outcome::Blocked { .. }) {
                            run.decision_errors += 1;
                        }
                        run.log.push(format!("{}:{:?}", request.handler, r.outcome));
                    }
                    Err(_) => run.decision_errors += 1,
                }
            }
        }
    }
    run
}

fn verdict_of(resp: &ProxyResponse) -> &'static str {
    match resp {
        ProxyResponse::Blocked(_) => "blocked",
        ProxyResponse::Rows(_) => "rows",
        ProxyResponse::Affected(_) => "affected",
    }
}

/// (write probes seen, reference mismatches) per app; asserts the gate.
fn differential_gate(app: &GeneratedApp) -> (u64, u64) {
    let a = gate_run(app, 99, GATE_OPS);
    let b = gate_run(app, 99, GATE_OPS);
    assert_eq!(a.log, b.log, "{}: same seed, same decisions", app.name);
    assert_eq!(
        a.decision_errors, 0,
        "{}: decision errors in the write gate",
        app.name
    );
    assert_eq!(
        a.reference_mismatches, 0,
        "{}: tiered pipeline disagreed with the reference evaluator",
        app.name
    );
    assert!(a.write_probes > 0, "{}: no write probes fired", app.name);
    println!(
        "gate[{}]: {} ops, {} write probes all blocked, 0 reference mismatches",
        app.name,
        a.log.len(),
        a.write_probes
    );
    (a.write_probes, a.reference_mismatches)
}

// ----------------------------------------------------- write-latency micro

#[derive(Clone, Copy)]
enum WriteMode {
    Enforced,
    Passthrough,
    Unchecked,
}

impl WriteMode {
    const ALL: [WriteMode; 3] = [
        WriteMode::Enforced,
        WriteMode::Passthrough,
        WriteMode::Unchecked,
    ];

    fn label(self) -> &'static str {
        match self {
            WriteMode::Enforced => "enforced",
            WriteMode::Passthrough => "passthrough",
            WriteMode::Unchecked => "unchecked",
        }
    }

    fn config(self) -> ProxyConfig {
        match self {
            WriteMode::Enforced => enforced(),
            // Passthrough and unchecked both run with enforcement off;
            // unchecked additionally skips the session machinery.
            _ => ProxyConfig::default(),
        }
    }
}

struct MicroCell {
    tier: &'static str,
    mode: &'static str,
    ops: usize,
    p50_us: f64,
    p99_us: f64,
    ops_s: f64,
}

fn finish(tier: &'static str, mode: WriteMode, mut lat_us: Vec<f64>, wall_s: f64) -> MicroCell {
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    MicroCell {
        tier,
        mode: mode.label(),
        ops: lat_us.len(),
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        ops_s: lat_us.len() as f64 / wall_s,
    }
}

/// Template tier: a storefront INSERT pinned to the session, covered by
/// `MyOrders` irrespective of history — proved once per template, every
/// replay a template-cache hit.
fn template_micro(store: &GeneratedApp, mode: WriteMode, ops: usize) -> MicroCell {
    let mut db = store.empty_db();
    store.populate(&mut db).expect("populate");
    let proxy = SqlProxy::new(
        db,
        ComplianceChecker::new(store.schema(), store.policy().expect("policy")),
        mode.config(),
    );
    let me = bep_scenario::uid(0);
    let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(me))]);
    let pid = match proxy
        .execute(session, "SELECT PId FROM Products WHERE Active = TRUE", &[])
        .expect("product listing executes")
    {
        ProxyResponse::Rows(r) => match r.rows[0][0] {
            Value::Int(p) => p,
            ref v => panic!("PId: {v:?}"),
        },
        other => panic!("product listing: {other:?}"),
    };
    let sql = "INSERT INTO Orders (OId, UId, PId, Qty) VALUES (?oid, ?MyUId, ?pid, 1)";
    let mut lat = Vec::with_capacity(ops);
    let t0 = Instant::now();
    for k in 0..ops {
        let bindings = vec![
            ("oid".to_string(), Value::Int(FRESH_ID_BASE + k as i64)),
            ("pid".to_string(), Value::Int(pid)),
        ];
        let t = Instant::now();
        let resp = match mode {
            WriteMode::Unchecked => {
                let mut all = bindings.clone();
                all.push(("MyUId".to_string(), Value::Int(me)));
                proxy.execute_unchecked(sql, &all)
            }
            _ => proxy.execute(session, sql, &bindings),
        }
        .expect("order insert executes");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(
            !matches!(resp, ProxyResponse::Blocked(_)),
            "own-order insert must be allowed ({})",
            mode.label()
        );
    }
    finish("template", mode, lat, t0.elapsed().as_secs_f64())
}

/// Concrete tier: the calendar INSERT whose `V2` coverage needs the
/// Events trace fact. Template-undecidable, and every iteration carries
/// a distinct Notes binding, so enforcement re-runs the concrete
/// coverage check each time — the worst-case decision cost.
fn concrete_micro(mode: WriteMode, ops: usize) -> MicroCell {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work')")
        .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL)")
        .unwrap();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    let proxy = SqlProxy::new(db, ComplianceChecker::new(schema, policy), mode.config());
    let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);
    // Observe the event so the concrete check has its trace fact.
    proxy
        .execute(
            session,
            "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
            &[],
        )
        .expect("access check");
    proxy
        .execute(session, "SELECT * FROM Events WHERE EId = 2", &[])
        .expect("event fetch");

    let clear = "DELETE FROM Attendance WHERE UId = ?MyUId AND EId = 2";
    let insert = "INSERT INTO Attendance (UId, EId, Notes) VALUES (?MyUId, 2, ?note)";
    let mut lat = Vec::with_capacity(ops);
    let t0 = Instant::now();
    for k in 0..ops {
        // Untimed: clear the primary key the INSERT is about to re-take.
        match mode {
            WriteMode::Unchecked => {
                let b = vec![("MyUId".to_string(), Value::Int(1))];
                proxy.execute_unchecked(clear, &b).expect("clear");
            }
            _ => {
                proxy.execute(session, clear, &[]).expect("clear");
            }
        }
        let bindings = vec![("note".to_string(), Value::str(format!("n{k}")))];
        let t = Instant::now();
        let resp = match mode {
            WriteMode::Unchecked => {
                let mut all = bindings.clone();
                all.push(("MyUId".to_string(), Value::Int(1)));
                proxy.execute_unchecked(insert, &all)
            }
            _ => proxy.execute(session, insert, &bindings),
        }
        .expect("attendance insert executes");
        lat.push(t.elapsed().as_secs_f64() * 1e6);
        assert!(
            !matches!(resp, ProxyResponse::Blocked(_)),
            "trace-covered insert must be allowed ({})",
            mode.label()
        );
    }
    finish("concrete", mode, lat, t0.elapsed().as_secs_f64())
}

// ---------------------------------------------------------------- the soak

struct SoakCell {
    app: String,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    decision_errors: u64,
    write_allowed: u64,
    write_blocked: u64,
    allowed: u64,
    blocked: u64,
}

fn soak(app: &GeneratedApp, users: u64, ops: usize) -> SoakCell {
    let scaled = GeneratedApp::new(app.family, app.seed, users);
    let mut db = scaled.empty_db();
    scaled.populate(&mut db).expect("populate");
    let proxy = SqlProxy::new(
        db,
        ComplianceChecker::new(scaled.schema(), scaled.policy().expect("policy")),
        enforced(),
    );
    let parsed = scaled.app();
    let mut engine = TrafficEngine::new(&scaled, traffic_cfg(), 4242);
    let mut sessions: Vec<Option<u64>> = vec![None; traffic_cfg().target_sessions];
    let mut decision_errors = 0u64;
    let t0 = Instant::now();
    for _ in 0..ops {
        match engine.next_op() {
            TrafficOp::Begin { slot, uid, .. } => {
                sessions[slot] = Some(proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]));
            }
            TrafficOp::End { slot } => {
                proxy.end_session(sessions[slot].take().expect("live session"));
            }
            TrafficOp::RawProbe { slot, sql } | TrafficOp::RawWriteProbe { slot, sql } => {
                let id = sessions[slot].expect("live session");
                match proxy.execute(id, &sql, &[]) {
                    Ok(ProxyResponse::Blocked(_)) => {}
                    // A raw probe that is not blocked is a decision
                    // error, full stop.
                    _ => decision_errors += 1,
                }
            }
            TrafficOp::Request { slot, request, .. } => {
                let id = sessions[slot].expect("live session");
                let handler = parsed.handler(&request.handler).expect("handler");
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session: id,
                };
                match run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                ) {
                    Ok(r) => {
                        if matches!(r.outcome, Outcome::Blocked { .. }) {
                            decision_errors += 1;
                        }
                    }
                    Err(_) => decision_errors += 1,
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = proxy.stats();
    SoakCell {
        app: scaled.name.clone(),
        ops,
        wall_s,
        throughput: ops as f64 / wall_s,
        decision_errors,
        write_allowed: stats.write_allowed,
        write_blocked: stats.write_blocked,
        allowed: stats.allowed,
        blocked: stats.blocked,
    }
}

// ------------------------------------------------------------------- main

fn json_of(users: u64, gate: &[(String, u64)], micro: &[MicroCell], soaks: &[SoakCell]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t16_writes\",\n");
    out.push_str(&format!("  \"fleet_seed\": {FLEET_SEED},\n"));
    out.push_str(&format!("  \"users_per_app\": {users},\n"));
    out.push_str(&format!(
        "  \"differential_gate\": {{\"gate_users\": {GATE_USERS}, \"ops_per_app\": {GATE_OPS}, \
         \"write_probe_fraction\": {WRITE_FRACTION}, \"reference_mismatches\": 0, \"apps\": [\n"
    ));
    for (i, (app, probes)) in gate.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{app}\", \"write_probes_blocked\": {probes}}}{}\n",
            if i + 1 == gate.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]},\n");
    out.push_str("  \"write_latency\": [\n");
    for (i, m) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tier\": \"{}\", \"mode\": \"{}\", \"ops\": {}, \"p50_us\": {:.2}, \
             \"p99_us\": {:.2}, \"throughput_ops_s\": {:.1}}}{}\n",
            m.tier,
            m.mode,
            m.ops,
            m.p50_us,
            m.p99_us,
            m.ops_s,
            if i + 1 == micro.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"soak\": [\n");
    for (i, s) in soaks.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"ops\": {}, \"wall_s\": {:.2}, \
             \"throughput_ops_s\": {:.1}, \"decision_errors\": {}, \"write_allowed\": {}, \
             \"write_blocked\": {}, \"allowed\": {}, \"blocked\": {}}}{}\n",
            s.app,
            s.ops,
            s.wall_s,
            s.throughput,
            s.decision_errors,
            s.write_allowed,
            s.write_blocked,
            s.allowed,
            s.blocked,
            if i + 1 == soaks.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let apps = fleet(FLEET_SEED, GATE_USERS);

    // Phase 1: the differential gate — always, before anything is timed.
    let mut gate = Vec::new();
    for app in &apps {
        let (probes, _) = differential_gate(app);
        gate.push((app.name.clone(), probes));
    }

    // Phase 2: write-latency micro, both tiers, all three modes.
    let micro_ops = if smoke { MICRO_SMOKE } else { MICRO_FULL };
    let store = apps
        .iter()
        .find(|a| a.name == "store")
        .expect("fleet has a store app");
    let widths = [9usize, 12, 7, 9, 9, 10];
    header(
        &["tier", "mode", "ops", "p50-us", "p99-us", "ops/s"],
        &widths,
    );
    let mut micro = Vec::new();
    for mode in WriteMode::ALL {
        let cell = template_micro(store, mode, micro_ops);
        row(
            &[
                cell.tier.to_string(),
                cell.mode.to_string(),
                cell.ops.to_string(),
                f2(cell.p50_us),
                f2(cell.p99_us),
                f2(cell.ops_s),
            ],
            &widths,
        );
        micro.push(cell);
    }
    for mode in WriteMode::ALL {
        let cell = concrete_micro(mode, micro_ops);
        row(
            &[
                cell.tier.to_string(),
                cell.mode.to_string(),
                cell.ops.to_string(),
                f2(cell.p50_us),
                f2(cell.p99_us),
                f2(cell.ops_s),
            ],
            &widths,
        );
        micro.push(cell);
    }
    for tier in ["template", "concrete"] {
        let of = |mode: &str| {
            micro
                .iter()
                .find(|m| m.tier == tier && m.mode == mode)
                .expect("cell ran")
        };
        let (e, p) = (of("enforced"), of("passthrough"));
        println!(
            "{tier} tier: enforcement adds {:+.1}% p50, {:+.1}% p99 over passthrough",
            (e.p50_us / p.p50_us - 1.0) * 100.0,
            (e.p99_us / p.p99_us - 1.0) * 100.0
        );
    }

    // Phase 3: the mixed soak.
    let users = if smoke { USERS_SMOKE } else { USERS_FULL };
    let soak_ops = if smoke { SOAK_OPS_SMOKE } else { SOAK_OPS_FULL };
    let soak_apps: Vec<&GeneratedApp> = if smoke {
        apps.iter().take(1).collect()
    } else {
        apps.iter().collect()
    };
    let widths = [8usize, 7, 9, 8, 8, 8, 8, 5];
    header(
        &[
            "app", "ops", "ops/s", "w-allow", "w-block", "ok", "denied", "err",
        ],
        &widths,
    );
    let mut soaks = Vec::new();
    for app in soak_apps {
        let cell = soak(app, users, soak_ops);
        row(
            &[
                cell.app.clone(),
                cell.ops.to_string(),
                f2(cell.throughput),
                cell.write_allowed.to_string(),
                cell.write_blocked.to_string(),
                cell.allowed.to_string(),
                cell.blocked.to_string(),
                cell.decision_errors.to_string(),
            ],
            &widths,
        );
        soaks.push(cell);
    }
    for s in &soaks {
        assert_eq!(
            s.decision_errors, 0,
            "{}: decision errors in the write soak",
            s.app
        );
        assert!(s.write_allowed > 0, "{}: no handler write ran", s.app);
        assert!(s.write_blocked > 0, "{}: no write probe blocked", s.app);
    }

    if smoke {
        println!("smoke: write gate clean, micro + soak cells error-free");
        return;
    }
    let json = json_of(users, &gate, &micro, &soaks);
    std::fs::write("BENCH_t16.json", &json).expect("write BENCH_t16.json");
    println!(
        "\nwrote BENCH_t16.json ({} micro cells, {} soak cells)",
        micro.len(),
        soaks.len()
    );
}
