//! T1 — Extraction accuracy: per app × method, precision/recall/F1 against
//! the hand-written ground-truth policy, by exact equivalence and by
//! semantic coverage. Also reports paths explored / traces consumed.
//!
//! Run: `cargo run -p bep-bench --bin t1_extraction --release`

use appsim::{Scale, ALL_APPS};
use bep_bench::{app_env, f2, header, row};
use bep_extract::{
    collect_traces, extract_symbolic, mine_policy, refine, score_exact_deps, score_semantic_deps,
    ActiveOptions, Hints, Learner, MineOptions, SymLimits, ViewGenOptions,
};
use qlogic::Cq;

fn main() {
    let widths = [10usize, 18, 6, 7, 7, 7, 7, 7];
    header(
        &[
            "app", "method", "views", "exact-P", "exact-R", "sem-P", "sem-R", "sem-F1",
        ],
        &widths,
    );

    for sim in ALL_APPS {
        let schema = sim.schema();
        let truth = sim.ground_truth_cqs();
        let env = app_env(sim, 7, Scale::small(), 120);

        let deps = schema.dependencies();
        let report = |method: &str, views: &[Cq]| {
            let e = score_exact_deps(views, &truth, &deps);
            let s = score_semantic_deps(views, &truth, &deps);
            row(
                &[
                    sim.name.to_string(),
                    method.to_string(),
                    views.len().to_string(),
                    f2(e.precision),
                    f2(e.recall),
                    f2(s.precision),
                    f2(s.recall),
                    f2(s.f1),
                ],
                &widths,
            );
        };

        // Method 1: symbolic execution.
        let opts = ViewGenOptions {
            session_params: sim.session_params.iter().map(|s| s.to_string()).collect(),
        };
        let symbolic =
            extract_symbolic(&schema, &sim.app(), SymLimits::default(), &opts).expect("symex");
        report("symbolic", &symbolic.views);

        // Methods 2-5: mining variants over the same trace set.
        let traces = collect_traces(&env.db, &sim.app(), &schema, &env.requests).expect("traces");

        let nongen = mine_policy(
            &traces,
            &MineOptions {
                learner: Learner::NonGeneralizing,
                ..Default::default()
            },
        );
        report("mine-nongen", &nongen);

        let gen = mine_policy(
            &traces,
            &MineOptions {
                hints: Hints::none(),
                ..Default::default()
            },
        );
        report("mine-gen", &gen);

        let hinted = mine_policy(
            &traces,
            &MineOptions {
                hints: Hints::id_columns(&schema),
                ..Default::default()
            },
        );
        report("mine-gen+hints", &hinted);

        let (active, stats) = refine(
            hinted.clone(),
            &env.db,
            &sim.app(),
            &schema,
            &env.requests,
            ActiveOptions::default(),
        )
        .expect("active");
        report(&format!("mine+active({}p)", stats.probes), &active);
        println!();
    }

    println!("paths/traces: symbolic explores all paths (budget 256/handler);");
    println!("mining consumes 120 requests per app at small scale, seed 7.");
}
