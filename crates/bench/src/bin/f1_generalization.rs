//! F1 — Generalization curve: policy size vs number of traces for the
//! non-generalizing and generalizing learners (§3.2.2's blowup argument:
//! "a policy that relies on non-generalizing views must contain a lot of
//! them — e.g. one for each user in the database").
//!
//! Run: `cargo run -p bep-bench --bin f1_generalization --release`

use appsim::{Scale, CALENDAR};
use bep_bench::{app_env, header, row};
use bep_extract::{collect_traces, mine_policy, Hints, Learner, MineOptions};

fn main() {
    let trace_counts = [10usize, 25, 50, 100, 200, 400];
    let widths = [8usize, 14, 12];
    header(&["traces", "non-gen views", "gen views"], &widths);

    // A larger population so the blowup has room to show.
    let env = app_env(
        &CALENDAR,
        13,
        Scale {
            users: 60,
            entities: 25,
            links_per_user: 4,
        },
        400,
    );
    let schema = CALENDAR.schema();

    let mut series = Vec::new();
    for &n in &trace_counts {
        let slice = &env.requests[..n.min(env.requests.len())];
        let traces = collect_traces(&env.db, &CALENDAR.app(), &schema, slice).expect("traces");
        let nongen = mine_policy(
            &traces,
            &MineOptions {
                learner: Learner::NonGeneralizing,
                ..Default::default()
            },
        )
        .len();
        let gen = mine_policy(
            &traces,
            &MineOptions {
                hints: Hints::id_columns(&schema),
                ..Default::default()
            },
        )
        .len();
        row(
            &[n.to_string(), nongen.to_string(), gen.to_string()],
            &widths,
        );
        series.push((n, nongen, gen));
    }

    // The shape claim: non-generalizing grows with the workload; the
    // generalizing learner converges to a constant-size policy.
    let (first, last) = (series.first().unwrap(), series.last().unwrap());
    println!(
        "\nnon-generalizing grew {}x; generalizing grew {}x across a {}x trace increase",
        last.1 as f64 / first.1.max(1) as f64,
        last.2 as f64 / first.2.max(1) as f64,
        last.0 / first.0
    );
    assert!(
        last.1 > first.1 * 3,
        "non-generalizing learner must blow up with workload size"
    );
    assert!(
        last.2 <= first.2 + 3,
        "generalizing learner must converge (got {} → {})",
        first.2,
        last.2
    );
    println!("shape check PASSED: blowup vs convergence, as the paper argues.");
}
