//! T15 — Bounded memory at scale: trace compaction, SIEVE-bounded caches,
//! and warm-start snapshots, all gated on decision invisibility.
//!
//! Four experiments, in order:
//!
//! 1. **Bounded differential gate** (always first): for every fleet app
//!    at a small population, the same seeded traffic stream runs through
//!    three in-process proxies that differ only in the memory knobs —
//!    compaction off with unbounded caches (the pre-T15 behaviour),
//!    compaction on with default budgets, and compaction on with budgets
//!    tight enough to force eviction mid-stream. Every statement outcome
//!    and the aggregate counters must match across all three, and the
//!    starved proxy must actually evict (a gate that never evicts proves
//!    nothing).
//! 2. **Budgeted soak**: one fleet app at scale behind a wire server
//!    whose proxy runs tight plan and session budgets. Churning Zipf
//!    traffic in phases; at each phase boundary the driver samples the
//!    proxy's per-component heap bytes, eviction counters, and the
//!    session-state size histogram. Asserts zero decision errors, real
//!    evictions, a plan cache that stays near its budget, and
//!    per-live-session state that stays flat across phases instead of
//!    growing with request count.
//! 3. **Warm-start restart**: N distinct template-allowed calendar
//!    queries are compiled and proved cold; the verdicts are snapshotted;
//!    a fresh proxy loads the snapshot (verification-gated) and replays
//!    the same N templates. Time-to-steady-state must improve ≥5× warm
//!    over cold, with identical decisions.
//! 4. **Corrupt-snapshot fallback**: a flipped byte in the snapshot must
//!    produce a typed checksum error, install nothing, and leave the
//!    proxy deciding exactly like a cold start.
//!
//! `--smoke` runs the gate, a short soak, and the restart + corruption
//! checks (seconds); the full run writes `BENCH_t15.json`.
//!
//! Run: `cargo run -p bep-bench --bin t15_bounded --release [-- --smoke]`

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use appdsl::{run_handler, App, DslError, Limits, Outcome, PortOutcome, QueryPort};
use appsim::simapp::AppSpec;
use bep_bench::{f2, header, row};
use bep_core::{
    schema_of_database, ComplianceChecker, Policy, ProxyConfig, ProxyResponse, SnapshotError,
    SqlProxy,
};
use bep_scenario::{derive, fleet, GeneratedApp, TrafficConfig, TrafficEngine, TrafficOp};
use bep_server::{Client, ExecOutcome, Server, ServerConfig};
use minidb::Database;
use sqlir::Value;

/// Same fleet seed as T13: the gate repeats that fleet's decisions under
/// memory pressure.
const FLEET_SEED: u64 = 1307;
/// Users per app in the differential gate.
const GATE_USERS: u64 = 512;
/// Traffic ops per app per gate run.
const GATE_OPS: usize = 500;
/// Users in the budgeted soak.
const SOAK_USERS_FULL: u64 = 100_000;
const SOAK_USERS_SMOKE: u64 = 10_000;
/// Soak shape (phases × ops per worker per phase, workers).
const PHASES_FULL: usize = 4;
const PHASES_SMOKE: usize = 2;
const PHASE_OPS_FULL: usize = 6000;
const PHASE_OPS_SMOKE: usize = 400;
const SOAK_WORKERS: usize = 2;
/// Soak budgets: small enough that steady traffic evicts, large enough
/// that hit rates stay useful.
const SOAK_PLAN_BUDGET: usize = 64 * 1024;
const SOAK_SESSION_BUDGET: usize = 4 * 1024;
/// Gate starved-proxy budgets: tight enough to evict within GATE_OPS.
const GATE_PLAN_BUDGET: usize = 16 * 1024;
const GATE_SESSION_BUDGET: usize = 512;
/// Distinct template-allowed queries in the restart experiment.
const RESTART_TEMPLATES_FULL: usize = 48;
const RESTART_TEMPLATES_SMOKE: usize = 12;
/// Required cold/warm time-to-steady-state ratio.
const RESTART_SPEEDUP: f64 = 5.0;
/// Per-operation client I/O timeout.
const IO: Duration = Duration::from_secs(30);

// ---------------------------------------------------- direct proxy driving

/// Forwards handler statements straight into an in-process proxy,
/// logging every outcome for the gate's entry-by-entry comparison.
struct ProxyPort<'a> {
    proxy: &'a SqlProxy,
    session: u64,
    log: &'a mut Vec<String>,
}

impl QueryPort for ProxyPort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        let out = self
            .proxy
            .execute(self.session, sql, bindings)
            .map_err(|e| DslError::Port(e.to_string()))?;
        self.log.push(format!("{out:?}"));
        Ok(match out {
            ProxyResponse::Rows(r) => PortOutcome::Rows(r),
            ProxyResponse::Affected(n) => PortOutcome::Affected(n),
            ProxyResponse::Blocked(reason) => PortOutcome::Blocked(format!("{reason:?}")),
        })
    }
}

struct PreparedApp {
    app: GeneratedApp,
    parsed: App,
    db: Database,
}

fn prepare(app: GeneratedApp) -> PreparedApp {
    let mut db = app.empty_db();
    app.populate(&mut db).expect("populate");
    let parsed = app.app();
    PreparedApp { app, parsed, db }
}

fn proxy_with(prep: &PreparedApp, config: ProxyConfig) -> Arc<SqlProxy> {
    let checker = ComplianceChecker::new(prep.app.schema(), prep.app.policy().expect("policy"));
    Arc::new(SqlProxy::new(prep.db.clone(), checker, config))
}

// ------------------------------------------------- bounded differential gate

struct GateRun {
    log: Vec<String>,
    allowed: u64,
    blocked: u64,
    evictions: u64,
}

/// Replays `GATE_OPS` seeded traffic ops directly against a proxy built
/// with `config`, logging every outcome.
fn gate_run(prep: &PreparedApp, config: ProxyConfig, seed: u64) -> GateRun {
    let proxy = proxy_with(prep, config);
    let cfg = TrafficConfig {
        target_sessions: 8,
        mean_session_len: 10.0,
        ..TrafficConfig::default()
    };
    let slots = cfg.target_sessions;
    let mut engine = TrafficEngine::new(&prep.app, cfg, seed);
    let mut sessions: Vec<Option<u64>> = vec![None; slots];
    let mut log = Vec::with_capacity(GATE_OPS * 2);
    for _ in 0..GATE_OPS {
        match engine.next_op() {
            TrafficOp::Begin {
                slot,
                uid,
                user_index,
            } => {
                let id = proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
                sessions[slot] = Some(id);
                log.push(format!("begin u{user_index}"));
            }
            TrafficOp::End { slot } => {
                let id = sessions[slot].take().expect("live session");
                proxy.end_session(id);
                log.push("end".to_string());
            }
            TrafficOp::RawProbe { slot, sql } | TrafficOp::RawWriteProbe { slot, sql } => {
                let id = sessions[slot].expect("live session");
                let out = proxy.execute(id, &sql, &[]).expect("raw probe executes");
                log.push(format!("raw {out:?}"));
            }
            TrafficOp::Request { slot, request, .. } => {
                let id = sessions[slot].expect("live session");
                let handler = prep.parsed.handler(&request.handler).expect("handler");
                let mut stmt_log = Vec::new();
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session: id,
                    log: &mut stmt_log,
                };
                let result = run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                )
                .unwrap_or_else(|e| panic!("{}::{}: {e}", prep.app.name, request.handler));
                log.append(&mut stmt_log);
                log.push(format!("{}:{:?}", request.handler, result.outcome));
            }
        }
    }
    for id in sessions.iter().flatten() {
        proxy.end_session(*id);
    }
    let stats = proxy.stats();
    GateRun {
        log,
        allowed: stats.allowed,
        blocked: stats.blocked,
        evictions: proxy.cache_eviction_counts().iter().map(|(_, n)| n).sum(),
    }
}

fn compare_runs(name: &str, label: &str, a: &GateRun, b: &GateRun) -> usize {
    let mut mismatches = 0;
    if a.log.len() != b.log.len() {
        mismatches += 1;
        eprintln!(
            "{name} [{label}]: log lengths differ: {} vs {}",
            a.log.len(),
            b.log.len()
        );
    }
    for (i, (x, y)) in a.log.iter().zip(&b.log).enumerate() {
        if x != y {
            mismatches += 1;
            eprintln!("{name} [{label}] entry {i}: {x} vs {y}");
        }
    }
    if (a.allowed, a.blocked) != (b.allowed, b.blocked) {
        mismatches += 1;
        eprintln!(
            "{name} [{label}]: counters diverged: {}/{} vs {}/{}",
            a.allowed, a.blocked, b.allowed, b.blocked
        );
    }
    mismatches
}

/// (log entries, mismatches, starved-proxy evictions) per app.
fn bounded_gate(prep: &PreparedApp) -> (usize, usize, u64) {
    let unbounded = gate_run(
        prep,
        ProxyConfig {
            compaction: false,
            plan_budget_bytes: 0,
            session_cache_budget_bytes: 0,
            ..Default::default()
        },
        99,
    );
    let defaults = gate_run(prep, ProxyConfig::default(), 99);
    let starved = gate_run(
        prep,
        ProxyConfig {
            plan_budget_bytes: GATE_PLAN_BUDGET,
            session_cache_budget_bytes: GATE_SESSION_BUDGET,
            ..Default::default()
        },
        99,
    );
    let mut mismatches = compare_runs(
        &prep.app.name,
        "unbounded vs defaults",
        &unbounded,
        &defaults,
    );
    mismatches += compare_runs(&prep.app.name, "unbounded vs starved", &unbounded, &starved);
    println!(
        "gate[{}]: {} log entries, {}/{} allowed/blocked, {} starved evictions, {} mismatches",
        prep.app.name,
        unbounded.log.len(),
        unbounded.allowed,
        unbounded.blocked,
        starved.evictions,
        mismatches
    );
    (unbounded.log.len(), mismatches, starved.evictions)
}

// ----------------------------------------------------------- budgeted soak

struct PhaseSample {
    p50_us: f64,
    p99_us: f64,
    live_sessions: usize,
    plan_cache_bytes: usize,
    session_state_bytes: usize,
    state_per_session: usize,
    session_size_p99: u64,
    evictions: u64,
}

struct SoakResult {
    app: String,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    decision_errors: u64,
    sessions: u64,
    allowed: u64,
    blocked: u64,
    evictions_by_tier: [(&'static str, u64); 3],
    phases: Vec<PhaseSample>,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

struct WorkerReport {
    phase_latencies_us: Vec<Vec<f64>>,
    phase_live: Vec<usize>,
    ops: usize,
    decision_errors: u64,
    sessions_begun: u64,
}

/// One budgeted soak cell over the wire: `m` workers with independent
/// engines; the driver samples the proxy's memory accounting at every
/// phase barrier.
fn soak(prep: &PreparedApp, m: usize, phases: usize, phase_ops: usize) -> SoakResult {
    let proxy = proxy_with(
        prep,
        ProxyConfig {
            plan_budget_bytes: SOAK_PLAN_BUDGET,
            session_cache_budget_bytes: SOAK_SESSION_BUDGET,
            ..Default::default()
        },
    );
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("start server");
    let addr = server.addr();
    let cell_seed = derive(prep.app.seed, 0xB15);

    let phase_end = Barrier::new(m + 1);
    let phase_resume = Barrier::new(m + 1);
    let mut mem_samples: Vec<(f64, usize, usize, u64, u64)> = Vec::with_capacity(phases);

    let reports: Vec<WorkerReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|w| {
                let (phase_end, phase_resume) = (&phase_end, &phase_resume);
                let (app, parsed) = (&prep.app, &prep.parsed);
                scope.spawn(move || {
                    let cfg = TrafficConfig::default();
                    let slots = cfg.target_sessions;
                    let mut engine = TrafficEngine::new(app, cfg, derive(cell_seed, w as u64))
                        .with_fresh_base(
                            bep_scenario::FRESH_ID_BASE + (w as i64 + 1) * 1_000_000_000,
                        );
                    let mut client = Client::connect(addr, IO).expect("connect");
                    let mut sessions: Vec<Option<u64>> = vec![None; slots];
                    let mut report = WorkerReport {
                        phase_latencies_us: Vec::with_capacity(phases),
                        phase_live: Vec::with_capacity(phases),
                        ops: 0,
                        decision_errors: 0,
                        sessions_begun: 0,
                    };
                    for _ in 0..phases {
                        let mut lat = Vec::with_capacity(phase_ops);
                        for _ in 0..phase_ops {
                            let t0 = Instant::now();
                            match engine.next_op() {
                                TrafficOp::Begin { slot, uid, .. } => {
                                    let id = client
                                        .begin(vec![("MyUId".into(), Value::Int(uid))])
                                        .expect("begin");
                                    sessions[slot] = Some(id);
                                }
                                TrafficOp::End { slot } => {
                                    let id = sessions[slot].take().expect("live session");
                                    client.end(id).expect("end");
                                }
                                TrafficOp::RawProbe { slot, sql }
                                | TrafficOp::RawWriteProbe { slot, sql } => {
                                    let id = sessions[slot].expect("live session");
                                    match client.execute(id, &sql, &[]) {
                                        Ok(ExecOutcome::Blocked { .. }) => {}
                                        _ => report.decision_errors += 1,
                                    }
                                }
                                TrafficOp::Request { slot, request, .. } => {
                                    let id = sessions[slot].expect("live session");
                                    let handler =
                                        parsed.handler(&request.handler).expect("handler");
                                    let mut port = WirePort {
                                        client: &mut client,
                                        session: id,
                                    };
                                    match run_handler(
                                        &mut port,
                                        handler,
                                        &request.session,
                                        &request.params,
                                        Limits::default(),
                                    ) {
                                        Ok(r) => {
                                            if matches!(r.outcome, Outcome::Blocked { .. }) {
                                                report.decision_errors += 1;
                                            }
                                        }
                                        Err(_) => report.decision_errors += 1,
                                    }
                                }
                            }
                            report.ops += 1;
                            lat.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                        report.phase_live.push(engine.live_sessions());
                        report.phase_latencies_us.push(lat);
                        phase_end.wait();
                        phase_resume.wait();
                    }
                    for id in sessions.iter().flatten() {
                        client.end(*id).expect("end");
                    }
                    report.sessions_begun = engine.sessions_begun();
                    report
                })
            })
            .collect();

        let t0 = Instant::now();
        for _ in 0..phases {
            phase_end.wait();
            let components = proxy.component_heap_bytes();
            let plan_bytes = components[0].1;
            let session_bytes = components[1].1;
            let size_hist = proxy.session_state_size_snapshot();
            let evictions: u64 = proxy.cache_eviction_counts().iter().map(|(_, n)| n).sum();
            mem_samples.push((
                t0.elapsed().as_secs_f64(),
                plan_bytes,
                session_bytes,
                size_hist.p99_ns,
                evictions,
            ));
            phase_resume.wait();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    server.shutdown();
    let stats = proxy.stats();

    let mut phase_stats = Vec::with_capacity(phases);
    for (p, sample) in mem_samples.iter().enumerate() {
        let mut lat: Vec<f64> = reports
            .iter()
            .flat_map(|r| r.phase_latencies_us[p].iter().copied())
            .collect();
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let live: usize = reports.iter().map(|r| r.phase_live[p]).sum();
        let (_, plan_bytes, session_bytes, size_p99, evictions) = *sample;
        phase_stats.push(PhaseSample {
            p50_us: percentile(&lat, 50.0),
            p99_us: percentile(&lat, 99.0),
            live_sessions: live,
            plan_cache_bytes: plan_bytes,
            session_state_bytes: session_bytes,
            state_per_session: session_bytes / live.max(1),
            session_size_p99: size_p99,
            evictions,
        });
    }
    let ops: usize = reports.iter().map(|r| r.ops).sum();
    let wall_s = mem_samples.last().expect("phases ran").0;
    SoakResult {
        app: prep.app.name.clone(),
        ops,
        wall_s,
        throughput: ops as f64 / wall_s,
        decision_errors: reports.iter().map(|r| r.decision_errors).sum(),
        sessions: reports.iter().map(|r| r.sessions_begun).sum(),
        allowed: stats.allowed,
        blocked: stats.blocked,
        evictions_by_tier: proxy.cache_eviction_counts(),
        phases: phase_stats,
    }
}

/// The wire-driven port the soak workers use (no logging).
struct WirePort<'a> {
    client: &'a mut Client,
    session: u64,
}

impl QueryPort for WirePort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        let out = self
            .client
            .execute(self.session, sql, bindings)
            .map_err(|e| DslError::Port(e.to_string()))?;
        Ok(match out {
            ExecOutcome::Rows(r) => PortOutcome::Rows(r),
            ExecOutcome::Affected(n) => PortOutcome::Affected(n as usize),
            ExecOutcome::Blocked { reason, .. } => PortOutcome::Blocked(reason),
        })
    }
}

// -------------------------------------------------------- warm-start restart

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    for e in 0..1 {
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({e}, 'title{e}', 'kind{e}')"
        ))
        .unwrap();
        db.execute_sql(&format!(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, {e}, NULL)"
        ))
        .unwrap();
    }
    db
}

/// Decoy views in the restart policy. The cold rewrite search considers
/// every view per covered atom; none of these ever wins, so they cost
/// cold proofs real work and warm replays nothing (the snapshot's
/// verification pass happens at load time, before requests).
const RESTART_DECOYS: usize = 24;

fn calendar_proxy() -> Arc<SqlProxy> {
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let mut views: Vec<(String, String)> = vec![
        (
            "V1".into(),
            "SELECT EId FROM Attendance WHERE UId = ?MyUId".into(),
        ),
        (
            "V2".into(),
            "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
             WHERE a.UId = ?MyUId"
                .into(),
        ),
    ];
    for d in 0..RESTART_DECOYS {
        // Each decoy is a near-miss of V2: same join shape, plus a
        // constant restriction no restart template carries, so the search
        // must try and reject it.
        views.push((
            format!("D{d}"),
            format!(
                "SELECT e.EId, e.Title FROM Events e JOIN Attendance a \
                 ON e.EId = a.EId WHERE a.UId = ?MyUId AND e.Kind = 'k{d}'"
            ),
        ));
    }
    let view_refs: Vec<(&str, &str)> = views
        .iter()
        .map(|(n, s)| (n.as_str(), s.as_str()))
        .collect();
    let policy = Policy::from_sql(&schema, &view_refs).unwrap();
    // Observability (journal, spans, exemplars) off: it adds a fixed
    // per-decision cost to both sides, and this experiment measures the
    // symbolic-proof warmup a snapshot elides, not telemetry overhead.
    Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig {
            observe: false,
            spans: false,
            ..Default::default()
        },
    ))
}

/// N distinct template-allowed queries, each with a different constant so
/// each needs its own symbolic proof cold. The four-atom join shape makes
/// that proof (rewrite search + mutual containment) the dominant cost —
/// exactly the work a warm start elides.
fn restart_templates(n: usize) -> Vec<String> {
    (0..n)
        .map(|k| {
            format!(
                "SELECT e.Title FROM Events e \
                 JOIN Attendance a ON e.EId = a.EId \
                 JOIN Events f ON f.EId = a.EId \
                 JOIN Attendance b ON b.EId = f.EId \
                 JOIN Events g ON g.EId = b.EId \
                 JOIN Attendance c ON c.EId = g.EId \
                 JOIN Events h ON h.EId = c.EId \
                 JOIN Attendance d ON d.EId = h.EId \
                 JOIN Events i ON i.EId = d.EId \
                 JOIN Attendance j ON j.EId = i.EId \
                 WHERE a.UId = ?MyUId AND b.UId = ?MyUId AND c.UId = ?MyUId \
                 AND d.UId = ?MyUId AND j.UId = ?MyUId AND e.EId = {k}"
            )
        })
        .collect()
}

/// Time until every template has answered once — the restart's
/// time-to-first-steady-state. Returns (seconds, allowed count).
fn time_to_steady(proxy: &SqlProxy, templates: &[String]) -> (f64, usize) {
    let s = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);
    let t0 = Instant::now();
    let allowed = templates
        .iter()
        .filter(|sql| proxy.execute(s, sql, &[]).expect("execute").is_allowed())
        .count();
    let dt = t0.elapsed().as_secs_f64();
    proxy.end_session(s);
    (dt, allowed)
}

struct RestartResult {
    templates: usize,
    cold_ms: f64,
    warm_ms: f64,
    speedup: f64,
    snapshot_entries: usize,
    snapshot_bytes: u64,
    loaded: usize,
    rejected: usize,
}

/// Cold/warm time-to-steady-state is a millisecond-scale wall-clock
/// measurement, so each side is the median of this many fresh replicas.
const RESTART_REPLICAS: usize = 3;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn restart_experiment(n: usize) -> RestartResult {
    let templates = restart_templates(n);
    let path = std::env::temp_dir().join(format!("bep-t15-snap-{}.bin", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Cold: every template pays parse + translate + symbolic proof. Each
    // replica is a fresh proxy; the snapshot comes from the first.
    let mut save = None;
    let mut cold_runs = Vec::with_capacity(RESTART_REPLICAS);
    for _ in 0..RESTART_REPLICAS {
        let cold = calendar_proxy();
        let (cold_s, cold_allowed) = time_to_steady(&cold, &templates);
        assert_eq!(cold_allowed, n, "all restart templates are allowed");
        if save.is_none() {
            save = Some(cold.save_snapshot(&path).expect("save snapshot"));
        }
        cold_runs.push(cold_s);
    }
    let save = save.expect("snapshot saved");
    let cold_s = median(&mut cold_runs);

    // Warm: a fresh proxy loads (and re-verifies) the verdicts, then
    // replays the same workload without a single symbolic proof.
    let mut report = None;
    let mut warm_runs = Vec::with_capacity(RESTART_REPLICAS);
    for _ in 0..RESTART_REPLICAS {
        let warm = calendar_proxy();
        let r = warm.load_snapshot(&path).expect("load snapshot");
        assert_eq!(r.rejected, 0, "same policy: nothing may be rejected");
        let (warm_s, warm_allowed) = time_to_steady(&warm, &templates);
        assert_eq!(warm_allowed, n, "warm decisions match cold");
        report = Some(r);
        warm_runs.push(warm_s);
    }
    let report = report.expect("snapshot loaded");
    let warm_s = median(&mut warm_runs);

    std::fs::remove_file(&path).ok();
    RestartResult {
        templates: n,
        cold_ms: cold_s * 1e3,
        warm_ms: warm_s * 1e3,
        speedup: cold_s / warm_s.max(1e-9),
        snapshot_entries: save.entries,
        snapshot_bytes: save.bytes,
        loaded: report.loaded,
        rejected: report.rejected,
    }
}

/// A corrupted snapshot must fail typed, install nothing, and leave
/// decisions identical to a cold start.
fn corruption_check(n: usize) -> &'static str {
    let templates = restart_templates(n);
    let path = std::env::temp_dir().join(format!("bep-t15-corrupt-{}.bin", std::process::id()));
    let cold = calendar_proxy();
    let (_, allowed) = time_to_steady(&cold, &templates);
    assert_eq!(allowed, n);
    cold.save_snapshot(&path).expect("save snapshot");

    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&path, &bytes).expect("rewrite snapshot");

    let fresh = calendar_proxy();
    let err = fresh
        .load_snapshot(&path)
        .expect_err("corrupt snapshot must not load");
    assert!(
        matches!(err, SnapshotError::ChecksumMismatch),
        "expected a checksum error, got: {err}"
    );
    assert!(
        fresh.plan_cache().get(&templates[0]).is_none(),
        "corrupt snapshot installed a plan"
    );
    let (_, cold_again) = time_to_steady(&fresh, &templates);
    assert_eq!(cold_again, n, "cold-start fallback decides identically");
    std::fs::remove_file(&path).ok();
    "checksum-mismatch -> cold start, decisions identical"
}

// ------------------------------------------------------------------- main

fn json_of(
    gate: (usize, usize, u64),
    soak: &SoakResult,
    users: u64,
    restart: &RestartResult,
    corrupt: &str,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t15_bounded\",\n");
    out.push_str(&format!("  \"fleet_seed\": {FLEET_SEED},\n"));
    out.push_str(&format!(
        "  \"differential_gate\": {{\"gate_users\": {GATE_USERS}, \"ops_per_app\": {GATE_OPS}, \
         \"log_entries\": {}, \"mismatches\": {}, \"starved_evictions\": {}}},\n",
        gate.0, gate.1, gate.2
    ));
    out.push_str(&format!(
        "  \"soak\": {{\"app\": \"{}\", \"users\": {users}, \"plan_budget_bytes\": \
         {SOAK_PLAN_BUDGET}, \"session_budget_bytes\": {SOAK_SESSION_BUDGET}, \"ops\": {}, \
         \"wall_s\": {:.2}, \"throughput_ops_s\": {:.1}, \"decision_errors\": {}, \
         \"sessions\": {}, \"allowed\": {}, \"blocked\": {},\n",
        soak.app,
        soak.ops,
        soak.wall_s,
        soak.throughput,
        soak.decision_errors,
        soak.sessions,
        soak.allowed,
        soak.blocked,
    ));
    out.push_str(&format!(
        "   \"evictions\": {{\"plan\": {}, \"session_allow\": {}, \"session_deny\": {}}},\n",
        soak.evictions_by_tier[0].1, soak.evictions_by_tier[1].1, soak.evictions_by_tier[2].1,
    ));
    out.push_str("   \"phases\": [\n");
    for (i, ph) in soak.phases.iter().enumerate() {
        out.push_str(&format!(
            "     {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"live_sessions\": {}, \
             \"plan_cache_kb\": {}, \"session_state_kb\": {}, \"state_per_session_bytes\": {}, \
             \"session_size_p99_bytes\": {}, \"evictions\": {}}}{}\n",
            ph.p50_us,
            ph.p99_us,
            ph.live_sessions,
            ph.plan_cache_bytes / 1024,
            ph.session_state_bytes / 1024,
            ph.state_per_session,
            ph.session_size_p99,
            ph.evictions,
            if i + 1 == soak.phases.len() { "" } else { "," }
        ));
    }
    out.push_str("   ]},\n");
    out.push_str(&format!(
        "  \"restart\": {{\"templates\": {}, \"cold_ms\": {:.2}, \"warm_ms\": {:.2}, \
         \"speedup\": {:.1}, \"snapshot_entries\": {}, \"snapshot_bytes\": {}, \
         \"loaded\": {}, \"rejected\": {}}},\n",
        restart.templates,
        restart.cold_ms,
        restart.warm_ms,
        restart.speedup,
        restart.snapshot_entries,
        restart.snapshot_bytes,
        restart.loaded,
        restart.rejected,
    ));
    out.push_str(&format!("  \"corrupt_snapshot\": \"{corrupt}\"\n"));
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");

    // Experiment 1: the bounded differential gate, always first.
    let gate_preps: Vec<PreparedApp> = fleet(FLEET_SEED, GATE_USERS)
        .into_iter()
        .map(prepare)
        .collect();
    let mut gate_entries = 0;
    let mut mismatches = 0;
    let mut starved_evictions = 0;
    for prep in &gate_preps {
        let (entries, miss, evictions) = bounded_gate(prep);
        gate_entries += entries;
        mismatches += miss;
        starved_evictions += evictions;
    }
    assert_eq!(
        mismatches, 0,
        "bounded gate: compaction and eviction must be decision-invisible"
    );
    assert!(
        starved_evictions > 0,
        "bounded gate: the starved configuration never evicted — the gate \
         exercised nothing"
    );

    // Experiment 2: the budgeted soak.
    let users = if smoke {
        SOAK_USERS_SMOKE
    } else {
        SOAK_USERS_FULL
    };
    let (phases, phase_ops) = if smoke {
        (PHASES_SMOKE, PHASE_OPS_SMOKE)
    } else {
        (PHASES_FULL, PHASE_OPS_FULL)
    };
    let soak_app = fleet(FLEET_SEED, users).into_iter().next().expect("fleet");
    let prep = prepare(soak_app);
    println!(
        "\nsoak: {} at {} users, budgets plan={}KiB session={}B",
        prep.app.name,
        users,
        SOAK_PLAN_BUDGET / 1024,
        SOAK_SESSION_BUDGET
    );
    let result = soak(&prep, SOAK_WORKERS, phases, phase_ops);

    let widths = [5usize, 8, 8, 5, 8, 10, 8, 9, 9];
    header(
        &[
            "phase", "p50-us", "p99-us", "live", "plan-kb", "state-kb", "b/sess", "p99-sess",
            "evicted",
        ],
        &widths,
    );
    for (i, ph) in result.phases.iter().enumerate() {
        row(
            &[
                i.to_string(),
                f2(ph.p50_us),
                f2(ph.p99_us),
                ph.live_sessions.to_string(),
                (ph.plan_cache_bytes / 1024).to_string(),
                (ph.session_state_bytes / 1024).to_string(),
                ph.state_per_session.to_string(),
                ph.session_size_p99.to_string(),
                ph.evictions.to_string(),
            ],
            &widths,
        );
    }
    assert_eq!(
        result.decision_errors, 0,
        "budgeted soak: decisions diverged under memory pressure"
    );
    let total_evictions: u64 = result.evictions_by_tier.iter().map(|(_, n)| n).sum();
    assert!(
        total_evictions > 0,
        "budgeted soak: budgets never forced an eviction"
    );
    // The plan cache respects its budget (with structural headroom: the
    // budget bounds resident plan bytes; tables and collision-chain slots
    // ride on top).
    for ph in &result.phases {
        assert!(
            ph.plan_cache_bytes < 4 * SOAK_PLAN_BUDGET + 64 * 1024,
            "plan cache far exceeds its budget: {} bytes",
            ph.plan_cache_bytes
        );
    }
    // Per-live-session state stays flat across phases: bounded caches and
    // trace compaction make session state O(distinct information), not
    // O(requests served).
    let first = &result.phases[0];
    let last = result.phases.last().expect("phases");
    assert!(
        last.state_per_session <= 2 * first.state_per_session + 16 * 1024,
        "session state grew across phases: {} -> {} bytes per live session",
        first.state_per_session,
        last.state_per_session
    );

    // Experiments 3 and 4: warm restart and corrupt-snapshot fallback.
    let n = if smoke {
        RESTART_TEMPLATES_SMOKE
    } else {
        RESTART_TEMPLATES_FULL
    };
    let restart = restart_experiment(n);
    println!(
        "\nrestart: {} templates, cold {:.1}ms, warm {:.1}ms, {:.1}x speedup \
         ({} snapshot entries, {} bytes)",
        restart.templates,
        restart.cold_ms,
        restart.warm_ms,
        restart.speedup,
        restart.snapshot_entries,
        restart.snapshot_bytes,
    );
    assert!(
        restart.speedup >= RESTART_SPEEDUP,
        "warm restart only {:.1}x faster than cold (need {RESTART_SPEEDUP}x)",
        restart.speedup
    );
    let corrupt = corruption_check(if smoke { 4 } else { 8 });
    println!("corrupt-snapshot fallback: {corrupt}");

    if smoke {
        println!(
            "\nsmoke: gate clean ({gate_entries} entries, {starved_evictions} starved \
             evictions), soak bounded, restart {:.1}x, corruption falls back cold",
            restart.speedup
        );
        return;
    }

    let json = json_of(
        (gate_entries, 0, starved_evictions),
        &result,
        users,
        &restart,
        corrupt,
    );
    std::fs::write("BENCH_t15.json", &json).expect("write BENCH_t15.json");
    println!("\nwrote BENCH_t15.json");
}
