//! T5 — Violation diagnosis: run every injected-bug handler across the
//! applications, collect the blocked queries, and report per violation:
//! counterexample found, patch kinds generated, whether applying the best
//! patch unblocks, culprit heuristic, and diagnosis latency.
//!
//! Run: `cargo run -p bep-bench --bin t5_diagnosis --release`

use std::time::Instant;

use appsim::{ProxyPort, Scale, ALL_APPS};
use bep_bench::{app_env, header, proxy_for, row};
use bep_core::ProxyConfig;
use bep_diagnose::{diagnose, DiagnosisInput, Patch};
use bep_extract::{extract_symbolic, SymLimits, ViewGenOptions};
use sqlir::Value;

fn main() {
    let widths = [10usize, 22, 8, 14, 9, 8, 12, 9];
    header(
        &[
            "app",
            "handler",
            "blocked",
            "counterexample",
            "patches",
            "unblocks",
            "culprit",
            "ms",
        ],
        &widths,
    );

    let mut violations = 0;
    let mut diagnosed = 0;
    let mut patched = 0;

    for sim in ALL_APPS {
        let env = app_env(sim, 29, Scale::small(), 0);
        let schema = sim.schema();
        let policy = sim.policy().expect("policy");
        let app = sim.app_with_bugs();
        let buggy: Vec<String> = app
            .handlers
            .iter()
            .map(|h| h.name.clone())
            .filter(|n| sim.app().handler(n).is_none())
            .collect();

        // Extraction over the buggy app supplies policy-patch candidates.
        let opts = ViewGenOptions {
            session_params: sim.session_params.iter().map(|s| s.to_string()).collect(),
        };
        let extracted = extract_symbolic(&schema, &app, SymLimits::default(), &opts)
            .expect("symex")
            .views;

        for handler_name in &buggy {
            let handler = app.handler(handler_name).unwrap();
            // Drive the buggy handler with plausible parameters until the
            // proxy blocks something.
            let proxy = proxy_for(&env, ProxyConfig::default());
            let session_bindings: Vec<(String, Value)> = sim
                .session_params
                .iter()
                .map(|p| (p.to_string(), Value::Int(101)))
                .collect();
            let session = proxy.begin_session(session_bindings.clone());
            let mut blocked_sql = None;
            for candidate in [2i64, 3, 7, 10, 1000, 1001] {
                let params: Vec<(String, Value)> = handler
                    .params
                    .iter()
                    .map(|p| (p.clone(), Value::Int(candidate)))
                    .collect();
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session,
                };
                let r = appdsl::run_handler(
                    &mut port,
                    handler,
                    &session_bindings,
                    &params,
                    appdsl::Limits::default(),
                );
                if let Ok(result) = r {
                    if let appdsl::Outcome::Blocked { sql } = result.outcome {
                        blocked_sql = Some((sql, params));
                        break;
                    }
                }
            }
            let Some((sql, params)) = blocked_sql else {
                row(
                    &[
                        sim.name.to_string(),
                        handler_name.clone(),
                        "no".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ],
                    &widths,
                );
                continue;
            };
            violations += 1;

            // Build the instantiated blocked query.
            let mut bindings = session_bindings.clone();
            bindings.extend(params);
            let parsed = sqlir::parse_query(&sql).expect("blocked sql parses");
            let cq = qlogic::sql_to_ucq(&schema, &parsed)
                .expect("fragment")
                .disjuncts
                .remove(0)
                .instantiate(&bindings);
            let views = policy.instantiate(&session_bindings).expect("instantiate");
            let facts = proxy
                .session_trace(session)
                .expect("trace")
                .facts()
                .to_vec();

            let start = Instant::now();
            let report = diagnose(&DiagnosisInput {
                query: &cq,
                views: &views,
                trace_facts: &facts,
                schema: &schema,
                extracted: Some(&extracted),
            });
            let elapsed = start.elapsed().as_millis();

            match report {
                Ok(report) => {
                    diagnosed += 1;
                    // Validate: does the least-invasive patch unblock?
                    let unblocks = report.patches.iter().any(|p| match p {
                        Patch::AccessCheck(ac) => {
                            let mut with_fact = facts.clone();
                            with_fact.push(ac.fact.clone());
                            qlogic::equivalent_rewriting(&cq, &views, &with_fact).is_some()
                        }
                        Patch::Query(qp) => {
                            qlogic::equivalent_rewriting(&qp.expansion, &views, &facts).is_some()
                        }
                        Patch::Policy(pp) => {
                            let mut all: Vec<qlogic::Cq> = views.views().to_vec();
                            for (i, v) in pp.additions.iter().enumerate() {
                                let mut n = v.clone();
                                n.name = Some(format!("N{i}").into());
                                all.push(n);
                            }
                            qlogic::ViewSet::new(all)
                                .ok()
                                .map(|vs| qlogic::equivalent_rewriting(&cq, &vs, &facts).is_some())
                                .unwrap_or(false)
                        }
                    });
                    if unblocks {
                        patched += 1;
                    }
                    let kinds: Vec<&str> = report.patches.iter().map(|p| p.kind()).collect();
                    row(
                        &[
                            sim.name.to_string(),
                            handler_name.clone(),
                            "yes".into(),
                            if report.counterexample.is_some() {
                                "found"
                            } else {
                                "-"
                            }
                            .to_string(),
                            format!("{}({})", report.patches.len(), kinds.join(",")),
                            if unblocks { "yes" } else { "no" }.to_string(),
                            format!("{:?}", report.likely_culprit()),
                            elapsed.to_string(),
                        ],
                        &widths,
                    );
                }
                Err(e) => {
                    row(
                        &[
                            sim.name.to_string(),
                            handler_name.clone(),
                            "yes".into(),
                            "-".into(),
                            format!("err:{e}"),
                            "no".into(),
                            "-".into(),
                            elapsed.to_string(),
                        ],
                        &widths,
                    );
                }
            }
        }
    }

    println!();
    println!(
        "summary: {violations} violations provoked, {diagnosed} diagnosed, \
         {patched} with a validated unblocking patch"
    );
    assert!(violations >= 5, "the bug corpus must provoke violations");
    assert_eq!(violations, diagnosed, "every violation gets a diagnosis");
}
