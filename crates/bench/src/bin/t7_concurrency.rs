//! T7 — Concurrent enforcement throughput: a closed-loop multi-threaded
//! driver over the calendar and forum workloads, exercising the `&self`
//! proxy path from 1/2/4/8 worker threads across cache configurations.
//!
//! Each worker owns a disjoint round-robin share of the request workload
//! and replays it for a fixed number of rounds, opening a fresh session per
//! request (sessions therefore spread across the proxy's shards). Reported
//! per configuration: total throughput, p50/p99 per-request latency as
//! observed by the harness, and the p50/p99 the proxy's own lock-free
//! decision histogram recorded (the same source `bep-server` reports over
//! the wire, so T7 and T8 numbers are directly comparable).
//!
//! Results are also written to `BENCH_t7.json`, including the host's
//! available parallelism — on a single-core host the thread sweep measures
//! contention overhead of the concurrent data structures, not speedup, and
//! the JSON records the core count so readers can interpret the numbers.
//!
//! Run: `cargo run -p bep-bench --bin t7_concurrency --release`

use std::time::Instant;

use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, salted_params, AppEnv};
use bep_core::ProxyConfig;

/// Rounds each worker replays its share of the workload.
const ROUNDS: usize = 6;
/// Requests drawn per app.
const N_REQUESTS: usize = 120;
/// Worker-thread counts swept.
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Measurement {
    app: &'static str,
    config: &'static str,
    threads: usize,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    /// Per-decision percentiles from the proxy's own histogram — the same
    /// numbers a `stats` request reports over the wire in T8.
    hist_p50_us: f64,
    hist_p99_us: f64,
    allowed: u64,
    blocked: u64,
    /// Handlers aborted by a database error. Replayed create-requests get
    /// their fresh-id parameters salted per round (see [`salted_params`]),
    /// so every round inserts distinct rows and this must be zero.
    errors: usize,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Drives `env`'s workload through a fresh proxy with `m` closed-loop
/// workers and returns the measurement.
fn drive(
    sim: &'static SimApp,
    env: &AppEnv,
    config_label: &'static str,
    config: ProxyConfig,
    m: usize,
) -> Measurement {
    let proxy = proxy_for(env, config);
    let app = env.sim.app();
    let start = Instant::now();
    let per_worker: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|worker| {
                let proxy = &proxy;
                let app = &app;
                let requests = &env.requests;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(ROUNDS * requests.len() / m + 1);
                    let mut errors = 0usize;
                    for round in 0..ROUNDS {
                        for req in requests.iter().skip(worker).step_by(m) {
                            let handler = app.handler(&req.handler).expect("handler");
                            let params = salted_params(&req.params, round);
                            let t0 = Instant::now();
                            let session = proxy.begin_session(req.session.clone());
                            let mut port = ProxyPort { proxy, session };
                            if appdsl::run_handler(
                                &mut port,
                                handler,
                                &req.session,
                                &params,
                                appdsl::Limits::default(),
                            )
                            .is_err()
                            {
                                errors += 1;
                            }
                            proxy.end_session(session);
                            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let errors: usize = per_worker.iter().map(|(_, e)| e).sum();
    let mut all_latencies: Vec<f64> = per_worker.into_iter().flat_map(|(l, _)| l).collect();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = proxy.stats();
    Measurement {
        app: sim.name,
        config: config_label,
        threads: m,
        ops: all_latencies.len(),
        wall_s,
        throughput: all_latencies.len() as f64 / wall_s,
        p50_us: percentile(&all_latencies, 50.0),
        p99_us: percentile(&all_latencies, 99.0),
        hist_p50_us: stats.latency.p50_us(),
        hist_p99_us: stats.latency.p99_us(),
        allowed: stats.allowed,
        blocked: stats.blocked,
        errors,
    }
}

fn json_of(results: &[Measurement], cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t7_concurrency\",\n");
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"wall_s\": {:.4}, \"throughput_ops_s\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"hist_p50_us\": {:.1}, \"hist_p99_us\": {:.1}, \
             \"allowed\": {}, \"blocked\": {}, \"errors\": {}}}{}\n",
            r.app,
            r.config,
            r.threads,
            r.ops,
            r.wall_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.hist_p50_us,
            r.hist_p99_us,
            r.allowed,
            r.blocked,
            r.errors,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores < THREADS[THREADS.len() - 1] {
        println!(
            "note: fewer cores than the widest sweep point; beyond {cores} thread(s) the \
             numbers measure lock/scheduler overhead, not parallel speedup"
        );
    }
    println!();

    let configs: [(&'static str, ProxyConfig); 3] = [
        ("full", ProxyConfig::default()),
        (
            "no-session-cache",
            ProxyConfig {
                session_cache: false,
                ..Default::default()
            },
        ),
        (
            "no-caches",
            ProxyConfig {
                template_cache: false,
                session_cache: false,
                ..Default::default()
            },
        ),
    ];

    let widths = [9usize, 17, 7, 7, 11, 9, 9, 9, 9, 7, 7, 7];
    header(
        &[
            "app", "config", "threads", "ops", "ops/s", "p50-us", "p99-us", "h-p50", "h-p99", "ok",
            "denied", "errors",
        ],
        &widths,
    );

    let mut results: Vec<Measurement> = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), N_REQUESTS);
        for (label, config) in configs {
            for m in THREADS {
                let r = drive(sim, &env, label, config, m);
                assert_eq!(
                    r.errors, 0,
                    "{} {} x{}: replayed requests must not abort (id salting broken?)",
                    r.app, r.config, r.threads
                );
                row(
                    &[
                        r.app.to_string(),
                        r.config.to_string(),
                        r.threads.to_string(),
                        r.ops.to_string(),
                        f2(r.throughput),
                        f2(r.p50_us),
                        f2(r.p99_us),
                        f2(r.hist_p50_us),
                        f2(r.hist_p99_us),
                        r.allowed.to_string(),
                        r.blocked.to_string(),
                        r.errors.to_string(),
                    ],
                    &widths,
                );
                results.push(r);
            }
        }
        println!();
    }

    let json = json_of(&results, cores);
    std::fs::write("BENCH_t7.json", &json).expect("write BENCH_t7.json");
    println!("wrote BENCH_t7.json ({} measurements)", results.len());

    println!();
    println!("Shape claims:");
    println!("  - decisions are identical at every thread count (ok/denied constant");
    println!("    down each app+config column): concurrency changes cost, not answers;");
    println!("  - 'full' beats 'no-caches' at every thread count;");
    println!("  - errors are zero everywhere: replayed create-requests salt their");
    println!("    fresh ids per round instead of re-inserting the same primary key;");
    println!("  - with more cores than threads, ops/s grows with the thread count.");
}
