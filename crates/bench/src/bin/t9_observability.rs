//! T9 — Observability overhead: the cost of decision provenance.
//!
//! The enforcement proxy can record a structured [`DecisionEvent`] per
//! decision (journal ring write + six phase-timer laps + per-phase
//! histogram updates). This bench answers the question that decides
//! whether provenance can stay on in production: **what does `observe:
//! true` cost on the request path?**
//!
//! For each application (calendar, forum) and each journal mode (off,
//! on), the full request workload is replayed in-process through
//! `ProxyPort` against a fresh proxy, timing every request client-side.
//! Percentiles are exact (sorted samples, nearest-rank), and each mode
//! runs `REPS` repetitions with the median p50 reported — one noisy rep
//! must not decide the verdict. Decisions are asserted identical across
//! modes (observability must never change answers), and the calendar
//! workload's enabled-vs-disabled median p50 must stay within
//! `MAX_OVERHEAD`. With observation on, the per-phase latency breakdown
//! (parse / template-lookup / concrete-lookup / proof / db-exec /
//! trace-record) is printed from the proxy's own histograms.
//!
//! Results go to `BENCH_t9.json`.
//!
//! Run: `cargo run -p bep-bench --bin t9_observability --release`

use std::time::Instant;

use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, AppEnv};
use bep_core::{Phase, ProxyConfig};

/// Requests drawn per app.
const N_REQUESTS: usize = 150;
/// Repetitions per (app, mode); the reported p50 is the median across
/// them.
const REPS: usize = 5;
/// Untimed passes that warm the template/session caches and the allocator
/// before measurement.
const WARMUP_ROUNDS: usize = 1;
/// Timed passes per repetition.
const MEASURED_ROUNDS: usize = 2;
/// Acceptance bound: enabled median p50 must stay within this fraction of
/// disabled (asserted for the calendar workload).
const MAX_OVERHEAD: f64 = 0.10;

/// One repetition's measurements.
struct Rep {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    ops: usize,
    wall_s: f64,
    allowed: u64,
    blocked: u64,
    published: u64,
    evicted: u64,
}

/// One (app, mode) summary: median-of-reps percentiles.
struct ModeResult {
    app: &'static str,
    observe: bool,
    ops: usize,
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    allowed: u64,
    blocked: u64,
    published: u64,
    evicted: u64,
}

/// Exact nearest-rank percentile over sorted samples.
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// Replays the workload once (warmup + measured rounds) against a fresh
/// proxy in the given mode, timing each request.
fn run_once(env: &AppEnv, observe: bool) -> Rep {
    let proxy = proxy_for(
        env,
        ProxyConfig {
            observe,
            ..Default::default()
        },
    );
    let app = env.sim.app();
    let drive = |timed: &mut Option<Vec<f64>>| {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let session = proxy.begin_session(req.session.clone());
            let t0 = Instant::now();
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let _ = appdsl::run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                appdsl::Limits::default(),
            );
            if let Some(samples) = timed {
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            proxy.end_session(session);
        }
    };

    for _ in 0..WARMUP_ROUNDS {
        drive(&mut None);
    }
    let mut samples = Some(Vec::with_capacity(env.requests.len() * MEASURED_ROUNDS));
    let wall = Instant::now();
    for _ in 0..MEASURED_ROUNDS {
        drive(&mut samples);
    }
    let wall_s = wall.elapsed().as_secs_f64();

    let mut samples = samples.unwrap();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = proxy.stats();
    Rep {
        p50_us: percentile(&samples, 50.0),
        p95_us: percentile(&samples, 95.0),
        p99_us: percentile(&samples, 99.0),
        ops: samples.len(),
        wall_s,
        allowed: stats.allowed,
        blocked: stats.blocked,
        published: proxy.journal().published(),
        evicted: proxy.journal().evicted(),
    }
}

/// Runs `REPS` repetitions of one (app, mode) point and reduces them to
/// the median of each percentile.
fn run_mode(sim: &'static SimApp, env: &AppEnv, observe: bool) -> ModeResult {
    let reps: Vec<Rep> = (0..REPS).map(|_| run_once(env, observe)).collect();
    let first = &reps[0];
    for r in &reps {
        assert_eq!(
            (r.allowed, r.blocked),
            (first.allowed, first.blocked),
            "repetitions of a deterministic workload must decide identically"
        );
    }
    let mut p50s: Vec<f64> = reps.iter().map(|r| r.p50_us).collect();
    let mut p95s: Vec<f64> = reps.iter().map(|r| r.p95_us).collect();
    let mut p99s: Vec<f64> = reps.iter().map(|r| r.p99_us).collect();
    let wall_s: f64 = reps.iter().map(|r| r.wall_s).sum();
    let ops: usize = reps.iter().map(|r| r.ops).sum();
    ModeResult {
        app: sim.name,
        observe,
        ops,
        throughput: ops as f64 / wall_s,
        p50_us: median(&mut p50s),
        p95_us: median(&mut p95s),
        p99_us: median(&mut p99s),
        allowed: first.allowed,
        blocked: first.blocked,
        published: first.published,
        evicted: first.evicted,
    }
}

/// Prints the per-phase latency breakdown from one observed replay.
fn phase_breakdown(env: &AppEnv) {
    let proxy = proxy_for(
        env,
        ProxyConfig {
            observe: true,
            ..Default::default()
        },
    );
    let app = env.sim.app();
    for _ in 0..WARMUP_ROUNDS + MEASURED_ROUNDS {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let session = proxy.begin_session(req.session.clone());
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let _ = appdsl::run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                appdsl::Limits::default(),
            );
            proxy.end_session(session);
        }
    }
    let widths = [16usize, 9, 9, 9, 9];
    header(&["phase", "count", "p50-us", "p95-us", "p99-us"], &widths);
    let snaps = proxy.phase_snapshots();
    for (phase, s) in Phase::ALL.iter().zip(&snaps) {
        row(
            &[
                phase.label().to_string(),
                s.count.to_string(),
                f2(s.p50_ns as f64 / 1e3),
                f2(s.p95_ns as f64 / 1e3),
                f2(s.p99_ns as f64 / 1e3),
            ],
            &widths,
        );
    }
}

fn json_of(results: &[ModeResult], overheads: &[(&'static str, f64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t9_observability\",\n");
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS},\n"));
    out.push_str(&format!("  \"reps\": {REPS},\n"));
    out.push_str(&format!("  \"measured_rounds\": {MEASURED_ROUNDS},\n"));
    out.push_str(&format!("  \"max_overhead\": {MAX_OVERHEAD},\n"));
    out.push_str("  \"p50_overhead\": {");
    for (i, (app, o)) in overheads.iter().enumerate() {
        out.push_str(&format!(
            "\"{app}\": {:.4}{}",
            o,
            if i + 1 == overheads.len() { "" } else { ", " }
        ));
    }
    out.push_str("},\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"observe\": {}, \"ops\": {}, \
             \"throughput_ops_s\": {:.1}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \
             \"p99_us\": {:.2}, \"allowed\": {}, \"blocked\": {}, \
             \"journal_published\": {}, \"journal_evicted\": {}}}{}\n",
            r.app,
            r.observe,
            r.ops,
            r.throughput,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.allowed,
            r.blocked,
            r.published,
            r.evicted,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let widths = [9usize, 8, 8, 11, 9, 9, 9, 7, 7, 10, 8];
    header(
        &[
            "app",
            "journal",
            "ops",
            "ops/s",
            "p50-us",
            "p95-us",
            "p99-us",
            "ok",
            "denied",
            "published",
            "evicted",
        ],
        &widths,
    );

    let mut results: Vec<ModeResult> = Vec::new();
    let mut overheads: Vec<(&'static str, f64)> = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), N_REQUESTS);
        let mut by_mode = [0.0f64; 2];
        for observe in [false, true] {
            let r = run_mode(sim, &env, observe);
            by_mode[observe as usize] = r.p50_us;
            row(
                &[
                    r.app.to_string(),
                    if r.observe { "on" } else { "off" }.to_string(),
                    r.ops.to_string(),
                    f2(r.throughput),
                    f2(r.p50_us),
                    f2(r.p95_us),
                    f2(r.p99_us),
                    r.allowed.to_string(),
                    r.blocked.to_string(),
                    r.published.to_string(),
                    r.evicted.to_string(),
                ],
                &widths,
            );
            results.push(r);
        }
        // Observability must never change answers: same workload, same
        // decisions, journal on or off.
        let (off, on) = (&results[results.len() - 2], &results[results.len() - 1]);
        assert_eq!(
            (off.allowed, off.blocked),
            (on.allowed, on.blocked),
            "{}: journal on/off must decide identically",
            sim.name
        );
        assert_eq!(
            off.published, 0,
            "{}: journal off publishes nothing",
            sim.name
        );
        assert!(
            on.published > 0,
            "{}: journal on records every decision",
            sim.name
        );
        let overhead = on.p50_us / off.p50_us - 1.0;
        overheads.push((sim.name, overhead));
        println!(
            "  {}: enabled p50 overhead {:+.1}% (bound {:.0}%)\n",
            sim.name,
            overhead * 100.0,
            MAX_OVERHEAD * 100.0
        );
    }

    let calendar_overhead = overheads
        .iter()
        .find(|(app, _)| *app == "calendar")
        .map(|(_, o)| *o)
        .expect("calendar measured");
    assert!(
        calendar_overhead < MAX_OVERHEAD,
        "calendar p50 overhead {:.1}% exceeds the {:.0}% bound",
        calendar_overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    println!("phase breakdown (calendar, journal on):");
    let env = app_env(&CALENDAR, 17, Scale::small(), N_REQUESTS);
    phase_breakdown(&env);

    let json = json_of(&results, &overheads);
    std::fs::write("BENCH_t9.json", &json).expect("write BENCH_t9.json");
    println!("\nwrote BENCH_t9.json ({} measurements)", results.len());

    println!();
    println!("Shape claims:");
    println!("  - provenance never changes answers: allowed/blocked identical with");
    println!("    the journal on and off (asserted per app);");
    println!(
        "  - the calendar enabled-p50 overhead stays under {:.0}% (asserted):",
        MAX_OVERHEAD * 100.0
    );
    println!("    one ring write + six monotonic-clock laps per decision is cheap");
    println!("    next to parsing and proof checking;");
    println!("  - with the journal off the ring publishes nothing — the observe");
    println!("    flag gates every timestamp on the hot path.");
}
