//! T14 — Deep introspection: what do solver micro-spans cost, and where
//! do the bytes live?
//!
//! Two experiments:
//!
//! 1. **Span overhead** (t9-style): for each application (calendar,
//!    forum) the full request workload is replayed in-process against a
//!    fresh proxy in three modes — spans *off* (the baseline: observe on,
//!    span hooks cost one thread-local read), span *summaries* on every
//!    decision, and summaries plus *sampled* full-tree capture (every
//!    64th decision, 4 exemplars per template). Percentiles are exact
//!    (sorted samples, nearest-rank) and each mode runs `REPS`
//!    repetitions with the median p50 reported. Decisions must be
//!    identical across modes (introspection never changes answers), the
//!    journal must actually carry span summaries in the instrumented
//!    modes (so the bound cannot pass vacuously), and the calendar
//!    summaries-mode p50 must stay within `MAX_OVERHEAD` of the
//!    baseline; sampled capture is off the common path, so it is held to
//!    the same bound.
//! 2. **Memory accounting**: the scenario fleet's social app is
//!    populated at 10^5 users (10^3 under `--smoke`) and soaked with the
//!    Zipf traffic engine in-process, spans and exemplars on. At peak —
//!    live sessions still open — the byte-accurate component gauges
//!    (plan cache, session state, journal, exemplars) are sampled; then
//!    every session is drained and the per-session state-size
//!    distribution (p50/p99/max bytes, recorded at each session's end)
//!    is reported. Decision errors must be zero, and every begun session
//!    must appear in the distribution — the accounting loses nobody.
//!
//! The live-stream equivalence claim (a `subscribe`d connection sees
//! exactly what a polling cursor sees, losses accounted drop-for-drop)
//! is enforced by `bep-server`'s `subscribe_stream` integration tests,
//! not re-measured here.
//!
//! Results go to `BENCH_t14.json`.
//!
//! Run: `cargo run -p bep-bench --bin t14_introspect --release [-- --smoke]`

use std::time::Instant;

use appdsl::{run_handler, Limits, Outcome, PortOutcome, QueryPort};
use appsim::{AppSpec, ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, AppEnv};
use bep_core::{ComplianceChecker, LatencySnapshot, ProxyConfig, SqlProxy};
use bep_scenario::{derive, fleet, TrafficConfig, TrafficEngine, TrafficOp};
use sqlir::Value;

/// Requests drawn per app in the overhead phase.
const N_REQUESTS_FULL: usize = 150;
const N_REQUESTS_SMOKE: usize = 60;
/// Repetitions per (app, mode); the reported p50 is the median across
/// them.
const REPS_FULL: usize = 5;
const REPS_SMOKE: usize = 3;
/// Untimed warmup passes and timed passes per repetition.
const WARMUP_ROUNDS: usize = 1;
const MEASURED_ROUNDS: usize = 2;
/// Acceptance bound on the calendar p50, instrumented vs baseline. The
/// smoke bound is loose: at smoke sample counts the medians are noisy,
/// and the full run is the one that prices the feature.
const MAX_OVERHEAD_FULL: f64 = 0.10;
const MAX_OVERHEAD_SMOKE: f64 = 0.50;
/// Full-tree capture cadence in sampled mode.
const SAMPLE_EVERY: u64 = 64;
/// Fleet seed for the memory soak (same fleet as T13).
const FLEET_SEED: u64 = 1307;
/// Social-app population for the memory soak.
const USERS_FULL: u64 = 100_000;
const USERS_SMOKE: u64 = 1_000;
/// Traffic ops in the memory soak.
const SOAK_OPS_FULL: usize = 20_000;
const SOAK_OPS_SMOKE: usize = 1_500;

/// The three span configurations priced by the overhead phase.
#[derive(Clone, Copy, PartialEq, Eq)]
enum SpanMode {
    /// Spans off entirely (observe stays on — T9 already priced that).
    Off,
    /// Compact summaries on every decision, no tree capture.
    Summaries,
    /// Summaries plus full-tree capture every `SAMPLE_EVERY`th decision
    /// and slow-decision exemplars.
    Sampled,
}

impl SpanMode {
    const ALL: [SpanMode; 3] = [SpanMode::Off, SpanMode::Summaries, SpanMode::Sampled];

    fn label(self) -> &'static str {
        match self {
            SpanMode::Off => "off",
            SpanMode::Summaries => "summaries",
            SpanMode::Sampled => "sampled",
        }
    }

    fn config(self) -> ProxyConfig {
        match self {
            SpanMode::Off => ProxyConfig::default(),
            SpanMode::Summaries => ProxyConfig {
                spans: true,
                ..ProxyConfig::default()
            },
            SpanMode::Sampled => ProxyConfig {
                spans: true,
                span_sample_every: SAMPLE_EVERY,
                exemplars_per_template: 4,
                ..ProxyConfig::default()
            },
        }
    }
}

/// One repetition's measurements.
struct Rep {
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    ops: usize,
    wall_s: f64,
    allowed: u64,
    blocked: u64,
    spanned_events: usize,
    journal_events: usize,
    exemplars: usize,
}

/// One (app, mode) summary: median-of-reps percentiles.
struct ModeResult {
    app: &'static str,
    mode: SpanMode,
    ops: usize,
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    allowed: u64,
    blocked: u64,
    spanned_events: usize,
    journal_events: usize,
    exemplars: usize,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

/// Replays the workload once (warmup + measured rounds) against a fresh
/// proxy in the given span mode, timing each request.
fn run_once(env: &AppEnv, mode: SpanMode) -> Rep {
    let proxy = proxy_for(env, mode.config());
    let app = env.sim.app();
    let drive = |timed: &mut Option<Vec<f64>>| {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let session = proxy.begin_session(req.session.clone());
            let t0 = Instant::now();
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let _ = run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                Limits::default(),
            );
            if let Some(samples) = timed {
                samples.push(t0.elapsed().as_secs_f64() * 1e6);
            }
            proxy.end_session(session);
        }
    };

    for _ in 0..WARMUP_ROUNDS {
        drive(&mut None);
    }
    let mut samples = Some(Vec::with_capacity(env.requests.len() * MEASURED_ROUNDS));
    let wall = Instant::now();
    for _ in 0..MEASURED_ROUNDS {
        drive(&mut samples);
    }
    let wall_s = wall.elapsed().as_secs_f64();

    let mut samples = samples.unwrap();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = proxy.stats();
    let events = proxy.journal().events_since(0, usize::MAX);
    Rep {
        p50_us: percentile(&samples, 50.0),
        p95_us: percentile(&samples, 95.0),
        p99_us: percentile(&samples, 99.0),
        ops: samples.len(),
        wall_s,
        allowed: stats.allowed,
        blocked: stats.blocked,
        spanned_events: events.iter().filter(|e| e.span.spans >= 1).count(),
        journal_events: events.len(),
        exemplars: proxy.exemplars().count(),
    }
}

/// Runs `reps` repetitions of one (app, mode) point and reduces them to
/// the median of each percentile.
fn run_mode(sim: &'static SimApp, env: &AppEnv, mode: SpanMode, reps: usize) -> ModeResult {
    let reps: Vec<Rep> = (0..reps).map(|_| run_once(env, mode)).collect();
    let first = &reps[0];
    for r in &reps {
        assert_eq!(
            (r.allowed, r.blocked),
            (first.allowed, first.blocked),
            "repetitions of a deterministic workload must decide identically"
        );
    }
    let mut p50s: Vec<f64> = reps.iter().map(|r| r.p50_us).collect();
    let mut p95s: Vec<f64> = reps.iter().map(|r| r.p95_us).collect();
    let mut p99s: Vec<f64> = reps.iter().map(|r| r.p99_us).collect();
    let wall_s: f64 = reps.iter().map(|r| r.wall_s).sum();
    let ops: usize = reps.iter().map(|r| r.ops).sum();
    ModeResult {
        app: sim.name,
        mode,
        ops,
        throughput: ops as f64 / wall_s,
        p50_us: median(&mut p50s),
        p95_us: median(&mut p95s),
        p99_us: median(&mut p99s),
        allowed: first.allowed,
        blocked: first.blocked,
        spanned_events: first.spanned_events,
        journal_events: first.journal_events,
        exemplars: first.exemplars,
    }
}

// ---------------------------------------------------------------- memory

/// What the social-app soak reports.
struct MemReport {
    app: String,
    users: u64,
    rows: usize,
    populate_s: f64,
    ops: usize,
    wall_s: f64,
    sessions: u64,
    live_at_peak: usize,
    exemplars: usize,
    /// Component heap bytes sampled at peak (live sessions still open).
    components: [(&'static str, usize); 4],
    /// Per-session state size distribution; `_ns` fields read as bytes.
    state_size: LatencySnapshot,
}

/// Populates the fleet's social app and soaks it with Zipf traffic
/// in-process, spans and exemplars on; samples the component gauges at
/// peak, then drains every session into the state-size histogram.
fn memory_soak(users: u64, ops: usize) -> MemReport {
    let app = fleet(FLEET_SEED, users)
        .into_iter()
        .next()
        .expect("fleet has apps");
    assert_eq!(app.name, "social", "the soak targets the social graph");
    let mut db = app.empty_db();
    let t0 = Instant::now();
    let rows = app.populate(&mut db).expect("populate");
    let populate_s = t0.elapsed().as_secs_f64();
    let proxy = SqlProxy::new(
        db,
        ComplianceChecker::new(app.schema(), app.policy().expect("policy")),
        ProxyConfig {
            spans: true,
            span_sample_every: SAMPLE_EVERY,
            exemplars_per_template: 4,
            ..ProxyConfig::default()
        },
    );
    let parsed = app.app();
    let cfg = TrafficConfig::default();
    let mut engine = TrafficEngine::new(&app, cfg.clone(), derive(app.seed, 0xD14));
    let mut sessions: Vec<Option<u64>> = vec![None; cfg.target_sessions];
    let mut decision_errors = 0u64;
    let t0 = Instant::now();
    for _ in 0..ops {
        match engine.next_op() {
            TrafficOp::Begin { slot, uid, .. } => {
                sessions[slot] = Some(proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]));
            }
            TrafficOp::End { slot } => {
                proxy.end_session(sessions[slot].take().expect("live session"));
            }
            TrafficOp::RawProbe { slot, sql } | TrafficOp::RawWriteProbe { slot, sql } => {
                let session = sessions[slot].expect("live session");
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session,
                };
                match port.run(&sql, &[]) {
                    Ok(PortOutcome::Blocked(_)) => {}
                    // A raw probe that is not blocked is a decision
                    // error, full stop.
                    _ => decision_errors += 1,
                }
            }
            TrafficOp::Request { slot, request, .. } => {
                let session = sessions[slot].expect("live session");
                let handler = parsed.handler(&request.handler).expect("handler");
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session,
                };
                match run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                ) {
                    Ok(r) => {
                        if matches!(r.outcome, Outcome::Blocked { .. }) {
                            decision_errors += 1;
                        }
                    }
                    Err(_) => decision_errors += 1,
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(decision_errors, 0, "decision errors in the memory soak");

    // Peak: sample the byte-accurate gauges while sessions are live.
    let components = proxy.component_heap_bytes();
    let live_at_peak = proxy.session_count();
    let exemplars = proxy.exemplars().count();

    // Drain: every live session's final state size lands in the
    // histogram, so the distribution covers *all* begun sessions.
    proxy.end_sessions(sessions.iter_mut().filter_map(Option::take));
    let state_size = proxy.session_state_size_snapshot();
    assert_eq!(
        state_size.count,
        engine.sessions_begun(),
        "every begun session must appear in the state-size distribution"
    );

    MemReport {
        app: app.name.clone(),
        users,
        rows,
        populate_s,
        ops,
        wall_s,
        sessions: engine.sessions_begun(),
        live_at_peak,
        exemplars,
        components,
        state_size,
    }
}

// ------------------------------------------------------------------ main

fn json_of(results: &[ModeResult], overheads: &[(String, f64)], mem: &MemReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t14_introspect\",\n");
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS_FULL},\n"));
    out.push_str(&format!("  \"reps\": {REPS_FULL},\n"));
    out.push_str(&format!("  \"measured_rounds\": {MEASURED_ROUNDS},\n"));
    out.push_str(&format!("  \"sample_every\": {SAMPLE_EVERY},\n"));
    out.push_str(&format!("  \"max_overhead\": {MAX_OVERHEAD_FULL},\n"));
    out.push_str("  \"p50_overhead\": {");
    for (i, (key, o)) in overheads.iter().enumerate() {
        out.push_str(&format!(
            "\"{key}\": {:.4}{}",
            o,
            if i + 1 == overheads.len() { "" } else { ", " }
        ));
    }
    out.push_str("},\n");
    out.push_str("  \"latency\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"spans\": \"{}\", \"ops\": {}, \
             \"throughput_ops_s\": {:.1}, \"p50_us\": {:.2}, \"p95_us\": {:.2}, \
             \"p99_us\": {:.2}, \"allowed\": {}, \"blocked\": {}, \
             \"spanned_events\": {}, \"journal_events\": {}, \"exemplars\": {}}}{}\n",
            r.app,
            r.mode.label(),
            r.ops,
            r.throughput,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.allowed,
            r.blocked,
            r.spanned_events,
            r.journal_events,
            r.exemplars,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"memory\": {\n");
    out.push_str(&format!(
        "    \"app\": \"{}\", \"users\": {}, \"rows\": {}, \"populate_s\": {:.2},\n",
        mem.app, mem.users, mem.rows, mem.populate_s
    ));
    out.push_str(&format!(
        "    \"ops\": {}, \"wall_s\": {:.2}, \"sessions\": {}, \"live_at_peak\": {}, \
         \"exemplars\": {},\n",
        mem.ops, mem.wall_s, mem.sessions, mem.live_at_peak, mem.exemplars
    ));
    out.push_str("    \"component_bytes\": {");
    for (i, (c, b)) in mem.components.iter().enumerate() {
        out.push_str(&format!(
            "\"{c}\": {b}{}",
            if i + 1 == mem.components.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "    \"session_state_bytes\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \
         \"p99\": {}, \"max\": {}}}\n",
        mem.state_size.count,
        mem.state_size.mean_ns(),
        mem.state_size.p50_ns,
        mem.state_size.p99_ns,
        mem.state_size.max_ns
    ));
    out.push_str("  }\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n_requests, reps, max_overhead) = if smoke {
        (N_REQUESTS_SMOKE, REPS_SMOKE, MAX_OVERHEAD_SMOKE)
    } else {
        (N_REQUESTS_FULL, REPS_FULL, MAX_OVERHEAD_FULL)
    };

    // Phase 1: span overhead.
    let widths = [9usize, 10, 8, 11, 9, 9, 9, 7, 7, 10];
    header(
        &[
            "app",
            "spans",
            "ops",
            "ops/s",
            "p50-us",
            "p95-us",
            "p99-us",
            "ok",
            "denied",
            "exemplars",
        ],
        &widths,
    );
    let mut results: Vec<ModeResult> = Vec::new();
    let mut overheads: Vec<(String, f64)> = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), n_requests);
        let mut by_mode = [0.0f64; 3];
        for (i, mode) in SpanMode::ALL.into_iter().enumerate() {
            let r = run_mode(sim, &env, mode, reps);
            by_mode[i] = r.p50_us;
            row(
                &[
                    r.app.to_string(),
                    r.mode.label().to_string(),
                    r.ops.to_string(),
                    f2(r.throughput),
                    f2(r.p50_us),
                    f2(r.p95_us),
                    f2(r.p99_us),
                    r.allowed.to_string(),
                    r.blocked.to_string(),
                    r.exemplars.to_string(),
                ],
                &widths,
            );
            // The bound must not pass vacuously: instrumented modes carry
            // a span summary on every journal event, baseline on none.
            if mode == SpanMode::Off {
                assert_eq!(r.spanned_events, 0, "{}: spans off must stay off", sim.name);
            } else {
                assert!(
                    r.journal_events > 0 && r.spanned_events == r.journal_events,
                    "{}: {} of {} events carry spans in mode {}",
                    sim.name,
                    r.spanned_events,
                    r.journal_events,
                    r.mode.label()
                );
            }
            results.push(r);
        }
        // Introspection must never change answers.
        let base = &results[results.len() - 3];
        for r in &results[results.len() - 2..] {
            assert_eq!(
                (base.allowed, base.blocked),
                (r.allowed, r.blocked),
                "{}: span mode {} changed decisions",
                sim.name,
                r.mode.label()
            );
        }
        for (i, mode) in [SpanMode::Summaries, SpanMode::Sampled]
            .into_iter()
            .enumerate()
        {
            let overhead = by_mode[i + 1] / by_mode[0] - 1.0;
            println!(
                "  {}: {} p50 overhead {:+.1}% (bound {:.0}%)",
                sim.name,
                mode.label(),
                overhead * 100.0,
                max_overhead * 100.0
            );
            overheads.push((format!("{}/{}", sim.name, mode.label()), overhead));
        }
        println!();
    }
    // The acceptance gate prices the calendar workload.
    for (key, o) in &overheads {
        if key.starts_with("calendar/") {
            assert!(
                *o < max_overhead,
                "{key} p50 overhead {:.1}% exceeds the {:.0}% bound",
                o * 100.0,
                max_overhead * 100.0
            );
        }
    }

    // Phase 2: the memory soak.
    let (users, ops) = if smoke {
        (USERS_SMOKE, SOAK_OPS_SMOKE)
    } else {
        (USERS_FULL, SOAK_OPS_FULL)
    };
    let mem = memory_soak(users, ops);
    println!(
        "memory soak: {} at {} users ({} rows, populated in {:.2}s), {} ops in {:.2}s, \
         {} sessions ({} live at peak), {} exemplars",
        mem.app,
        mem.users,
        mem.rows,
        mem.populate_s,
        mem.ops,
        mem.wall_s,
        mem.sessions,
        mem.live_at_peak,
        mem.exemplars
    );
    let mwidths = [15usize, 12];
    header(&["component", "bytes"], &mwidths);
    for (c, b) in &mem.components {
        row(&[c.to_string(), b.to_string()], &mwidths);
    }
    println!(
        "session state bytes: count={} mean={} p50={} p99={} max={}",
        mem.state_size.count,
        mem.state_size.mean_ns(),
        mem.state_size.p50_ns,
        mem.state_size.p99_ns,
        mem.state_size.max_ns
    );

    if smoke {
        println!("\nsmoke: overhead bounded, memory accounting complete");
        return;
    }

    let json = json_of(&results, &overheads, &mem);
    std::fs::write("BENCH_t14.json", &json).expect("write BENCH_t14.json");
    println!("\nwrote BENCH_t14.json ({} latency points)", results.len());

    println!();
    println!("Shape claims:");
    println!("  - span summaries never change answers: allowed/blocked identical");
    println!("    across off/summaries/sampled (asserted per app);");
    println!(
        "  - the calendar p50 overhead of always-on summaries stays under {:.0}%",
        MAX_OVERHEAD_FULL * 100.0
    );
    println!("    (asserted): per-span counters are two thread-local adds, and the");
    println!("    summary is twelve words copied onto an event already being built;");
    println!("  - sampled full-tree capture (every {SAMPLE_EVERY}th decision) stays off the");
    println!("    common path, so its p50 is held to the same bound;");
    println!("  - memory accounting loses nobody: every begun session appears in the");
    println!("    state-size distribution exactly once (asserted), and component");
    println!("    bytes are measured from owned capacities, not estimates.");
}
