//! T10 — Compiled template plans: what parse/translate/rewrite
//! amortization buys on the decision hot path.
//!
//! Sweeps the calendar and forum workloads through three configurations
//! at 1/2/4/8 worker threads:
//!
//! * `full` — every tier on (plans + template + session verdict caches);
//! * `no-caches` — verdict caches off, plan cache on: every request runs
//!   a fresh concrete proof, but parse, translation, and candidate-view
//!   pruning come from the compiled plan;
//! * `no-plans` — everything from scratch per request, the pre-plan
//!   baseline. `no-caches` vs `no-plans` isolates the plan contribution
//!   on the path where the proof itself cannot be skipped.
//!
//! Before the sweep, a differential pass replays the whole workload
//! request by request through a planned and an unplanned proxy and
//! asserts the complete run records (outcomes, emitted rows, issued
//! queries) are identical — plans are amortization, never a behaviour
//! change. `--smoke` runs only this pass on a reduced workload, as a CI
//! gate.
//!
//! Results are written to `BENCH_t10.json`.
//!
//! Run: `cargo run -p bep-bench --bin t10_plans --release`

use std::time::Instant;

use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, salted_params, AppEnv};
use bep_core::ProxyConfig;

/// Rounds each worker replays its share of the workload.
const ROUNDS: usize = 6;
/// Replicas per sweep cell; the best replica is reported. Each drive is
/// tens of milliseconds, so on a shared single-core host scheduler steal
/// can only slow a replica down — a best-of estimator recovers the
/// machine's actual capability instead of a noise draw.
const REPLICAS: usize = 3;
/// Requests drawn per app.
const N_REQUESTS: usize = 120;
/// Requests drawn per app under `--smoke`.
const SMOKE_REQUESTS: usize = 24;
/// Worker-thread counts swept.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn configs() -> [(&'static str, ProxyConfig); 3] {
    [
        ("full", ProxyConfig::default()),
        (
            "no-caches",
            ProxyConfig {
                template_cache: false,
                session_cache: false,
                ..Default::default()
            },
        ),
        (
            "no-plans",
            ProxyConfig {
                template_cache: false,
                session_cache: false,
                plan_cache: false,
                ..Default::default()
            },
        ),
    ]
}

struct Measurement {
    app: &'static str,
    config: &'static str,
    threads: usize,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    allowed: u64,
    blocked: u64,
    errors: usize,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Replays every request of `env` (two rounds: plan-cold, then plan-warm)
/// through each planned configuration and the unplanned baseline,
/// asserting the complete run records match request by request. Returns
/// the number of comparisons made.
fn differential(env: &AppEnv) -> usize {
    let [(_, full), (_, no_caches), (_, no_plans)] = configs();
    let planned_full = proxy_for(env, full);
    let planned_lean = proxy_for(env, no_caches);
    let naive = proxy_for(env, no_plans);
    let app = env.sim.app();
    let mut compared = 0usize;
    for round in 0..2 {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let params = salted_params(&req.params, round);
            let run = |proxy: &bep_core::SqlProxy| {
                let session = proxy.begin_session(req.session.clone());
                let mut port = ProxyPort { proxy, session };
                let r = appdsl::run_handler(
                    &mut port,
                    handler,
                    &req.session,
                    &params,
                    appdsl::Limits::default(),
                );
                proxy.end_session(session);
                format!("{r:?}")
            };
            let want = run(&naive);
            for (label, proxy) in [("full", &planned_full), ("no-caches", &planned_lean)] {
                let got = run(proxy);
                assert_eq!(
                    got, want,
                    "planned ({label}) diverged from unplanned on {} round {round}",
                    req.handler
                );
                compared += 1;
            }
        }
    }
    compared
}

/// Drives `env`'s workload through a fresh proxy with `m` closed-loop
/// workers and returns the measurement (same harness shape as T7).
fn drive(
    sim: &'static SimApp,
    env: &AppEnv,
    config_label: &'static str,
    config: ProxyConfig,
    m: usize,
) -> Measurement {
    let proxy = proxy_for(env, config);
    let app = env.sim.app();
    let start = Instant::now();
    let per_worker: Vec<(Vec<f64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|worker| {
                let proxy = &proxy;
                let app = &app;
                let requests = &env.requests;
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(ROUNDS * requests.len() / m + 1);
                    let mut errors = 0usize;
                    for round in 0..ROUNDS {
                        for req in requests.iter().skip(worker).step_by(m) {
                            let handler = app.handler(&req.handler).expect("handler");
                            let params = salted_params(&req.params, round);
                            let t0 = Instant::now();
                            let session = proxy.begin_session(req.session.clone());
                            let mut port = ProxyPort { proxy, session };
                            if appdsl::run_handler(
                                &mut port,
                                handler,
                                &req.session,
                                &params,
                                appdsl::Limits::default(),
                            )
                            .is_err()
                            {
                                errors += 1;
                            }
                            proxy.end_session(session);
                            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    (latencies, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();
    let errors: usize = per_worker.iter().map(|(_, e)| e).sum();
    let mut all_latencies: Vec<f64> = per_worker.into_iter().flat_map(|(l, _)| l).collect();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = proxy.stats();
    Measurement {
        app: sim.name,
        config: config_label,
        threads: m,
        ops: all_latencies.len(),
        wall_s,
        throughput: all_latencies.len() as f64 / wall_s,
        p50_us: percentile(&all_latencies, 50.0),
        p99_us: percentile(&all_latencies, 99.0),
        allowed: stats.allowed,
        blocked: stats.blocked,
        errors,
    }
}

fn json_of(results: &[Measurement], cores: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t10_plans\",\n");
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"replicas_best_of\": {REPLICAS},\n"));
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS},\n"));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"config\": \"{}\", \"threads\": {}, \"ops\": {}, \
             \"wall_s\": {:.4}, \"throughput_ops_s\": {:.1}, \"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"allowed\": {}, \"blocked\": {}, \"errors\": {}}}{}\n",
            r.app,
            r.config,
            r.threads,
            r.ops,
            r.wall_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.allowed,
            r.blocked,
            r.errors,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_requests = if smoke { SMOKE_REQUESTS } else { N_REQUESTS };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    println!();

    // Differential gate first: plans must be decision- and row-identical
    // to the unplanned path on the exact workload about to be measured.
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), n_requests);
        let compared = differential(&env);
        println!(
            "differential [{}]: {} planned runs identical to unplanned",
            sim.name, compared
        );
    }
    println!();
    if smoke {
        println!("smoke mode: differential gate passed, skipping the sweep");
        return;
    }

    let widths = [9usize, 11, 7, 7, 11, 9, 9, 7, 7, 7];
    header(
        &[
            "app", "config", "threads", "ops", "ops/s", "p50-us", "p99-us", "ok", "denied",
            "errors",
        ],
        &widths,
    );

    let mut results: Vec<Measurement> = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), n_requests);
        for (label, config) in configs() {
            for m in THREADS {
                let r = (0..REPLICAS)
                    .map(|_| {
                        let r = drive(sim, &env, label, config, m);
                        assert_eq!(
                            r.errors, 0,
                            "{} {} x{}: replayed requests must not abort",
                            r.app, r.config, r.threads
                        );
                        r
                    })
                    .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
                    .expect("at least one replica");
                row(
                    &[
                        r.app.to_string(),
                        r.config.to_string(),
                        r.threads.to_string(),
                        r.ops.to_string(),
                        f2(r.throughput),
                        f2(r.p50_us),
                        f2(r.p99_us),
                        r.allowed.to_string(),
                        r.blocked.to_string(),
                        r.errors.to_string(),
                    ],
                    &widths,
                );
                results.push(r);
            }
        }
        println!();
    }

    let json = json_of(&results, cores);
    std::fs::write("BENCH_t10.json", &json).expect("write BENCH_t10.json");
    println!("wrote BENCH_t10.json ({} measurements)", results.len());

    println!();
    println!("Plan speedup on the no-verdict-cache path (1 thread):");
    for sim in [&CALENDAR, &FORUM] {
        let tput = |config: &str| {
            results
                .iter()
                .find(|r| r.app == sim.name && r.config == config && r.threads == 1)
                .map(|r| r.throughput)
                .unwrap_or(0.0)
        };
        let (with, without) = (tput("no-caches"), tput("no-plans"));
        println!(
            "  {}: {} ops/s with plans vs {} without -> {:.2}x",
            sim.name,
            f2(with),
            f2(without),
            with / without.max(1e-9),
        );
    }
    println!();
    println!("Shape claims:");
    println!("  - the differential gate passed: planned and unplanned runs are");
    println!("    bit-identical on every request, cold and warm;");
    println!("  - 'no-caches' beats 'no-plans' at every thread count: amortizing");
    println!("    parse/translate/prune pays even when every proof still runs;");
    println!("  - 'full' sits on top: verdict caches stack on plan reuse.");
}
