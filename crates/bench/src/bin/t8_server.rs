//! T8 — Networked enforcement throughput: a closed-loop multi-client
//! driver over the calendar and forum workloads against a **live**
//! `bep-server`, the network-path counterpart of T7's in-process sweep.
//!
//! Each sweep point starts a fresh server and `m` closed-loop clients. A
//! client connects **once**, begins one session per request in its
//! disjoint round-robin share of the workload, and then replays its share
//! for every round *reusing those sessions* — the steady-state numbers
//! measure the enforcement path, not TCP establishment and handshakes.
//! Connection setup (connect + `hello` + the `begin`s) is timed
//! separately and reported as its own percentiles, so the one-time cost
//! stays visible instead of polluting the request latencies.
//!
//! Decision fidelity is asserted, not assumed: each (app, clients) point
//! must reproduce the in-process proxy's exact allowed/blocked totals on
//! the same workload seed under the same session-reuse schedule, and a
//! deterministic overload probe against a blocking-mode server must
//! receive a typed `busy` (never a hang) carrying the pool's queue depth
//! and worker count.
//!
//! Results go to `BENCH_t8.json`, recording host parallelism — on a
//! 1-core host the sweep measures protocol and scheduling overhead, not
//! parallel speedup (same caveat as T7).
//!
//! Run: `cargo run -p bep-bench --bin t8_server --release`

use std::sync::Arc;
use std::time::{Duration, Instant};

use appdsl::{DslError, PortOutcome, QueryPort};
use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, f2, header, proxy_for, row, AppEnv};
use bep_core::{ProxyConfig, SqlProxy};
use bep_server::{Client, ClientError, ExecOutcome, Server, ServerConfig, ServerMode};
use sqlir::Value;

/// Rounds each client replays its share of the workload.
const ROUNDS: usize = 2;
/// Requests drawn per app.
const N_REQUESTS: usize = 120;
/// Client counts swept.
const CLIENTS: [usize; 4] = [1, 2, 4, 8];
/// Worker pool of the blocking-mode overload probe.
const PROBE_WORKERS: usize = 1;
/// Per-operation client I/O timeout.
const IO: Duration = Duration::from_secs(30);

/// Runs handler queries through the wire protocol.
struct ClientPort<'a> {
    client: &'a mut Client,
    session: u64,
}

impl QueryPort for ClientPort<'_> {
    fn run(&mut self, sql: &str, bindings: &[(String, Value)]) -> Result<PortOutcome, DslError> {
        match self.client.execute(self.session, sql, bindings) {
            Ok(ExecOutcome::Rows(rows)) => Ok(PortOutcome::Rows(rows)),
            Ok(ExecOutcome::Affected(n)) => Ok(PortOutcome::Affected(n as usize)),
            Ok(ExecOutcome::Blocked { reason, detail }) => {
                Ok(PortOutcome::Blocked(format!("{reason}: {detail}")))
            }
            Err(e) => Err(DslError::Port(e.to_string())),
        }
    }
}

/// Connects with busy-aware retry; returns the client and how many `busy`
/// rejections were eaten on the way in.
fn connect_with_retry(addr: std::net::SocketAddr) -> (Client, u64) {
    let mut busy = 0u64;
    let mut backoff_us = 200u64;
    loop {
        match Client::connect(addr, IO) {
            Ok(c) => return (c, busy),
            Err(ClientError::Busy { .. }) => {
                busy += 1;
                std::thread::sleep(Duration::from_micros(backoff_us));
                backoff_us = (backoff_us * 2).min(5_000);
            }
            Err(e) => panic!("connect failed hard: {e}"),
        }
    }
}

struct Measurement {
    app: &'static str,
    clients: usize,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    connect_p50_us: f64,
    connect_p99_us: f64,
    allowed: u64,
    blocked: u64,
    errors: usize,
    busy_rejections: u64,
    server_p50_us: f64,
    server_p99_us: f64,
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted_us.len() - 1) as f64).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// The in-process ground truth: the same workload through `ProxyPort`
/// under the same session-reuse schedule (one session per request, held
/// across rounds), returning (allowed, blocked).
fn in_process_decisions(env: &AppEnv) -> (u64, u64) {
    let proxy = proxy_for(env, ProxyConfig::default());
    let app = env.sim.app();
    let sessions: Vec<u64> = env
        .requests
        .iter()
        .map(|req| proxy.begin_session(req.session.clone()))
        .collect();
    for _ in 0..ROUNDS {
        for (req, &session) in env.requests.iter().zip(&sessions) {
            let handler = app.handler(&req.handler).expect("handler");
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let _ = appdsl::run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                appdsl::Limits::default(),
            );
        }
    }
    for session in sessions {
        proxy.end_session(session);
    }
    let stats = proxy.stats();
    (stats.allowed, stats.blocked)
}

/// Drives `env`'s workload through a live server with `m` closed-loop
/// clients holding persistent connections.
fn drive(sim: &'static SimApp, env: &AppEnv, m: usize) -> Measurement {
    let proxy: Arc<SqlProxy> = Arc::new(proxy_for(env, ProxyConfig::default()));
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("start server");
    let addr = server.addr();
    let app = env.sim.app();

    let start = Instant::now();
    type ClientResult = (Vec<f64>, f64, usize, u64);
    let per_client: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..m)
            .map(|worker| {
                let app = &app;
                let requests = &env.requests;
                scope.spawn(move || {
                    // Connection setup, timed apart from the request loop:
                    // one connect + hello, then one `begin` per owned
                    // request. Sessions persist across every round.
                    let t_setup = Instant::now();
                    let (mut client, busy) = connect_with_retry(addr);
                    let owned: Vec<(usize, u64)> = requests
                        .iter()
                        .enumerate()
                        .skip(worker)
                        .step_by(m)
                        .map(|(i, req)| (i, client.begin(req.session.clone()).expect("begin")))
                        .collect();
                    let connect_us = t_setup.elapsed().as_secs_f64() * 1e6;

                    let mut latencies = Vec::new();
                    let mut errors = 0usize;
                    for _ in 0..ROUNDS {
                        for &(i, session) in &owned {
                            let req = &requests[i];
                            let handler = app.handler(&req.handler).expect("handler");
                            let t0 = Instant::now();
                            let mut port = ClientPort {
                                client: &mut client,
                                session,
                            };
                            if appdsl::run_handler(
                                &mut port,
                                handler,
                                &req.session,
                                &req.params,
                                appdsl::Limits::default(),
                            )
                            .is_err()
                            {
                                errors += 1;
                            }
                            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
                        }
                    }
                    for &(_, session) in &owned {
                        client.end(session).expect("end");
                    }
                    drop(client);
                    (latencies, connect_us, errors, busy)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = start.elapsed().as_secs_f64();

    let stats = proxy.stats();
    let busy_rejections: u64 = per_client.iter().map(|(_, _, _, b)| b).sum();
    let errors: usize = per_client.iter().map(|(_, _, e, _)| e).sum();
    let mut connect_us: Vec<f64> = per_client.iter().map(|(_, c, _, _)| *c).collect();
    connect_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut all_latencies: Vec<f64> = per_client.into_iter().flat_map(|(l, _, _, _)| l).collect();
    all_latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    assert_eq!(
        server.busy_rejections(),
        busy_rejections,
        "server-side and client-side busy counts agree"
    );
    server.shutdown();

    Measurement {
        app: sim.name,
        clients: m,
        ops: all_latencies.len(),
        wall_s,
        throughput: all_latencies.len() as f64 / wall_s,
        p50_us: percentile(&all_latencies, 50.0),
        p99_us: percentile(&all_latencies, 99.0),
        connect_p50_us: percentile(&connect_us, 50.0),
        connect_p99_us: percentile(&connect_us, 99.0),
        allowed: stats.allowed,
        blocked: stats.blocked,
        errors,
        busy_rejections,
        server_p50_us: stats.latency.p50_us(),
        server_p99_us: stats.latency.p99_us(),
    }
}

/// Deterministic overload probe: a blocking-mode server with one worker
/// and no backlog, its only worker held mid-session — the next connection
/// must receive a typed `busy` promptly (never a hang) and the payload
/// must carry the pool's load snapshot.
fn probe_busy_response() -> bool {
    let env = app_env(&CALENDAR, 17, Scale::small(), 1);
    let proxy = Arc::new(proxy_for(&env, ProxyConfig::default()));
    let config = ServerConfig {
        mode: ServerMode::Blocking,
        workers: PROBE_WORKERS,
        queue_capacity: 0,
        ..Default::default()
    };
    let server = Server::start(proxy, config, "127.0.0.1:0").expect("start probe server");
    let mut holder = Client::connect(server.addr(), IO).expect("holder connects");
    let _session = holder
        .begin(vec![("MyUId".into(), Value::Int(appsim::FIRST_UID))])
        .expect("holder begins");

    let t0 = Instant::now();
    let got_busy = match Client::connect(server.addr(), IO) {
        Err(ClientError::Busy {
            queue_depth,
            workers,
        }) => {
            assert_eq!(
                (queue_depth, workers),
                (0, PROBE_WORKERS as u64),
                "busy payload carries the pool's load snapshot"
            );
            true
        }
        _ => false,
    };
    let fast = t0.elapsed() < Duration::from_secs(5);
    server.shutdown();
    got_busy && fast
}

fn json_of(results: &[Measurement], cores: usize, busy_probe_ok: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t8_server\",\n");
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    out.push_str(&format!("  \"rounds\": {ROUNDS},\n"));
    out.push_str(&format!("  \"requests_per_app\": {N_REQUESTS},\n"));
    out.push_str("  \"server_mode\": \"event-driven\",\n");
    out.push_str("  \"session_reuse\": true,\n");
    out.push_str(&format!(
        "  \"busy_probe_typed_rejection\": {busy_probe_ok},\n"
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"clients\": {}, \"ops\": {}, \"wall_s\": {:.4}, \
             \"throughput_ops_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"connect_p50_us\": {:.1}, \"connect_p99_us\": {:.1}, \
             \"server_p50_us\": {:.1}, \"server_p99_us\": {:.1}, \"allowed\": {}, \
             \"blocked\": {}, \"errors\": {}, \"busy_rejections\": {}}}{}\n",
            r.app,
            r.clients,
            r.ops,
            r.wall_s,
            r.throughput,
            r.p50_us,
            r.p99_us,
            r.connect_p50_us,
            r.connect_p99_us,
            r.server_p50_us,
            r.server_p99_us,
            r.allowed,
            r.blocked,
            r.errors,
            r.busy_rejections,
            if i + 1 == results.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s)");
    if cores < CLIENTS[CLIENTS.len() - 1] {
        println!(
            "note: fewer cores than the widest sweep point; beyond {cores} client(s) the \
             numbers measure protocol/scheduler overhead, not parallel speedup"
        );
    }

    println!("overload probe: blocking mode, 1 worker, no backlog, held mid-session...");
    let busy_probe_ok = probe_busy_response();
    assert!(
        busy_probe_ok,
        "a saturated server must answer `busy` promptly, never hang"
    );
    println!("overload probe: typed busy (with load snapshot) received promptly\n");

    let widths = [9usize, 8, 7, 11, 9, 9, 10, 10, 9, 9, 7, 7, 7];
    header(
        &[
            "app", "clients", "ops", "ops/s", "p50-us", "p99-us", "conn-p50", "conn-p99", "sv-p50",
            "sv-p99", "ok", "denied", "errors",
        ],
        &widths,
    );

    let mut results: Vec<Measurement> = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), N_REQUESTS);
        let (base_allowed, base_blocked) = in_process_decisions(&env);
        for m in CLIENTS {
            let r = drive(sim, &env, m);
            assert_eq!(
                (r.allowed, r.blocked),
                (base_allowed, base_blocked),
                "{} @ {} clients: networked decisions must match the \
                 in-process proxy on the same workload seed",
                sim.name,
                m
            );
            row(
                &[
                    r.app.to_string(),
                    r.clients.to_string(),
                    r.ops.to_string(),
                    f2(r.throughput),
                    f2(r.p50_us),
                    f2(r.p99_us),
                    f2(r.connect_p50_us),
                    f2(r.connect_p99_us),
                    f2(r.server_p50_us),
                    f2(r.server_p99_us),
                    r.allowed.to_string(),
                    r.blocked.to_string(),
                    r.errors.to_string(),
                ],
                &widths,
            );
            results.push(r);
        }
        println!();
    }

    let json = json_of(&results, cores, busy_probe_ok);
    std::fs::write("BENCH_t8.json", &json).expect("write BENCH_t8.json");
    println!("wrote BENCH_t8.json ({} measurements)", results.len());

    println!();
    println!("Shape claims:");
    println!("  - decisions are identical at every client count AND identical to the");
    println!("    in-process proxy (asserted above): the network layer changes cost,");
    println!("    never answers;");
    println!("  - a saturated server answers with a typed `busy` carrying its load");
    println!("    snapshot, never a hang (asserted by the overload probe);");
    println!("  - connection setup (connect + hello + begins) is a one-time cost an");
    println!("    order above the steady-state request latency — which is why the");
    println!("    clients hold their connections instead of redialing per request.");
}
