//! T11 — Interned-kernel microbenchmark: what symbol interning, copy-sized
//! terms, slot-compiled substitutions, and per-relation atom indexing buy
//! on the homomorphism/containment hot path.
//!
//! The baseline is not a flag on the current code — it is the
//! *pre-refactor kernel itself*, embedded below as `mod legacy`: heap
//! `String` symbols, clone-heavy `Term`s, a `BTreeMap<String, Term>`
//! substitution, and a linear scan over all target atoms per search step,
//! transcribed from the tree before the interning refactor. Running both
//! kernels on identical problems gives an honest before/after and a live
//! differential oracle: every verdict (homomorphism found / containment
//! holds) must agree between the two, and the run aborts on any mismatch.
//!
//! Kernels measured (single-threaded):
//!
//! * `hom` — homomorphism search of a chain join into random edge sets;
//! * `containment` — canonical-database CQ containment over random
//!   comparison-free queries (the fragment where both kernels are
//!   complete and must agree exactly);
//! * `prune` — hom search into a target spread across many relations,
//!   isolating the per-relation atom index against the legacy full scan;
//! * `decision` — the end-to-end calendar + forum decision path through
//!   the enforcement proxy (interned kernel only; absolute throughput).
//!
//! Before any timing, a workload-replay differential gate drives the
//! complete calendar and forum workloads through planned and unplanned
//! proxies and asserts the run records are bit-identical, and the kernel
//! oracle suite replays every benchmark problem through both kernels.
//! `--smoke` runs only these gates, as a CI step.
//!
//! Results are written to `BENCH_t11.json`.
//!
//! Run: `cargo run -p bep-bench --bin t11_kernel --release`

use std::time::Instant;

use appsim::{ProxyPort, Scale, SimApp, CALENDAR, FORUM};
use bep_bench::{app_env, proxy_for, salted_params, AppEnv};
use bep_core::ProxyConfig;
use qlogic::homomorphism::{find_homomorphisms, HomProblem};
use qlogic::CmpContext;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Best-of replicas per timed kernel (scheduler steal only slows a run).
const REPLICAS: usize = 3;
/// Problems per kernel (full run).
const PROBLEMS: usize = 60;
/// Problems per kernel under `--smoke`.
const SMOKE_PROBLEMS: usize = 12;
/// Requests drawn per app for the decision path.
const N_REQUESTS: usize = 120;
/// Requests drawn per app under `--smoke`.
const SMOKE_REQUESTS: usize = 24;
/// Homomorphisms enumerated per hom-search problem (the instance-eval and
/// rewriting paths enumerate, not just decide).
const HOM_LIMIT: usize = 512;

/// The pre-refactor relational-logic kernel, transcribed from the tree
/// before symbol interning: `String` symbols, cloning `Term`s, a
/// `BTreeMap` substitution, and a full target scan per search depth.
mod legacy {
    use std::collections::BTreeMap;

    use sqlir::Value;

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    pub enum Term {
        Var(String),
        Const(Value),
    }

    impl Term {
        pub fn is_rigid(&self) -> bool {
            matches!(self, Term::Const(_))
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Atom {
        pub relation: String,
        pub args: Vec<Term>,
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Cq {
        pub head: Vec<Term>,
        pub atoms: Vec<Atom>,
    }

    pub type Subst = BTreeMap<String, Term>;

    /// Finds one homomorphism, if any (comparison-free fragment: terms
    /// match only when syntactically equal, exactly what the old kernel
    /// did under an empty comparison context).
    pub fn find_homomorphism(
        source_atoms: &[Atom],
        target_atoms: &[Atom],
        initial: Subst,
    ) -> Option<Subst> {
        let mut found = None;
        search(source_atoms, target_atoms, initial, &mut |s| {
            found = Some(s.clone());
            true // stop
        });
        found
    }

    /// Finds up to `limit` homomorphisms, cloning the substitution per
    /// emission exactly as the pre-refactor `find_homomorphisms` did.
    pub fn find_homomorphisms(
        source_atoms: &[Atom],
        target_atoms: &[Atom],
        initial: Subst,
        limit: usize,
    ) -> Vec<Subst> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        search(source_atoms, target_atoms, initial, &mut |s| {
            out.push(s.clone());
            out.len() >= limit
        });
        out
    }

    fn search(
        source_atoms: &[Atom],
        target_atoms: &[Atom],
        initial: Subst,
        emit: &mut dyn FnMut(&Subst) -> bool,
    ) {
        let mut order: Vec<usize> = (0..source_atoms.len()).collect();
        order.sort_by_key(|&i| {
            let a = &source_atoms[i];
            std::cmp::Reverse(a.args.iter().filter(|t| t.is_rigid()).count())
        });
        let mut subst = initial;
        let _ = step(source_atoms, target_atoms, &order, 0, &mut subst, emit);
    }

    fn step(
        source_atoms: &[Atom],
        target_atoms: &[Atom],
        order: &[usize],
        depth: usize,
        subst: &mut Subst,
        emit: &mut dyn FnMut(&Subst) -> bool,
    ) -> bool {
        if depth == order.len() {
            return emit(subst);
        }
        let atom = &source_atoms[order[depth]];
        for target in target_atoms {
            if target.relation != atom.relation || target.args.len() != atom.args.len() {
                continue;
            }
            let mut added: Vec<String> = Vec::new();
            let mut ok = true;
            for (s, t) in atom.args.iter().zip(&target.args) {
                match s {
                    Term::Var(v) => match subst.get(v) {
                        Some(bound) => {
                            if bound != t {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            subst.insert(v.clone(), t.clone());
                            added.push(v.clone());
                        }
                    },
                    rigid => {
                        if rigid != t {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok && step(source_atoms, target_atoms, order, depth + 1, subst, emit) {
                return true;
            }
            for v in added {
                subst.remove(&v);
            }
        }
        false
    }

    /// Canonical-database containment `q1 ⊆ q2` for comparison-free CQs,
    /// as the old kernel decided it: freeze `q1`, preserve the head, find
    /// a homomorphism from `q2`.
    pub fn contained(q1: &Cq, q2: &Cq) -> bool {
        if q1.head.len() != q2.head.len() {
            return false;
        }
        let rename = |t: &Term| match t {
            Term::Var(v) => Term::Var(format!("l·{v}")),
            c => c.clone(),
        };
        let target_atoms: Vec<Atom> = q1
            .atoms
            .iter()
            .map(|a| Atom {
                relation: a.relation.clone(),
                args: a.args.iter().map(rename).collect(),
            })
            .collect();
        let head1: Vec<Term> = q1.head.iter().map(rename).collect();
        let mut initial = Subst::new();
        for (h2, h1) in q2.head.iter().zip(&head1) {
            match h2 {
                Term::Var(v) => match initial.get(v) {
                    Some(bound) if bound != h1 => return false,
                    Some(_) => {}
                    None => {
                        initial.insert(v.clone(), h1.clone());
                    }
                },
                rigid => {
                    if rigid != h1 {
                        return false;
                    }
                }
            }
        }
        find_homomorphism(&q2.atoms, &target_atoms, initial).is_some()
    }
}

/// One benchmark problem stated representation-neutrally, lowered to both
/// kernels. Terms are a variable name or an integer constant.
#[derive(Clone)]
struct SpecAtom {
    relation: String,
    args: Vec<SpecTerm>,
}

#[derive(Clone)]
enum SpecTerm {
    Var(String),
    Int(i64),
}

fn to_new_atoms(atoms: &[SpecAtom]) -> Vec<qlogic::Atom> {
    atoms
        .iter()
        .map(|a| {
            qlogic::Atom::new(
                a.relation.as_str(),
                a.args
                    .iter()
                    .map(|t| match t {
                        SpecTerm::Var(v) => qlogic::Term::var(v.as_str()),
                        SpecTerm::Int(i) => qlogic::Term::int(*i),
                    })
                    .collect(),
            )
        })
        .collect()
}

fn to_legacy_atoms(atoms: &[SpecAtom]) -> Vec<legacy::Atom> {
    atoms
        .iter()
        .map(|a| legacy::Atom {
            relation: a.relation.clone(),
            args: a
                .args
                .iter()
                .map(|t| match t {
                    SpecTerm::Var(v) => legacy::Term::Var(v.clone()),
                    SpecTerm::Int(i) => legacy::Term::Const(sqlir::Value::Int(*i)),
                })
                .collect(),
        })
        .collect()
}

/// A hom-search problem: source (query) atoms and target (instance) atoms.
struct HomSpec {
    source: Vec<SpecAtom>,
    target: Vec<SpecAtom>,
}

/// Chain join of length `len` into a random `edges`-edge graph over
/// `nodes` nodes, in `rels` relations round-robin (rels == 1 for the pure
/// hom kernel; larger for the pruning kernel, where the chain alternates
/// between two of the relations).
fn hom_spec(rng: &mut SmallRng, len: usize, nodes: i64, edges: usize, rels: usize) -> HomSpec {
    let rel = |k: usize| {
        if rels == 1 {
            "R".to_string()
        } else {
            format!("R{k}")
        }
    };
    let source = (0..len)
        .map(|i| SpecAtom {
            relation: rel(i % 2),
            args: vec![
                SpecTerm::Var(format!("x{i}")),
                SpecTerm::Var(format!("x{}", i + 1)),
            ],
        })
        .collect();
    let target = (0..edges)
        .map(|i| SpecAtom {
            relation: rel(i % rels),
            args: vec![
                SpecTerm::Int(rng.gen_range(0..nodes)),
                SpecTerm::Int(rng.gen_range(0..nodes)),
            ],
        })
        .collect();
    HomSpec { source, target }
}

/// A containment problem: two random comparison-free CQs over a tiny
/// vocabulary, shaped like the property-test generator so containments
/// actually occur.
struct ContainSpec {
    q1: (Vec<SpecTerm>, Vec<SpecAtom>),
    q2: (Vec<SpecTerm>, Vec<SpecAtom>),
}

fn contain_spec(rng: &mut SmallRng) -> ContainSpec {
    // q1: a random chain of binary atoms over a small relation alphabet —
    // the shape minimization sees (long join paths, repeated relations).
    let n = rng.gen_range(12..18usize);
    let q1_atoms: Vec<SpecAtom> = (0..n)
        .map(|i| SpecAtom {
            relation: format!("R{}", rng.gen_range(0..2u32)),
            args: vec![
                SpecTerm::Var(format!("v{i}")),
                SpecTerm::Var(format!("v{}", i + 1)),
            ],
        })
        .collect();
    // q2: a renamed contiguous sub-chain of q1 (containment usually holds,
    // so the homomorphism search has to actually find a mapping among the
    // repeated relation labels), occasionally perturbed so the search must
    // exhaust the space before answering `false`.
    let keep = rng.gen_range(7..=n.min(12));
    let start = rng.gen_range(0..=(n - keep));
    let q2_atoms: Vec<SpecAtom> = q1_atoms[start..start + keep]
        .iter()
        .enumerate()
        .map(|(j, a)| {
            let relation = if rng.gen_range(0..6u32) == 0 {
                format!("R{}", rng.gen_range(0..2u32))
            } else {
                a.relation.clone()
            };
            SpecAtom {
                relation,
                args: vec![
                    SpecTerm::Var(format!("u{j}")),
                    SpecTerm::Var(format!("u{}", j + 1)),
                ],
            }
        })
        .collect();
    ContainSpec {
        q1: (Vec::new(), q1_atoms),
        q2: (Vec::new(), q2_atoms),
    }
}

fn new_cq(spec: &(Vec<SpecTerm>, Vec<SpecAtom>)) -> qlogic::Cq {
    let head = spec
        .0
        .iter()
        .map(|t| match t {
            SpecTerm::Var(v) => qlogic::Term::var(v.as_str()),
            SpecTerm::Int(i) => qlogic::Term::int(*i),
        })
        .collect();
    qlogic::Cq::new(head, to_new_atoms(&spec.1), vec![])
}

fn legacy_cq(spec: &(Vec<SpecTerm>, Vec<SpecAtom>)) -> legacy::Cq {
    let head = spec
        .0
        .iter()
        .map(|t| match t {
            SpecTerm::Var(v) => legacy::Term::Var(v.clone()),
            SpecTerm::Int(i) => legacy::Term::Const(sqlir::Value::Int(*i)),
        })
        .collect();
    legacy::Cq {
        head,
        atoms: to_legacy_atoms(&spec.1),
    }
}

fn run_new_hom(source: &[qlogic::Atom], target: &[qlogic::Atom], ctx: &CmpContext) -> usize {
    let p = HomProblem {
        source_atoms: source,
        source_comparisons: &[],
        target_atoms: target,
        target_ctx: ctx,
        initial: qlogic::Subst::new(),
    };
    find_homomorphisms(&p, HOM_LIMIT).len()
}

fn run_legacy_hom(source: &[legacy::Atom], target: &[legacy::Atom]) -> usize {
    legacy::find_homomorphisms(source, target, legacy::Subst::new(), HOM_LIMIT).len()
}

struct KernelResult {
    kernel: &'static str,
    ops: usize,
    legacy_ns_per_op: f64,
    interned_ns_per_op: f64,
    speedup: f64,
    mismatches: usize,
}

/// Times both kernels over hom problems; verdicts must agree on every one.
fn bench_hom(kernel: &'static str, specs: &[HomSpec], timed: bool) -> KernelResult {
    let ctx = CmpContext::new(&[]);
    let new_probs: Vec<(Vec<qlogic::Atom>, Vec<qlogic::Atom>)> = specs
        .iter()
        .map(|s| (to_new_atoms(&s.source), to_new_atoms(&s.target)))
        .collect();
    let legacy_probs: Vec<(Vec<legacy::Atom>, Vec<legacy::Atom>)> = specs
        .iter()
        .map(|s| (to_legacy_atoms(&s.source), to_legacy_atoms(&s.target)))
        .collect();

    let mut mismatches = 0usize;
    for ((ns, nt), (ls, lt)) in new_probs.iter().zip(&legacy_probs) {
        let new_found = run_new_hom(ns, nt, &ctx);
        let legacy_found = run_legacy_hom(ls, lt);
        if new_found != legacy_found {
            mismatches += 1;
            eprintln!(
                "ORACLE MISMATCH [{kernel}]: interned found {new_found}, legacy {legacy_found}"
            );
        }
    }

    let (legacy_ns, interned_ns) = if timed {
        let reps = REPLICAS;
        let time_new = || {
            let t0 = Instant::now();
            for (ns, nt) in &new_probs {
                std::hint::black_box(run_new_hom(ns, nt, &ctx));
            }
            t0.elapsed().as_nanos() as f64 / new_probs.len() as f64
        };
        let time_legacy = || {
            let t0 = Instant::now();
            for (ls, lt) in &legacy_probs {
                std::hint::black_box(run_legacy_hom(ls, lt));
            }
            t0.elapsed().as_nanos() as f64 / legacy_probs.len() as f64
        };
        let l = (0..reps).map(|_| time_legacy()).fold(f64::MAX, f64::min);
        let n = (0..reps).map(|_| time_new()).fold(f64::MAX, f64::min);
        (l, n)
    } else {
        (0.0, 0.0)
    };

    KernelResult {
        kernel,
        ops: specs.len(),
        legacy_ns_per_op: legacy_ns,
        interned_ns_per_op: interned_ns,
        speedup: if interned_ns > 0.0 {
            legacy_ns / interned_ns
        } else {
            0.0
        },
        mismatches,
    }
}

/// Times both kernels over containment problems; verdicts must agree.
fn bench_containment(specs: &[ContainSpec], timed: bool) -> KernelResult {
    let new_probs: Vec<(qlogic::Cq, qlogic::Cq)> = specs
        .iter()
        .map(|s| (new_cq(&s.q1), new_cq(&s.q2)))
        .collect();
    let legacy_probs: Vec<(legacy::Cq, legacy::Cq)> = specs
        .iter()
        .map(|s| (legacy_cq(&s.q1), legacy_cq(&s.q2)))
        .collect();

    let mut mismatches = 0usize;
    for ((n1, n2), (l1, l2)) in new_probs.iter().zip(&legacy_probs) {
        let new_v = qlogic::contained(n1, n2);
        let legacy_v = legacy::contained(l1, l2);
        if new_v != legacy_v {
            mismatches += 1;
            eprintln!(
                "ORACLE MISMATCH [containment]: interned={new_v} legacy={legacy_v} on {n1} ⊆ {n2}"
            );
        }
    }

    let (legacy_ns, interned_ns) = if timed {
        let time_new = || {
            let t0 = Instant::now();
            for (n1, n2) in &new_probs {
                std::hint::black_box(qlogic::contained(n1, n2));
            }
            t0.elapsed().as_nanos() as f64 / new_probs.len() as f64
        };
        let time_legacy = || {
            let t0 = Instant::now();
            for (l1, l2) in &legacy_probs {
                std::hint::black_box(legacy::contained(l1, l2));
            }
            t0.elapsed().as_nanos() as f64 / legacy_probs.len() as f64
        };
        let l = (0..REPLICAS)
            .map(|_| time_legacy())
            .fold(f64::MAX, f64::min);
        let n = (0..REPLICAS).map(|_| time_new()).fold(f64::MAX, f64::min);
        (l, n)
    } else {
        (0.0, 0.0)
    };

    KernelResult {
        kernel: "containment",
        ops: specs.len(),
        legacy_ns_per_op: legacy_ns,
        interned_ns_per_op: interned_ns,
        speedup: if interned_ns > 0.0 {
            legacy_ns / interned_ns
        } else {
            0.0
        },
        mismatches,
    }
}

struct DecisionResult {
    app: &'static str,
    ops: usize,
    wall_s: f64,
    throughput: f64,
    errors: usize,
}

/// Drives the full workload through an unplanned proxy (every request a
/// fresh proof: the kernel-bound path) single-threaded.
fn drive_decisions(sim: &'static SimApp, env: &AppEnv) -> DecisionResult {
    let config = ProxyConfig {
        template_cache: false,
        session_cache: false,
        plan_cache: false,
        ..Default::default()
    };
    let proxy = proxy_for(env, config);
    let app = env.sim.app();
    let mut errors = 0usize;
    let mut ops = 0usize;
    let start = Instant::now();
    for round in 0..2 {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let params = salted_params(&req.params, round);
            let session = proxy.begin_session(req.session.clone());
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            if appdsl::run_handler(
                &mut port,
                handler,
                &req.session,
                &params,
                appdsl::Limits::default(),
            )
            .is_err()
            {
                errors += 1;
            }
            proxy.end_session(session);
            ops += 1;
        }
    }
    let wall_s = start.elapsed().as_secs_f64();
    DecisionResult {
        app: sim.name,
        ops,
        wall_s,
        throughput: ops as f64 / wall_s,
        errors,
    }
}

/// Replays the whole workload through planned and unplanned proxies and
/// asserts the complete run records are bit-identical (same gate as T10:
/// the interned kernel is a representation change, never a decision
/// change). Returns the number of comparisons.
fn differential(env: &AppEnv) -> usize {
    let planned = proxy_for(env, ProxyConfig::default());
    let unplanned = proxy_for(
        env,
        ProxyConfig {
            template_cache: false,
            session_cache: false,
            plan_cache: false,
            ..Default::default()
        },
    );
    let app = env.sim.app();
    let mut compared = 0usize;
    for round in 0..2 {
        for req in &env.requests {
            let handler = app.handler(&req.handler).expect("handler");
            let params = salted_params(&req.params, round);
            let run = |proxy: &bep_core::SqlProxy| {
                let session = proxy.begin_session(req.session.clone());
                let mut port = ProxyPort { proxy, session };
                let r = appdsl::run_handler(
                    &mut port,
                    handler,
                    &req.session,
                    &params,
                    appdsl::Limits::default(),
                );
                proxy.end_session(session);
                format!("{r:?}")
            };
            let want = run(&unplanned);
            let got = run(&planned);
            assert_eq!(
                got, want,
                "planned diverged from unplanned on {} round {round}",
                req.handler
            );
            compared += 1;
        }
    }
    compared
}

fn json_of(kernels: &[KernelResult], decisions: &[DecisionResult], compared: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"t11_kernel\",\n");
    out.push_str(&format!("  \"problems_per_kernel\": {PROBLEMS},\n"));
    out.push_str(&format!("  \"replicas_best_of\": {REPLICAS},\n"));
    out.push_str(&format!("  \"workload_replays_compared\": {compared},\n"));
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"ops\": {}, \"legacy_ns_per_op\": {:.0}, \
             \"interned_ns_per_op\": {:.0}, \"speedup\": {:.2}, \"mismatches\": {}}}{}\n",
            k.kernel,
            k.ops,
            k.legacy_ns_per_op,
            k.interned_ns_per_op,
            k.speedup,
            k.mismatches,
            if i + 1 == kernels.len() { "" } else { "," },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"decision_path\": [\n");
    for (i, d) in decisions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"app\": \"{}\", \"ops\": {}, \"wall_s\": {:.4}, \
             \"throughput_ops_s\": {:.1}, \"errors\": {}}}{}\n",
            d.app,
            d.ops,
            d.wall_s,
            d.throughput,
            d.errors,
            if i + 1 == decisions.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_problems = if smoke { SMOKE_PROBLEMS } else { PROBLEMS };
    let n_requests = if smoke { SMOKE_REQUESTS } else { N_REQUESTS };

    // Workload-replay differential gate first: the interned kernel must
    // make byte-identical decisions across planned and unplanned proxies
    // on the full calendar and forum workloads.
    let mut compared = 0usize;
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), n_requests);
        let n = differential(&env);
        println!("differential [{}]: {n} replayed runs identical", sim.name);
        compared += n;
    }
    println!();

    // Kernel problems. Sizes chosen so the full run stays in seconds but
    // each op is large enough to time (hundreds of candidate atoms).
    let mut rng = SmallRng::seed_from_u64(41);
    let hom_specs: Vec<HomSpec> = (0..n_problems)
        .map(|_| hom_spec(&mut rng, 4, 16, 160, 1))
        .collect();
    let prune_specs: Vec<HomSpec> = (0..n_problems)
        .map(|_| hom_spec(&mut rng, 4, 16, 480, 16))
        .collect();
    let contain_specs: Vec<ContainSpec> = (0..n_problems * 4)
        .map(|_| contain_spec(&mut rng))
        .collect();

    let kernels = vec![
        bench_hom("hom", &hom_specs, !smoke),
        bench_containment(&contain_specs, !smoke),
        bench_hom("prune", &prune_specs, !smoke),
    ];
    let total_mismatches: usize = kernels.iter().map(|k| k.mismatches).sum();
    for k in &kernels {
        if smoke {
            println!(
                "oracle [{}]: {} problems, {} mismatches",
                k.kernel, k.ops, k.mismatches
            );
        } else {
            println!(
                "{:<12} {:>6} ops  legacy {:>9.0} ns/op  interned {:>9.0} ns/op  speedup {:>5.2}×  mismatches {}",
                k.kernel, k.ops, k.legacy_ns_per_op, k.interned_ns_per_op, k.speedup, k.mismatches
            );
        }
    }
    assert_eq!(total_mismatches, 0, "kernel oracle disagreement");

    if smoke {
        println!();
        println!("smoke mode: differential + oracle gates passed, skipping the sweep");
        return;
    }

    println!();
    let mut decisions = Vec::new();
    for sim in [&CALENDAR, &FORUM] {
        let env = app_env(sim, 17, Scale::small(), n_requests);
        let d = drive_decisions(sim, &env);
        println!(
            "decision [{}]: {} ops in {:.3}s = {:.0} ops/s, {} errors",
            d.app, d.ops, d.wall_s, d.throughput, d.errors
        );
        assert_eq!(d.errors, 0, "decision path must be error-free");
        decisions.push(d);
    }

    let json = json_of(&kernels, &decisions, compared);
    std::fs::write("BENCH_t11.json", &json).expect("write BENCH_t11.json");
    println!();
    println!("wrote BENCH_t11.json");
}
