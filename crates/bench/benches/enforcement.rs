//! F3 — Proxy overhead: per-query latency of direct execution vs the
//! enforcing proxy in its cache configurations, plus the cost of one cold
//! compliance decision (the quantity the caches amortize).

use appsim::{Scale, CALENDAR};
use bep_bench::{app_env, proxy_for};
use bep_core::{ProxyConfig, Trace};
use criterion::{criterion_group, criterion_main, Criterion};
use sqlir::Value;

fn bench_proxy_overhead(c: &mut Criterion) {
    let env = app_env(&CALENDAR, 3, Scale::medium(), 0);
    let mut group = c.benchmark_group("f3_proxy_overhead");
    group.sample_size(20);

    let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
    let bindings = vec![("MyUId".to_string(), Value::Int(101))];

    // Baseline: the bare database.
    group.bench_function("direct", |b| {
        let proxy = proxy_for(&env, ProxyConfig::default());
        b.iter(|| {
            let r = proxy.execute_unchecked(sql, &bindings).unwrap();
            std::hint::black_box(r);
        });
    });

    // Full proxy: first call proves the template, the rest hit the cache.
    group.bench_function("proxy_cached", |b| {
        let proxy = proxy_for(&env, ProxyConfig::default());
        let session = proxy.begin_session(bindings.clone());
        proxy.execute(session, sql, &[]).unwrap(); // warm the template cache
        b.iter(|| {
            let r = proxy.execute(session, sql, &[]).unwrap();
            std::hint::black_box(r);
        });
    });

    // No caches: every call pays a fresh proof.
    group.bench_function("proxy_uncached", |b| {
        let config = ProxyConfig {
            template_cache: false,
            session_cache: false,
            ..Default::default()
        };
        let proxy = proxy_for(&env, config);
        let session = proxy.begin_session(bindings.clone());
        b.iter(|| {
            let r = proxy.execute(session, sql, &[]).unwrap();
            std::hint::black_box(r);
        });
    });

    group.finish();
}

fn bench_decision_latency(c: &mut Criterion) {
    let env = app_env(&CALENDAR, 3, Scale::small(), 0);
    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().unwrap();
    let checker = bep_core::ComplianceChecker::new(schema, policy);
    let bindings = vec![("MyUId".to_string(), Value::Int(101))];
    let _ = env;

    let mut group = c.benchmark_group("t4_decision_latency");
    group.sample_size(20);

    // Template-level proof (session-independent).
    let q1 = sqlir::parse_query("SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = ?event_id")
        .unwrap();
    group.bench_function("template_allow", |b| {
        b.iter(|| std::hint::black_box(checker.check_template(&q1)));
    });

    // Concrete allow (with a trace fact discharging the join).
    let q2 = sqlir::parse_query("SELECT EId, Title, Kind FROM Events WHERE EId = 2").unwrap();
    let mut trace = Trace::new();
    let cq1 = checker
        .translate(&q1)
        .unwrap()
        .disjuncts
        .remove(0)
        .instantiate(&[
            ("MyUId".into(), Value::Int(101)),
            ("event_id".into(), Value::Int(2)),
        ]);
    trace.record(cq1, bep_core::Observation::NonEmpty);
    group.bench_function("concrete_allow_with_trace", |b| {
        b.iter(|| std::hint::black_box(checker.check_concrete(&q2, &bindings, &trace)));
    });

    // Concrete deny (exhausts the rewriting search).
    let empty = Trace::new();
    group.bench_function("concrete_deny", |b| {
        b.iter(|| std::hint::black_box(checker.check_concrete(&q2, &bindings, &empty)));
    });

    group.finish();
}

criterion_group!(benches, bench_proxy_overhead, bench_decision_latency);
criterion_main!(benches);
