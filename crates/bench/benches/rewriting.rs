//! Rewriting-engine microbenchmarks: the cost of one equivalent-rewriting
//! search (the checker's inner loop) as the policy grows, and of the
//! maximally-contained rewriting used by query patches (F4's engine).

use bep_core::Policy;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qlogic::{equivalent_rewriting, maximally_contained, Atom, Cq, RelSchema, Term, ViewSet};
use sqlir::Value;

/// A policy of n single-table views over distinct relations plus the two
/// calendar views, instantiated for user 1.
fn policy_with_decoys(n: usize) -> ViewSet {
    let mut schema = RelSchema::new();
    schema.add_table("Events", ["EId", "Title", "Kind"]);
    schema.add_table("Attendance", ["UId", "EId", "Notes"]);
    let mut policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    for i in 0..n {
        let mut v = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new(
                format!("T{i}"),
                vec![Term::var("x"), Term::var("y")],
            )],
            vec![],
        );
        v.name = Some(format!("D{i}").into());
        policy.add_cq_view(&format!("D{i}"), v).unwrap();
    }
    policy
        .instantiate(&[("MyUId".to_string(), Value::Int(1))])
        .unwrap()
}

fn bench_equivalent_rewriting(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewriting_equivalent");
    group.sample_size(20);
    let q1 = Cq::new(
        vec![Term::int(1)],
        vec![Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("n")],
        )],
        vec![],
    );
    for n in [0usize, 8, 32] {
        let views = policy_with_decoys(n);
        group.bench_with_input(BenchmarkId::new("allow", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(equivalent_rewriting(&q1, &views, &[]).is_some()));
        });
        // A deny exhausts the candidate space (worst case).
        let q_deny = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        group.bench_with_input(BenchmarkId::new("deny", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(equivalent_rewriting(&q_deny, &views, &[]).is_none()));
        });
    }
    group.finish();
}

fn bench_maximally_contained(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewriting_mcr");
    group.sample_size(20);
    let views = policy_with_decoys(8);
    let q = Cq::new(
        vec![Term::var("e"), Term::var("t")],
        vec![Atom::new(
            "Events",
            vec![Term::var("e"), Term::var("t"), Term::var("k")],
        )],
        vec![],
    );
    group.bench_function("all_events", |b| {
        b.iter(|| std::hint::black_box(maximally_contained(&q, &views).disjuncts.len()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_equivalent_rewriting,
    bench_maximally_contained
);
criterion_main!(benches);
