//! T2 — Extraction cost: wall time of symbolic extraction per application
//! (paths are bounded, per the paper's simple-loop-structure observation)
//! and of black-box mining as the workload grows.

use appsim::{Scale, ALL_APPS, CALENDAR};
use bep_bench::app_env;
use bep_extract::{
    collect_traces, extract_symbolic, mine_policy, Hints, MineOptions, SymLimits, ViewGenOptions,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_symbolic(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_symbolic_extraction");
    group.sample_size(10);
    for sim in ALL_APPS {
        let schema = sim.schema();
        let app = sim.app();
        let opts = ViewGenOptions {
            session_params: sim.session_params.iter().map(|s| s.to_string()).collect(),
        };
        group.bench_function(sim.name, |b| {
            b.iter(|| {
                let e = extract_symbolic(&schema, &app, SymLimits::default(), &opts).unwrap();
                std::hint::black_box(e.views.len())
            });
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("t2_mining");
    group.sample_size(10);
    let schema = CALENDAR.schema();
    let app = CALENDAR.app();
    for n in [25usize, 50, 100] {
        let env = app_env(&CALENDAR, 7, Scale::small(), n);
        group.bench_with_input(BenchmarkId::new("calendar", n), &n, |b, _| {
            b.iter(|| {
                let traces = collect_traces(&env.db, &app, &schema, &env.requests).unwrap();
                let views = mine_policy(
                    &traces,
                    &MineOptions {
                        hints: Hints::id_columns(&schema),
                        ..Default::default()
                    },
                );
                std::hint::black_box(views.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_symbolic, bench_mining);
criterion_main!(benches);
