//! F2 — Disclosure-check latency: the certificate checkers vs the exact
//! small-model enumerator, as the sensitive query grows (atoms) and as the
//! bounded universe grows (domain size). The shape claim: certificates stay
//! in the microsecond-to-millisecond range while exact enumeration explodes
//! exponentially — which is why the paper asks for practical algorithms.

use bep_disclose::{check_nqi, check_pqi, decide, RelationSpec, Universe};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qlogic::{Atom, Cq, Term, ViewSet};

/// A chain query R0(x0,x1), R1(x1,x2), … with per-relation identity views.
fn chain(n: usize) -> (ViewSet, Cq) {
    let mut views = Vec::new();
    let mut atoms = Vec::new();
    for i in 0..n {
        let atom = Atom::new(
            format!("R{i}"),
            vec![Term::var(format!("x{i}")), Term::var(format!("x{}", i + 1))],
        );
        atoms.push(atom.clone());
        let mut v = Cq::new(
            vec![Term::var(format!("x{i}")), Term::var(format!("x{}", i + 1))],
            vec![atom],
            vec![],
        );
        v.name = Some(format!("V{i}").into());
        views.push(v);
    }
    let q = Cq::new(
        vec![Term::var("x0"), Term::var(format!("x{n}"))],
        atoms,
        vec![],
    );
    (ViewSet::new(views).unwrap(), q)
}

fn bench_certificates(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_certificates");
    group.sample_size(20);
    for n in [1usize, 2, 3, 4] {
        let (views, q) = chain(n);
        group.bench_with_input(BenchmarkId::new("pqi", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(check_pqi(&q, &views).holds()));
        });
        group.bench_with_input(BenchmarkId::new("nqi", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(check_nqi(&q, &views).holds()));
        });
    }
    group.finish();
}

fn bench_small_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_small_model");
    group.sample_size(10);
    // One binary relation; domain d = 2 or 3 (4^d tuples → 2^(d²) subsets).
    for d in [2i64, 3] {
        let (views, q) = chain(1);
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R0".into(),
                arity: 2,
                max_rows: 2,
            }],
            d,
        );
        group.bench_with_input(BenchmarkId::new("exact", d), &d, |b, _| {
            b.iter(|| std::hint::black_box(decide(&universe, &views, &q).unwrap().pqi));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_certificates, bench_small_model);
criterion_main!(benches);
