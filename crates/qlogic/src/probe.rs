//! Thread-local solver work counters.
//!
//! The rewriting search, the containment checker, and the homomorphism
//! search each bump a plain [`Cell`] counter at their inner loops; a
//! harness (the proxy's span layer) calls [`take`] at span boundaries to
//! read-and-reset the deltas and attribute them to whatever span was
//! active. The counters are *always* counted — a thread-local `Cell`
//! increment is a register-add next to a TLS base, orders of magnitude
//! below the proof work it counts — so there is no enabled/disabled
//! branch on the solver hot paths and no dependency from `qlogic` back
//! onto any observability layer.
//!
//! Counters are per-thread and never synchronized: a caller that wants a
//! decision's counters must run the decision and the [`take`] calls on
//! one thread, which is exactly how the proxy's decision path works.

use std::cell::Cell;

/// One read-and-reset snapshot of the solver counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Nodes of the MiniCon candidate enumeration (MCD choice points and
    /// cover-combination steps) visited by [`crate::rewrite`].
    pub rewrite_iterations: u64,
    /// Calls into the dependency-aware containment check
    /// ([`crate::containment::contained_given_deps`]).
    pub containment_checks: u64,
    /// Candidate target atoms visited by the homomorphism search.
    pub hom_nodes: u64,
    /// Candidates the homomorphism search unwound (failed branch).
    pub hom_backtracks: u64,
}

impl SolverCounters {
    /// Field-wise sum.
    pub fn add(&mut self, other: SolverCounters) {
        self.rewrite_iterations += other.rewrite_iterations;
        self.containment_checks += other.containment_checks;
        self.hom_nodes += other.hom_nodes;
        self.hom_backtracks += other.hom_backtracks;
    }

    /// `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == SolverCounters::default()
    }
}

struct Counters {
    rewrite_iterations: Cell<u64>,
    containment_checks: Cell<u64>,
    hom_nodes: Cell<u64>,
    hom_backtracks: Cell<u64>,
}

thread_local! {
    static COUNTERS: Counters = const {
        Counters {
            rewrite_iterations: Cell::new(0),
            containment_checks: Cell::new(0),
            hom_nodes: Cell::new(0),
            hom_backtracks: Cell::new(0),
        }
    };
}

#[inline]
pub(crate) fn bump_rewrite_iteration() {
    COUNTERS.with(|c| c.rewrite_iterations.set(c.rewrite_iterations.get() + 1));
}

#[inline]
pub(crate) fn bump_containment_check() {
    COUNTERS.with(|c| c.containment_checks.set(c.containment_checks.get() + 1));
}

#[inline]
pub(crate) fn bump_hom_node() {
    COUNTERS.with(|c| c.hom_nodes.set(c.hom_nodes.get() + 1));
}

#[inline]
pub(crate) fn bump_hom_backtrack() {
    COUNTERS.with(|c| c.hom_backtracks.set(c.hom_backtracks.get() + 1));
}

/// Reads and resets this thread's counters. Call once at the start of a
/// measured region to discard whatever accumulated outside it, then at
/// each boundary to collect the delta since the previous call.
pub fn take() -> SolverCounters {
    COUNTERS.with(|c| SolverCounters {
        rewrite_iterations: c.rewrite_iterations.replace(0),
        containment_checks: c.containment_checks.replace(0),
        hom_nodes: c.hom_nodes.replace(0),
        hom_backtracks: c.hom_backtracks.replace(0),
    })
}

/// Reads this thread's counters without resetting them.
pub fn peek() -> SolverCounters {
    COUNTERS.with(|c| SolverCounters {
        rewrite_iterations: c.rewrite_iterations.get(),
        containment_checks: c.containment_checks.get(),
        hom_nodes: c.hom_nodes.get(),
        hom_backtracks: c.hom_backtracks.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reads_and_resets() {
        take(); // discard whatever earlier tests on this thread left behind
        bump_rewrite_iteration();
        bump_rewrite_iteration();
        bump_containment_check();
        bump_hom_node();
        bump_hom_backtrack();
        let got = peek();
        assert_eq!(got.rewrite_iterations, 2);
        assert_eq!(take(), got);
        assert!(take().is_zero(), "take resets");
    }

    #[test]
    fn solver_work_is_counted() {
        use crate::containment::contained;
        use crate::cq::{Atom, Cq, Term};
        take();
        let q1 = Cq::new(
            vec![Term::var("x")],
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("y")]),
                Atom::new("R", vec![Term::var("y"), Term::var("x")]),
            ],
            vec![],
        );
        let q2 = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
            vec![],
        );
        assert!(contained(&q1, &q2));
        let c = take();
        assert!(c.containment_checks >= 1, "{c:?}");
        assert!(c.hom_nodes >= 1, "{c:?}");
    }

    #[test]
    fn counters_are_per_thread() {
        take();
        bump_hom_node();
        std::thread::spawn(|| {
            assert!(take().is_zero(), "fresh thread starts at zero");
        })
        .join()
        .unwrap();
        assert_eq!(take().hom_nodes, 1);
    }
}
