//! Backtracking homomorphism search.
//!
//! A homomorphism maps the variables of a *source* conjunction onto the
//! terms of a *target* atom set such that every source atom lands on a target
//! atom and every source comparison is entailed by what is known about the
//! target. This single primitive powers query evaluation over instances,
//! containment checking, and view rewriting.
//!
//! # How the search runs
//!
//! The problem is compiled once per call into a slot program:
//!
//! * every variable (initial bindings first, then first occurrence across
//!   the ordered source atoms) gets a dense *slot*; the search state is a
//!   flat `Vec<Option<Term>>` plus an undo trail — no tree map, no string
//!   keys, no per-binding allocation (terms are `Copy`);
//! * target atoms are indexed by relation symbol, so each source atom only
//!   enumerates candidates of its own relation instead of scanning the whole
//!   target body (candidate order within a relation is preserved, so the
//!   emission order is exactly what the naive scan produced);
//! * each comparison is scheduled at the earliest depth where all of its
//!   slotted variables are bound — which is a static property of the atom
//!   order — so contradicted branches die early. Since bindings never change
//!   between a variable's bind depth and backtracking past it, checking
//!   early accepts and rejects exactly the leaves the check-at-leaf search
//!   did.
//!
//! The emitted homomorphisms — set, order, and bindings — are identical to
//! the pre-compilation implementation; only the work per candidate changed.

use crate::compare::CmpContext;
use crate::cq::{Atom, CmpOp, Comparison, Subst, Term};
use crate::sym::Sym;

/// A homomorphism search problem.
pub struct HomProblem<'a> {
    /// Atoms to be mapped.
    pub source_atoms: &'a [Atom],
    /// Comparisons that must hold (under the mapping) in the target.
    pub source_comparisons: &'a [Comparison],
    /// Target atoms (terms may include variables acting as labeled nulls).
    pub target_atoms: &'a [Atom],
    /// Known constraints over the target's terms.
    pub target_ctx: &'a CmpContext,
    /// Required initial bindings (e.g. head preservation).
    pub initial: Subst,
}

/// Finds one homomorphism, if any.
pub fn find_homomorphism(p: &HomProblem<'_>) -> Option<Subst> {
    let mut found = None;
    search(p, &mut |s| {
        found = Some(s.clone());
        true // stop
    });
    found
}

/// Finds up to `limit` homomorphisms.
pub fn find_homomorphisms(p: &HomProblem<'_>, limit: usize) -> Vec<Subst> {
    let mut out = Vec::new();
    if limit == 0 {
        return out;
    }
    search(p, &mut |s| {
        out.push(s.clone());
        out.len() >= limit
    });
    out
}

/// Streams homomorphisms to a callback; the callback returns `true` to stop
/// the search. Lets callers deduplicate projections without materializing
/// every homomorphism first.
pub fn for_each_homomorphism(p: &HomProblem<'_>, emit: &mut dyn FnMut(&Subst) -> bool) {
    search(p, emit);
}

/// Whether `fact` is homomorphically implied by `remainder`: the existential
/// conjunction of `remainder` alone entails the conjunction with `fact`
/// included, so `fact` can be dropped without changing what the fact set
/// means (trace compaction).
///
/// Variables of `fact` that also occur in `remainder` are pinned to
/// themselves — they are shared labeled nulls whose identity the remainder
/// still refers to, so the mapping must be the identity on them. Variables
/// private to `fact` may map anywhere. Under that pinning, any homomorphism
/// from `{fact}` into `remainder` extends (by the identity) to a
/// homomorphism from the full set into `remainder`, which is exactly the
/// implication `remainder ⊨ remainder ∧ fact`.
pub fn fact_implied(fact: &Atom, remainder: &[Atom]) -> bool {
    if remainder.is_empty() {
        return false;
    }
    let ctx = CmpContext::new(&[]);
    let mut initial = Subst::new();
    for t in &fact.args {
        if let Term::Var(v) = t {
            let pinned = Term::Var(*v);
            if initial.contains_key(v) {
                continue;
            }
            if remainder.iter().any(|a| a.args.contains(&pinned)) {
                initial.insert(*v, pinned);
            }
        }
    }
    find_homomorphism(&HomProblem {
        source_atoms: std::slice::from_ref(fact),
        source_comparisons: &[],
        target_atoms: remainder,
        target_ctx: &ctx,
        initial,
    })
    .is_some()
}

/// A source-atom argument, resolved against the slot table.
enum CArg {
    /// A variable's slot.
    Slot(u32),
    /// A constant or parameter: must match the target term outright.
    Rigid(Term),
}

/// A compiled source atom.
struct CAtom {
    /// Index into the plan's relation table (and `rel_index`).
    rel: usize,
    args: Vec<CArg>,
}

/// One side of a compiled comparison.
#[derive(Clone, Copy)]
enum CSide {
    /// A slotted variable, bound by the comparison's due depth.
    Slot(u32),
    /// Anything else: rigid terms, and variables that never get a slot
    /// (they stay themselves under the mapping, exactly as `apply_term`
    /// leaves unbound variables in place).
    Fixed(Term),
}

/// A comparison scheduled at its earliest fully-bound depth.
struct CCmp {
    lhs: CSide,
    op: CmpOp,
    rhs: CSide,
}

/// The per-call compiled program (immutable during the search).
struct Plan {
    atoms: Vec<CAtom>,
    /// `due[d]` = comparisons checkable once `d` atoms are mapped.
    due: Vec<Vec<CCmp>>,
    /// Slot → variable symbol, for materializing emitted substitutions.
    slot_names: Vec<Sym>,
    /// `rel_index[r]` = target atom positions of source relation `r`, in
    /// target order. Relations no source atom mentions are never indexed.
    rel_index: Vec<Vec<u32>>,
}

/// The mutable search state: dense bindings plus an undo trail.
struct State {
    bindings: Vec<Option<Term>>,
    trail: Vec<u32>,
}

/// Core backtracking search; `emit` returns `true` to stop.
fn search(p: &HomProblem<'_>, emit: &mut dyn FnMut(&Subst) -> bool) {
    // Order source atoms most-constrained-first: more rigid terms and more
    // already-bound variables first. A simple static heuristic (rigid count)
    // works well at our scales.
    let mut order: Vec<usize> = (0..p.source_atoms.len()).collect();
    order.sort_by_key(|&i| {
        let a = &p.source_atoms[i];
        std::cmp::Reverse(a.args.iter().filter(|t| t.is_rigid()).count())
    });

    // Slot table: initial bindings first (bound from depth 0), then first
    // occurrence across atoms in search order (bound once that atom maps).
    // Variable and relation counts are small, so id-keyed linear scans beat
    // hashing; nothing here allocates per lookup.
    let mut slot_names: Vec<Sym> = Vec::new();
    let mut slot_depth: Vec<usize> = Vec::new();
    let mut bindings: Vec<Option<Term>> = Vec::new();
    let slot_of = |names: &[Sym], v: Sym| -> Option<u32> {
        names
            .iter()
            .position(|s| s.id() == v.id())
            .map(|i| i as u32)
    };
    for (v, t) in p.initial.iter() {
        if slot_of(&slot_names, *v).is_none() {
            slot_names.push(*v);
            slot_depth.push(0);
            bindings.push(Some(*t));
        }
    }
    let mut rels: Vec<Sym> = Vec::new();
    let mut atoms = Vec::with_capacity(order.len());
    for (d, &ai) in order.iter().enumerate() {
        let a = &p.source_atoms[ai];
        let args = a
            .args
            .iter()
            .map(|t| match t {
                Term::Var(v) => {
                    let slot = slot_of(&slot_names, *v).unwrap_or_else(|| {
                        slot_names.push(*v);
                        slot_depth.push(d + 1);
                        bindings.push(None);
                        (slot_names.len() - 1) as u32
                    });
                    CArg::Slot(slot)
                }
                rigid => CArg::Rigid(*rigid),
            })
            .collect();
        let rel = rels
            .iter()
            .position(|r| r.id() == a.relation.id())
            .unwrap_or_else(|| {
                rels.push(a.relation);
                rels.len() - 1
            });
        atoms.push(CAtom { rel, args });
    }

    // Schedule each comparison at the earliest depth where every slotted
    // variable in it is bound; variables that never get a slot push it to
    // the leaf (where they stay as themselves, like `apply_term` unbound).
    let leaf = order.len();
    let mut due: Vec<Vec<CCmp>> = (0..=leaf).map(|_| Vec::new()).collect();
    for c in p.source_comparisons {
        let mut depth = 0usize;
        let mut side = |t: &Term| -> CSide {
            if let Term::Var(v) = t {
                if let Some(s) = slot_of(&slot_names, *v) {
                    depth = depth.max(slot_depth[s as usize]);
                    return CSide::Slot(s);
                }
                depth = leaf;
            }
            CSide::Fixed(*t)
        };
        let lhs = side(&c.lhs);
        let rhs = side(&c.rhs);
        due[depth].push(CCmp { lhs, op: c.op, rhs });
    }

    // Index target atoms by source relation, preserving target order within
    // each relation so candidate enumeration order matches the naive scan.
    // Target atoms of relations the source never mentions are skipped.
    let mut rel_index: Vec<Vec<u32>> = rels.iter().map(|_| Vec::new()).collect();
    for (i, t) in p.target_atoms.iter().enumerate() {
        if let Some(r) = rels.iter().position(|r| r.id() == t.relation.id()) {
            rel_index[r].push(i as u32);
        }
    }

    let plan = Plan {
        atoms,
        due,
        slot_names,
        rel_index,
    };
    let mut state = State {
        bindings,
        trail: Vec::new(),
    };
    if !check_due(&plan, p, &state, 0) {
        return;
    }
    let _ = step(&plan, p, &mut state, 0, emit);
}

fn step(
    plan: &Plan,
    p: &HomProblem<'_>,
    state: &mut State,
    depth: usize,
    emit: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    if depth == plan.atoms.len() {
        // All atoms mapped and all comparisons already checked on the way
        // down; materialize the substitution (every slot is bound here).
        let subst: Subst = plan
            .slot_names
            .iter()
            .zip(&state.bindings)
            .map(|(v, b)| (*v, b.expect("all slots bound at leaf")))
            .collect();
        return emit(&subst);
    }
    let atom = &plan.atoms[depth];
    for &ti in &plan.rel_index[atom.rel] {
        crate::probe::bump_hom_node();
        let target = &p.target_atoms[ti as usize];
        if target.args.len() != atom.args.len() {
            continue;
        }
        let mark = state.trail.len();
        if unify(atom, target, p.target_ctx, state)
            && check_due(plan, p, state, depth + 1)
            && step(plan, p, state, depth + 1, emit)
        {
            return true;
        }
        crate::probe::bump_hom_backtrack();
        while state.trail.len() > mark {
            let slot = state.trail.pop().expect("trail mark in bounds");
            state.bindings[slot as usize] = None;
        }
    }
    false
}

/// Tries to map a compiled atom onto one target atom, recording new
/// bindings on the trail. On failure the caller unwinds to its mark.
fn unify(atom: &CAtom, target: &Atom, ctx: &CmpContext, state: &mut State) -> bool {
    for (s, t) in atom.args.iter().zip(&target.args) {
        match s {
            CArg::Slot(slot) => match state.bindings[*slot as usize] {
                Some(bound) => {
                    if !terms_match(&bound, t, ctx) {
                        return false;
                    }
                }
                None => {
                    state.bindings[*slot as usize] = Some(*t);
                    state.trail.push(*slot);
                }
            },
            CArg::Rigid(rigid) => {
                if !terms_match(rigid, t, ctx) {
                    return false;
                }
            }
        }
    }
    true
}

/// Checks every comparison that became fully bound at `depth`.
fn check_due(plan: &Plan, p: &HomProblem<'_>, state: &State, depth: usize) -> bool {
    for c in &plan.due[depth] {
        let resolve = |s: CSide| -> Term {
            match s {
                CSide::Slot(slot) => state.bindings[slot as usize]
                    .expect("slotted comparison side bound by its due depth"),
                CSide::Fixed(t) => t,
            }
        };
        let mapped = Comparison::new(resolve(c.lhs), c.op, resolve(c.rhs));
        if !p.target_ctx.entails(&mapped) {
            return false;
        }
    }
    true
}

/// Whether a mapped source term is compatible with a target term: identical,
/// or provably equal under the target's constraints.
fn terms_match(a: &Term, b: &Term, ctx: &CmpContext) -> bool {
    a == b || ctx.entails(&Comparison::new(*a, CmpOp::Eq, *b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_empty() -> CmpContext {
        CmpContext::new(&[])
    }

    #[test]
    fn maps_simple_atom() {
        let source = [Atom::new("R", vec![Term::var("x"), Term::var("y")])];
        let target = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let h = find_homomorphism(&p).unwrap();
        assert_eq!(h["x"], Term::int(1));
        assert_eq!(h["y"], Term::int(2));
    }

    #[test]
    fn respects_shared_variables() {
        // R(x, x) cannot map onto R(1, 2).
        let source = [Atom::new("R", vec![Term::var("x"), Term::var("x")])];
        let target = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_none());
    }

    #[test]
    fn respects_initial_binding() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let target = [
            Atom::new("R", vec![Term::int(1)]),
            Atom::new("R", vec![Term::int(2)]),
        ];
        let ctx = ctx_empty();
        let mut initial = Subst::new();
        initial.insert("x", Term::int(2));
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial,
        };
        let h = find_homomorphism(&p).unwrap();
        assert_eq!(h["x"], Term::int(2));
    }

    #[test]
    fn checks_comparisons_under_mapping() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let comps = [Comparison::new(Term::var("x"), CmpOp::Ge, Term::int(10))];
        let target = [
            Atom::new("R", vec![Term::int(5)]),
            Atom::new("R", vec![Term::int(15)]),
        ];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &comps,
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let all = find_homomorphisms(&p, 10);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0]["x"], Term::int(15));
    }

    #[test]
    fn comparison_on_labeled_null_uses_context() {
        // Target has R(v) where v >= 60 is known; source needs x >= 18.
        let source = [Atom::new("R", vec![Term::var("x")])];
        let comps = [Comparison::new(Term::var("x"), CmpOp::Ge, Term::int(18))];
        let target = [Atom::new("R", vec![Term::var("v")])];
        let known = [Comparison::new(Term::var("v"), CmpOp::Ge, Term::int(60))];
        let ctx = CmpContext::new(&known);
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &comps,
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_some());
    }

    #[test]
    fn enumerates_all_homomorphisms() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let target = [
            Atom::new("R", vec![Term::int(1)]),
            Atom::new("R", vec![Term::int(2)]),
            Atom::new("R", vec![Term::int(3)]),
        ];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert_eq!(find_homomorphisms(&p, 100).len(), 3);
        assert_eq!(find_homomorphisms(&p, 2).len(), 2);
    }

    #[test]
    fn rigid_terms_must_match() {
        let source = [Atom::new("R", vec![Term::int(7), Term::var("y")])];
        let target = [Atom::new("R", vec![Term::int(8), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_none());
    }

    #[test]
    fn comparison_only_variables_stay_unbound() {
        // `z` appears only in a comparison; it must be left as itself and
        // judged against the target context, as apply_comparison would.
        let source = [Atom::new("R", vec![Term::var("x")])];
        let comps = [Comparison::new(Term::var("z"), CmpOp::Ge, Term::int(5))];
        let target = [Atom::new("R", vec![Term::int(1)])];
        let known = [Comparison::new(Term::var("z"), CmpOp::Ge, Term::int(10))];
        let ctx = CmpContext::new(&known);
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &comps,
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let h = find_homomorphism(&p).expect("z >= 10 entails z >= 5");
        assert!(
            h.get("z").is_none(),
            "comparison-only var must stay unbound"
        );
        assert_eq!(h["x"], Term::int(1));
    }

    #[test]
    fn emission_order_matches_target_order_per_relation() {
        // Interleaved relations: candidates for R must come in target order.
        let source = [Atom::new("R", vec![Term::var("x")])];
        let target = [
            Atom::new("S", vec![Term::int(0)]),
            Atom::new("R", vec![Term::int(3)]),
            Atom::new("S", vec![Term::int(9)]),
            Atom::new("R", vec![Term::int(1)]),
            Atom::new("R", vec![Term::int(2)]),
        ];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let xs: Vec<Term> = find_homomorphisms(&p, 10).iter().map(|h| h["x"]).collect();
        assert_eq!(xs, vec![Term::int(3), Term::int(1), Term::int(2)]);
    }

    #[test]
    fn fact_implied_by_exact_duplicate() {
        let fact = Atom::new("R", vec![Term::int(1), Term::int(2)]);
        let rem = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        assert!(fact_implied(&fact, &rem));
    }

    #[test]
    fn fact_with_private_null_implied_by_more_specific_fact() {
        // R(1, sk0) with sk0 private is implied by R(1, 2): the existential
        // "there is some second column for 1" is witnessed by the concrete 2.
        let fact = Atom::new("R", vec![Term::int(1), Term::var("sk0")]);
        let rem = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        assert!(fact_implied(&fact, &rem));
    }

    #[test]
    fn shared_null_is_pinned_to_itself() {
        // sk0 also appears in the remainder (S(sk0)), so R(1, sk0) may only
        // be dropped if R(1, sk0) itself is present — R(1, 2) is not enough,
        // because the remainder still talks about *that* null.
        let fact = Atom::new("R", vec![Term::int(1), Term::var("sk0")]);
        let rem = [
            Atom::new("R", vec![Term::int(1), Term::int(2)]),
            Atom::new("S", vec![Term::var("sk0")]),
        ];
        assert!(!fact_implied(&fact, &rem));
        let rem_with_identity = [
            Atom::new("R", vec![Term::int(1), Term::var("sk0")]),
            Atom::new("S", vec![Term::var("sk0")]),
        ];
        assert!(fact_implied(&fact, &rem_with_identity));
    }

    #[test]
    fn constant_mismatch_is_not_implied() {
        let fact = Atom::new("R", vec![Term::int(1)]);
        let rem = [Atom::new("R", vec![Term::int(2)])];
        assert!(!fact_implied(&fact, &rem));
    }

    #[test]
    fn empty_remainder_never_implies() {
        let fact = Atom::new("R", vec![Term::var("x")]);
        assert!(!fact_implied(&fact, &[]));
    }

    #[test]
    fn generic_fact_not_implied_by_unrelated_relation() {
        let fact = Atom::new("R", vec![Term::var("x")]);
        let rem = [Atom::new("S", vec![Term::int(1)])];
        assert!(!fact_implied(&fact, &rem));
    }
}
