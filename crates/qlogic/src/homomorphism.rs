//! Backtracking homomorphism search.
//!
//! A homomorphism maps the variables of a *source* conjunction onto the
//! terms of a *target* atom set such that every source atom lands on a target
//! atom and every source comparison is entailed by what is known about the
//! target. This single primitive powers query evaluation over instances,
//! containment checking, and view rewriting.

use crate::compare::CmpContext;
use crate::cq::{apply_comparison, Atom, Comparison, Subst, Term};

/// A homomorphism search problem.
pub struct HomProblem<'a> {
    /// Atoms to be mapped.
    pub source_atoms: &'a [Atom],
    /// Comparisons that must hold (under the mapping) in the target.
    pub source_comparisons: &'a [Comparison],
    /// Target atoms (terms may include variables acting as labeled nulls).
    pub target_atoms: &'a [Atom],
    /// Known constraints over the target's terms.
    pub target_ctx: &'a CmpContext,
    /// Required initial bindings (e.g. head preservation).
    pub initial: Subst,
}

/// Finds one homomorphism, if any.
pub fn find_homomorphism(p: &HomProblem<'_>) -> Option<Subst> {
    let mut found = None;
    search(p, &mut |s| {
        found = Some(s.clone());
        true // stop
    });
    found
}

/// Finds up to `limit` homomorphisms.
pub fn find_homomorphisms(p: &HomProblem<'_>, limit: usize) -> Vec<Subst> {
    let mut out = Vec::new();
    if limit == 0 {
        return out;
    }
    search(p, &mut |s| {
        out.push(s.clone());
        out.len() >= limit
    });
    out
}

/// Streams homomorphisms to a callback; the callback returns `true` to stop
/// the search. Lets callers deduplicate projections without materializing
/// every homomorphism first.
pub fn for_each_homomorphism(p: &HomProblem<'_>, emit: &mut dyn FnMut(&Subst) -> bool) {
    search(p, emit);
}

/// Core backtracking search; `emit` returns `true` to stop.
fn search(p: &HomProblem<'_>, emit: &mut dyn FnMut(&Subst) -> bool) {
    // Order source atoms most-constrained-first: more rigid terms and more
    // already-bound variables first. A simple static heuristic (rigid count)
    // works well at our scales.
    let mut order: Vec<usize> = (0..p.source_atoms.len()).collect();
    order.sort_by_key(|&i| {
        let a = &p.source_atoms[i];
        std::cmp::Reverse(a.args.iter().filter(|t| t.is_rigid()).count())
    });
    let mut subst = p.initial.clone();
    let _ = step(p, &order, 0, &mut subst, emit);
}

fn step(
    p: &HomProblem<'_>,
    order: &[usize],
    depth: usize,
    subst: &mut Subst,
    emit: &mut dyn FnMut(&Subst) -> bool,
) -> bool {
    if depth == order.len() {
        // All atoms mapped; verify comparisons.
        for c in p.source_comparisons {
            let mapped = apply_comparison(c, subst);
            if !p.target_ctx.entails(&mapped) {
                return false;
            }
        }
        return emit(subst);
    }
    let atom = &p.source_atoms[order[depth]];
    for target in p.target_atoms {
        if target.relation != atom.relation || target.args.len() != atom.args.len() {
            continue;
        }
        // Try to unify this atom with the target atom.
        let mut added: Vec<String> = Vec::new();
        let mut ok = true;
        for (s, t) in atom.args.iter().zip(&target.args) {
            match s {
                Term::Var(v) => match subst.get(v) {
                    Some(bound) => {
                        if !terms_match(bound, t, p.target_ctx) {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(v.clone(), t.clone());
                        added.push(v.clone());
                    }
                },
                rigid => {
                    if !terms_match(rigid, t, p.target_ctx) {
                        ok = false;
                        break;
                    }
                }
            }
        }
        if ok && step(p, order, depth + 1, subst, emit) {
            return true;
        }
        for v in added {
            subst.remove(&v);
        }
    }
    false
}

/// Whether a mapped source term is compatible with a target term: identical,
/// or provably equal under the target's constraints.
fn terms_match(a: &Term, b: &Term, ctx: &CmpContext) -> bool {
    a == b || ctx.entails(&Comparison::new(a.clone(), crate::cq::CmpOp::Eq, b.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CmpOp;

    fn ctx_empty() -> CmpContext {
        CmpContext::new(&[])
    }

    #[test]
    fn maps_simple_atom() {
        let source = [Atom::new("R", vec![Term::var("x"), Term::var("y")])];
        let target = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let h = find_homomorphism(&p).unwrap();
        assert_eq!(h["x"], Term::int(1));
        assert_eq!(h["y"], Term::int(2));
    }

    #[test]
    fn respects_shared_variables() {
        // R(x, x) cannot map onto R(1, 2).
        let source = [Atom::new("R", vec![Term::var("x"), Term::var("x")])];
        let target = [Atom::new("R", vec![Term::int(1), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_none());
    }

    #[test]
    fn respects_initial_binding() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let target = [
            Atom::new("R", vec![Term::int(1)]),
            Atom::new("R", vec![Term::int(2)]),
        ];
        let ctx = ctx_empty();
        let mut initial = Subst::new();
        initial.insert("x".into(), Term::int(2));
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial,
        };
        let h = find_homomorphism(&p).unwrap();
        assert_eq!(h["x"], Term::int(2));
    }

    #[test]
    fn checks_comparisons_under_mapping() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let comps = [Comparison::new(Term::var("x"), CmpOp::Ge, Term::int(10))];
        let target = [
            Atom::new("R", vec![Term::int(5)]),
            Atom::new("R", vec![Term::int(15)]),
        ];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &comps,
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        let all = find_homomorphisms(&p, 10);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0]["x"], Term::int(15));
    }

    #[test]
    fn comparison_on_labeled_null_uses_context() {
        // Target has R(v) where v >= 60 is known; source needs x >= 18.
        let source = [Atom::new("R", vec![Term::var("x")])];
        let comps = [Comparison::new(Term::var("x"), CmpOp::Ge, Term::int(18))];
        let target = [Atom::new("R", vec![Term::var("v")])];
        let known = [Comparison::new(Term::var("v"), CmpOp::Ge, Term::int(60))];
        let ctx = CmpContext::new(&known);
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &comps,
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_some());
    }

    #[test]
    fn enumerates_all_homomorphisms() {
        let source = [Atom::new("R", vec![Term::var("x")])];
        let target = [
            Atom::new("R", vec![Term::int(1)]),
            Atom::new("R", vec![Term::int(2)]),
            Atom::new("R", vec![Term::int(3)]),
        ];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert_eq!(find_homomorphisms(&p, 100).len(), 3);
        assert_eq!(find_homomorphisms(&p, 2).len(), 2);
    }

    #[test]
    fn rigid_terms_must_match() {
        let source = [Atom::new("R", vec![Term::int(7), Term::var("y")])];
        let target = [Atom::new("R", vec![Term::int(8), Term::int(2)])];
        let ctx = ctx_empty();
        let p = HomProblem {
            source_atoms: &source,
            source_comparisons: &[],
            target_atoms: &target,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        assert!(find_homomorphism(&p).is_none());
    }
}
