//! A global, lock-free-readable symbol interner.
//!
//! Every identifier the logic core touches — variable names, relation names,
//! parameter names, string constants — is interned once into a process-wide
//! append-only table and from then on handled as a [`Sym`]: a `Copy` 4-byte
//! ticket. Equality is a register compare, hashing hashes a `u32`, and the
//! homomorphism search path never clones a heap string.
//!
//! # Layout
//!
//! The id → string direction is a chunked array: chunk *i* holds `64 << i`
//! slots, so 27 chunks cover the whole `u32` id space while an id resolves to
//! its slot with two shifts and no bounds search. Chunks are allocated on
//! demand and published with a CAS; slots are `AtomicPtr<String>` written
//! once (release) and read lock-free (acquire). Nothing is ever moved or
//! freed, so a resolved `&'static str` stays valid for the process lifetime.
//!
//! The string → id direction is 16 writer shards, each a mutex around a
//! `HashMap<&'static str, u32>`. Only interning new-or-unknown strings takes
//! a lock; [`Sym::as_str`] never does.
//!
//! # Ordering
//!
//! `Ord` compares the *resolved strings*, not the ids. This is deliberate:
//! the pre-interning representation ordered terms by their string names, and
//! every `BTreeMap`/`BTreeSet` iteration order, comparison normalization, and
//! printed trace in the workspace depends on that order. Interning is a
//! representation change, not a semantics change — so `Sym` keeps the
//! observable order and pays the string compare only where an order is
//! actually requested. `Eq`/`Hash` use the id (sound because the table is
//! canonical: equal strings always intern to the same id).

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};

/// Writer-side shard count (power of two).
const SHARDS: usize = 16;
/// log2 of the first chunk's capacity: chunk `i` holds `64 << i` slots.
const FIRST_CHUNK_BITS: u32 = 6;
/// 27 doubling chunks cover `64 * (2^27 - 1) > u32::MAX` ids.
const NUM_CHUNKS: usize = 27;

/// id → string chunks. Each entry points at a heap array of
/// `AtomicPtr<String>` slots, published once via CAS.
static CHUNKS: [AtomicPtr<AtomicPtr<String>>; NUM_CHUNKS] =
    [const { AtomicPtr::new(ptr::null_mut()) }; NUM_CHUNKS];

/// Next unassigned id.
static NEXT_ID: AtomicU32 = AtomicU32::new(0);

/// string → id shards (write path only).
static SHARD_MAPS: OnceLock<Vec<Mutex<HashMap<&'static str, u32>>>> = OnceLock::new();

fn shards() -> &'static [Mutex<HashMap<&'static str, u32>>] {
    SHARD_MAPS.get_or_init(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect())
}

/// FNV-1a over the bytes; cheap, deterministic shard selection.
fn shard_index(s: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

/// Maps an id to its (chunk, offset) coordinates.
#[inline]
fn locate(id: u32) -> (usize, usize) {
    let shifted = u64::from(id) + (1 << FIRST_CHUNK_BITS);
    let k = 63 - shifted.leading_zeros() as u64; // floor(log2(shifted))
    let chunk = (k - u64::from(FIRST_CHUNK_BITS)) as usize;
    let offset = (shifted - (1u64 << k)) as usize;
    (chunk, offset)
}

/// Returns chunk `c`'s slot array, allocating and publishing it if absent.
fn chunk_ptr(c: usize) -> *mut AtomicPtr<String> {
    let p = CHUNKS[c].load(Ordering::Acquire);
    if !p.is_null() {
        return p;
    }
    let cap = 1usize << (FIRST_CHUNK_BITS as usize + c);
    let fresh: Box<[AtomicPtr<String>]> =
        (0..cap).map(|_| AtomicPtr::new(ptr::null_mut())).collect();
    let fresh = Box::into_raw(fresh) as *mut AtomicPtr<String>;
    match CHUNKS[c].compare_exchange(ptr::null_mut(), fresh, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => fresh,
        Err(winner) => {
            // Lost the race; free ours and use the published chunk.
            unsafe { drop(Box::from_raw(ptr::slice_from_raw_parts_mut(fresh, cap))) };
            winner
        }
    }
}

/// Interns a string, returning its stable [`Sym`].
///
/// Equal strings always return the same id: the shard lock serializes all
/// writers for a given string (same string → same shard), and the slot store
/// (release) happens before the map insert, so any thread that finds the id
/// in the map — or receives the `Sym` through any synchronizing edge — can
/// resolve it lock-free.
pub fn intern(s: &str) -> Sym {
    let shard = &shards()[shard_index(s)];
    let mut map = shard.lock().unwrap();
    if let Some(&id) = map.get(s) {
        return Sym(id);
    }
    let owned: &'static String = Box::leak(Box::new(String::from(s)));
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    assert!(id < u32::MAX, "symbol interner exhausted");
    let (c, off) = locate(id);
    let chunk = chunk_ptr(c);
    unsafe {
        (*chunk.add(off)).store(owned as *const String as *mut String, Ordering::Release);
    }
    map.insert(owned.as_str(), id);
    Sym(id)
}

/// Resolves an id minted by [`intern`].
fn resolve(id: u32) -> &'static str {
    let (c, off) = locate(id);
    let chunk = CHUNKS[c].load(Ordering::Acquire);
    debug_assert!(!chunk.is_null(), "Sym resolved before its chunk published");
    let p = unsafe { (*chunk.add(off)).load(Ordering::Acquire) };
    debug_assert!(!p.is_null(), "Sym resolved before its slot published");
    unsafe { (*p).as_str() }
}

/// An interned symbol: a `Copy` handle to a process-lifetime string.
///
/// Construct with [`Sym::new`] / [`intern`] / `From<&str>`; resolve with
/// [`Sym::as_str`] (lock-free) or `Display`. See the module docs for why
/// `Ord` is by string while `Eq`/`Hash` are by id.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Sym(u32);

impl Sym {
    /// Interns `s` (or finds it) and returns its symbol.
    pub fn new(s: &str) -> Sym {
        intern(s)
    }

    /// The interned string. Lock-free; valid for the process lifetime.
    #[inline]
    pub fn as_str(self) -> &'static str {
        resolve(self.0)
    }

    /// The raw id — dense, starting at 0, stable for the process lifetime.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Hash for Sym {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Prints like the String it replaced, so derived Debug output of
        // terms and atoms is unchanged by the interning refactor.
        write!(f, "{:?}", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        intern(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        intern(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        intern(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

/// Anything that can name a symbol: `Sym` itself (free), or any string-like
/// (interned on use). Lets shim APIs accept both old and new spellings.
pub trait ToSym {
    /// The symbol for this name.
    fn to_sym(&self) -> Sym;
}

impl ToSym for Sym {
    #[inline]
    fn to_sym(&self) -> Sym {
        *self
    }
}

impl ToSym for str {
    fn to_sym(&self) -> Sym {
        intern(self)
    }
}

impl ToSym for String {
    fn to_sym(&self) -> Sym {
        intern(self)
    }
}

impl<T: ToSym + ?Sized> ToSym for &T {
    #[inline]
    fn to_sym(&self) -> Sym {
        (**self).to_sym()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn interning_is_canonical() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        let c = Sym::new("world");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "hello");
        assert_eq!(c.as_str(), "world");
    }

    #[test]
    fn order_is_by_string_not_id() {
        // Intern in reverse-lexicographic order so ids disagree with strings.
        let z = Sym::new("zzz·order");
        let a = Sym::new("aaa·order");
        assert!(a < z);
        assert!(z > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn mixed_string_comparisons() {
        let s = Sym::new("Events");
        assert!(s == "Events");
        assert!("Events" == s);
        assert!(s == "Events");
        assert!(s != "Attendance");
    }

    #[test]
    fn locate_covers_chunk_boundaries() {
        // Exhaustive over the first chunks plus spot checks far out.
        let mut expect_chunk = 0usize;
        let mut remaining = 64usize;
        for id in 0u32..10_000 {
            let (c, off) = locate(id);
            assert_eq!(c, expect_chunk, "id {id}");
            assert!(off < (64usize << c), "id {id}");
            remaining -= 1;
            if remaining == 0 {
                expect_chunk += 1;
                remaining = 64 << expect_chunk;
            }
        }
        let (c, off) = locate(u32::MAX);
        assert!(c < NUM_CHUNKS);
        assert!(off < (64usize << c));
    }

    /// The satellite concurrency hammer: many writer threads interning
    /// overlapping string sets while reader threads resolve continuously.
    /// Asserts ids are stable, never duplicated for equal strings, and
    /// readable lock-free while writers insert.
    #[test]
    fn hammer_concurrent_intern_and_resolve() {
        const WRITERS: usize = 4;
        const READERS: usize = 2;
        const NAMES: usize = 2_000;
        let names: Arc<Vec<String>> =
            Arc::new((0..NAMES).map(|i| format!("hammer·{}", i)).collect());
        let stop = Arc::new(AtomicBool::new(false));

        let mut writer_handles = Vec::new();
        for w in 0..WRITERS {
            let names = Arc::clone(&names);
            writer_handles.push(std::thread::spawn(move || {
                let mut ids = vec![0u32; NAMES];
                // Each writer walks the set in a different order (strides
                // coprime to NAMES, so every index is visited); all writers
                // must agree on every id.
                let stride = [1usize, 3, 7, 9][w];
                for round in 0..3 {
                    for i in 0..NAMES {
                        let i = (i * stride + round * 7) % NAMES;
                        let sym = intern(&names[i]);
                        assert_eq!(sym.as_str(), names[i], "round-trip");
                        if ids[i] == 0 {
                            ids[i] = sym.id() + 1; // +1: distinguish unset
                        } else {
                            assert_eq!(ids[i], sym.id() + 1, "id must be stable");
                        }
                    }
                }
                ids
            }));
        }

        let mut reader_handles = Vec::new();
        for _ in 0..READERS {
            let names = Arc::clone(&names);
            let stop = Arc::clone(&stop);
            reader_handles.push(std::thread::spawn(move || {
                // Re-intern (mostly hits) and resolve while writers run:
                // every resolution must round-trip, never tear, never block.
                let mut seen = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for name in names.iter().take(256) {
                        let sym = intern(name);
                        assert_eq!(sym.as_str(), name);
                        seen += 1;
                    }
                }
                seen
            }));
        }

        let all_ids: Vec<Vec<u32>> = writer_handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect();
        stop.store(true, Ordering::Relaxed);
        for h in reader_handles {
            assert!(h.join().unwrap() > 0);
        }

        // Every writer observed the same id for every name (no duplicates).
        for ids in &all_ids[1..] {
            assert_eq!(ids, &all_ids[0]);
        }
        // Ids are distinct across distinct names.
        let uniq: HashSet<u32> = all_ids[0].iter().copied().collect();
        assert_eq!(uniq.len(), NAMES);
        // And they all still resolve after the dust settles.
        for (i, name) in names.iter().enumerate() {
            assert_eq!(intern(name).id() + 1, all_ids[0][i]);
        }
    }
}
