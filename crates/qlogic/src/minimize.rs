//! Conjunctive-query minimization (core computation).
//!
//! A CQ's *core* is its smallest equivalent subquery. Minimization matters
//! for readability of extracted policies and for the dedup steps of the
//! mining pipeline: two policies that are textually different often minimize
//! to identical cores.

use std::collections::BTreeSet;

use crate::containment::equivalent;
use crate::cq::Cq;
use crate::sym::Sym;

/// Returns an equivalent query with redundant atoms removed.
///
/// Runs a greedy fixpoint: repeatedly drop any atom whose removal keeps the
/// query safe (every head/comparison variable still occurs in a remaining
/// atom) and equivalent. Greedy removal computes a core for conjunctive
/// queries because equivalence is verified at each step.
pub fn minimize(cq: &Cq) -> Cq {
    let mut current = cq.clone();
    loop {
        let mut improved = false;
        for i in 0..current.atoms.len() {
            let mut candidate = current.clone();
            candidate.atoms.remove(i);
            if !is_safe(&candidate) {
                continue;
            }
            if equivalent(&candidate, &current) {
                current = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            return current;
        }
    }
}

/// Every variable used in the head or comparisons must appear in an atom.
fn is_safe(cq: &Cq) -> bool {
    let atom_vars: BTreeSet<Sym> = cq
        .atoms
        .iter()
        .flat_map(|a| a.args.iter().filter_map(|t| t.as_var()))
        .collect();
    for v in cq.head_vars() {
        if !atom_vars.contains(&v) {
            return false;
        }
    }
    for c in &cq.comparisons {
        for t in [&c.lhs, &c.rhs] {
            if let Some(v) = t.as_var() {
                if !atom_vars.contains(&v) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{Atom, CmpOp, Comparison, Term};

    #[test]
    fn removes_redundant_self_join() {
        // ans(x) :- R(x, y), R(x, z)  minimizes to one atom.
        let q = Cq::new(
            vec![Term::var("x")],
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("y")]),
                Atom::new("R", vec![Term::var("x"), Term::var("z")]),
            ],
            vec![],
        );
        let m = minimize(&q);
        assert_eq!(m.atoms.len(), 1);
        assert!(equivalent(&m, &q));
    }

    #[test]
    fn keeps_genuine_joins() {
        // ans(x) :- R(x, y), S(y): both atoms are needed.
        let q = Cq::new(
            vec![Term::var("x")],
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("y")]),
                Atom::new("S", vec![Term::var("y")]),
            ],
            vec![],
        );
        assert_eq!(minimize(&q).atoms.len(), 2);
    }

    #[test]
    fn keeps_atoms_anchoring_comparisons() {
        // ans() :- R(x, y), R(x, z), z > 5: the z-atom anchors the
        // comparison and must stay.
        let q = Cq::new(
            vec![],
            vec![
                Atom::new("R", vec![Term::var("x"), Term::var("y")]),
                Atom::new("R", vec![Term::var("x"), Term::var("z")]),
            ],
            vec![Comparison::new(Term::var("z"), CmpOp::Gt, Term::int(5))],
        );
        let m = minimize(&q);
        // The y-atom is redundant (it folds onto the z-atom), but the z-atom
        // must survive.
        assert_eq!(m.atoms.len(), 1);
        let zvar = m.comparisons[0].lhs.as_var().unwrap();
        assert!(m.atoms[0].args.iter().any(|t| t.as_var() == Some(zvar)));
    }

    #[test]
    fn triangle_with_constant_folds() {
        // ans() :- E(x, y), E(y, x), E(x, x): the self-loop atom makes the
        // others redundant.
        let q = Cq::new(
            vec![],
            vec![
                Atom::new("E", vec![Term::var("x"), Term::var("y")]),
                Atom::new("E", vec![Term::var("y"), Term::var("x")]),
                Atom::new("E", vec![Term::var("x"), Term::var("x")]),
            ],
            vec![],
        );
        assert_eq!(minimize(&q).atoms.len(), 1);
    }
}
