//! Conjunctive-query logic: the reasoning substrate of `beyond-enforcement`.
//!
//! This crate implements, from scratch, the database-theoretic machinery the
//! HotOS '23 paper "Access Control for Database Applications: Beyond Policy
//! Enforcement" presupposes:
//!
//! * [`sym`] — the global symbol interner every name in the core runs on;
//! * [`cq`] — conjunctive queries (CQs) with comparisons and parameters,
//!   and unions thereof;
//! * [`from_sql`] — translation between the SQL AST and CQs (both ways);
//! * [`compare`] — a sound constraint reasoner for comparison conjunctions;
//! * [`homomorphism`] — backtracking homomorphism search, the shared engine;
//! * [`instance`] — fact sets with labeled nulls (canonical databases);
//! * [`containment`] — containment/equivalence, optionally relative to known
//!   facts (the trace-awareness of the Blockaid-style checker);
//! * [`rewrite`] — MiniCon-style answering-queries-using-views: contained,
//!   maximally-contained, and equivalent rewritings;
//! * [`minimize`] — CQ cores;
//! * [`generalize`] — anti-unification for specification mining;
//! * [`probe`] — thread-local solver work counters (rewrite iterations,
//!   containment calls, homomorphism nodes/backtracks) that introspection
//!   harnesses read at span boundaries.
//!
//! Soundness stance: every positive answer (`contained`, `entails`,
//! rewriting verified) is correct for the full semantics. Completeness is
//! total for pure CQs and partial in the presence of comparisons — the same
//! trade-off Blockaid's decision procedure makes, and the right one for an
//! enforcement setting where "cannot prove" simply means "block".

#![warn(missing_docs)]

pub mod compare;
pub mod containment;
pub mod cq;
pub mod deps;
pub mod error;
pub mod from_sql;
pub mod generalize;
pub mod homomorphism;
pub mod instance;
pub mod minimize;
pub mod probe;
pub mod rewrite;
pub mod sym;

pub use compare::CmpContext;
pub use containment::{
    contained, contained_given, contained_given_deps, contained_in_union, equivalent,
    equivalent_given, satisfiable, union_contained, union_equivalent,
};
pub use cq::{Atom, CVal, CmpOp, Comparison, Cq, Subst, Term, Ucq};
pub use deps::{chase_fds, chase_full, normalize_cq, ChaseOutcome, Dependencies, Fd, Ind};
pub use error::LogicError;
pub use from_sql::{cq_to_sql, sql_to_cq, sql_to_ucq, RelSchema};
pub use generalize::{anti_unify, anti_unify_all, canonicalize_vars, const_to_param};
pub use homomorphism::{
    fact_implied, find_homomorphism, find_homomorphisms, for_each_homomorphism, HomProblem,
};
pub use instance::Instance;
pub use minimize::minimize;
pub use probe::SolverCounters;
pub use rewrite::{
    candidate_view_indices, contained_rewritings, containing_rewritings, equivalent_rewriting,
    equivalent_rewriting_deps, expand, maximally_contained, ViewSet,
};
pub use sym::{intern, Sym, ToSym};
