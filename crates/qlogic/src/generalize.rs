//! Anti-unification: least general generalization of conjunctive queries.
//!
//! The specification-mining side of policy extraction observes many concrete
//! query traces ("`Attendance(1, 2, ·)` was probed", "`Attendance(5, 9, ·)`
//! was probed") and must generalize them into a parameterized view. The core
//! operation is *anti-unification*: positions where two queries agree keep
//! their term; positions where they differ become a shared fresh variable —
//! the same variable wherever the same pair of terms disagrees, which is what
//! preserves join structure.

use std::collections::BTreeMap;

use sqlir::Value;

use crate::cq::{Atom, CVal, Comparison, Cq, Term};
use crate::sym::Sym;

/// Anti-unifies two queries with identical shape (same relation sequence,
/// head arity, and comparison operators). Returns `None` if shapes differ.
pub fn anti_unify(a: &Cq, b: &Cq) -> Option<Cq> {
    if a.head.len() != b.head.len()
        || a.atoms.len() != b.atoms.len()
        || a.comparisons.len() != b.comparisons.len()
    {
        return None;
    }
    for (x, y) in a.atoms.iter().zip(&b.atoms) {
        if x.relation != y.relation || x.args.len() != y.args.len() {
            return None;
        }
    }
    for (x, y) in a.comparisons.iter().zip(&b.comparisons) {
        if x.op != y.op {
            return None;
        }
    }

    let mut pairs: BTreeMap<(Term, Term), Term> = BTreeMap::new();
    let mut fresh = 0usize;
    let mut gen_term = |ta: &Term, tb: &Term| -> Term {
        if ta == tb {
            return *ta;
        }
        *pairs.entry((*ta, *tb)).or_insert_with(|| {
            fresh += 1;
            Term::var(format!("g{fresh}"))
        })
    };

    let head = a
        .head
        .iter()
        .zip(&b.head)
        .map(|(x, y)| gen_term(x, y))
        .collect();
    let atoms = a
        .atoms
        .iter()
        .zip(&b.atoms)
        .map(|(x, y)| {
            Atom::new(
                x.relation,
                x.args
                    .iter()
                    .zip(&y.args)
                    .map(|(s, t)| gen_term(s, t))
                    .collect(),
            )
        })
        .collect();
    let comparisons = a
        .comparisons
        .iter()
        .zip(&b.comparisons)
        .map(|(x, y)| Comparison::new(gen_term(&x.lhs, &y.lhs), x.op, gen_term(&x.rhs, &y.rhs)))
        .collect();

    let mut out = Cq::new(head, atoms, comparisons);
    out.name = a.name;
    Some(out)
}

/// Anti-unifies a whole set of queries left to right.
pub fn anti_unify_all<'a>(queries: impl IntoIterator<Item = &'a Cq>) -> Option<Cq> {
    let mut it = queries.into_iter();
    let mut acc = it.next()?.clone();
    for q in it {
        acc = anti_unify(&acc, q)?;
    }
    Some(acc)
}

/// Replaces every occurrence of a constant with a named parameter.
///
/// Used to re-link session-derived constants (the current user's id) after
/// generalization: a trace issued for user 1 mentions `1` where the view
/// should say `?MyUId`.
pub fn const_to_param(cq: &Cq, value: &Value, param: &str) -> Cq {
    let cval = CVal::from_value(value);
    let map = |t: &Term| -> Term {
        match t {
            Term::Const(c) if *c == cval => Term::param(param),
            other => *other,
        }
    };
    let mut out = Cq::new(
        cq.head.iter().map(map).collect(),
        cq.atoms
            .iter()
            .map(|a| Atom::new(a.relation, a.args.iter().map(map).collect()))
            .collect(),
        cq.comparisons
            .iter()
            .map(|c| Comparison::new(map(&c.lhs), c.op, map(&c.rhs)))
            .collect(),
    );
    out.name = cq.name;
    out
}

/// Renames variables canonically (`v0`, `v1`, …) by first occurrence in the
/// atoms, then the head, then the comparisons.
///
/// Canonical names make structurally-aligned queries from different runs
/// share variable names, so anti-unification only introduces fresh
/// generalization variables where *rigid* terms differ — the signal the
/// mining pipeline cares about.
pub fn canonicalize_vars(cq: &Cq) -> Cq {
    let mut order: Vec<Sym> = Vec::new();
    let push = |t: &Term, order: &mut Vec<Sym>| {
        if let Term::Var(v) = t {
            if !order.contains(v) {
                order.push(*v);
            }
        }
    };
    for a in &cq.atoms {
        for t in &a.args {
            push(t, &mut order);
        }
    }
    for t in &cq.head {
        push(t, &mut order);
    }
    for c in &cq.comparisons {
        push(&c.lhs, &mut order);
        push(&c.rhs, &mut order);
    }
    let subst: crate::cq::Subst = order
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, Term::var(format!("v{i}"))))
        .collect();
    cq.substitute(&subst)
}

/// Counts the rigid (constant or parameter) positions in a query — a rough
/// measure of how specialized it still is.
pub fn rigidity(cq: &Cq) -> usize {
    let head = cq.head.iter().filter(|t| t.is_rigid()).count();
    let atoms: usize = cq
        .atoms
        .iter()
        .map(|a| a.args.iter().filter(|t| t.is_rigid()).count())
        .sum();
    head + atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_query(u: i64, e: i64) -> Cq {
        // ans(1) :- Attendance(u, e, n) for concrete u, e.
        Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(u), Term::int(e), Term::var("n")],
            )],
            vec![],
        )
    }

    #[test]
    fn generalizes_differing_constants() {
        let g = anti_unify(&trace_query(1, 2), &trace_query(5, 9)).unwrap();
        // Both constants became (distinct) variables.
        assert!(matches!(g.atoms[0].args[0], Term::Var(_)));
        assert!(matches!(g.atoms[0].args[1], Term::Var(_)));
        assert_ne!(g.atoms[0].args[0], g.atoms[0].args[1]);
        // The head constant was shared, so it stays.
        assert_eq!(g.head[0], Term::int(1));
    }

    #[test]
    fn preserves_shared_constants() {
        let g = anti_unify(&trace_query(1, 2), &trace_query(1, 9)).unwrap();
        assert_eq!(g.atoms[0].args[0], Term::int(1), "same user stays concrete");
        assert!(matches!(g.atoms[0].args[1], Term::Var(_)));
    }

    #[test]
    fn same_pair_gets_same_variable() {
        // ans(x) :- R(1, 1) vs ans(x) :- R(2, 2): both positions disagree
        // with the same (1,2) pair, so they share one variable — preserving
        // the join structure R(v, v).
        let a = Cq::new(
            vec![],
            vec![Atom::new("R", vec![Term::int(1), Term::int(1)])],
            vec![],
        );
        let b = Cq::new(
            vec![],
            vec![Atom::new("R", vec![Term::int(2), Term::int(2)])],
            vec![],
        );
        let g = anti_unify(&a, &b).unwrap();
        assert_eq!(g.atoms[0].args[0], g.atoms[0].args[1]);
    }

    #[test]
    fn shape_mismatch_fails() {
        let a = Cq::new(vec![], vec![Atom::new("R", vec![Term::int(1)])], vec![]);
        let b = Cq::new(vec![], vec![Atom::new("S", vec![Term::int(1)])], vec![]);
        assert!(anti_unify(&a, &b).is_none());
    }

    #[test]
    fn const_to_param_rewrites_all_occurrences() {
        let q = trace_query(1, 2);
        let p = const_to_param(&q, &Value::Int(1), "MyUId");
        assert_eq!(p.atoms[0].args[0], Term::param("MyUId"));
        // The head constant 1 also matches the value and is rewritten; the
        // caller chooses session values that don't collide with literals, or
        // accepts the over-approximation.
        assert_eq!(p.head[0], Term::param("MyUId"));
    }

    #[test]
    fn anti_unify_all_folds() {
        let g =
            anti_unify_all([&trace_query(1, 2), &trace_query(1, 3), &trace_query(1, 4)]).unwrap();
        assert_eq!(g.atoms[0].args[0], Term::int(1));
        assert!(matches!(g.atoms[0].args[1], Term::Var(_)));
    }

    #[test]
    fn rigidity_counts() {
        assert_eq!(rigidity(&trace_query(1, 2)), 3); // head 1 + two consts
    }
}
