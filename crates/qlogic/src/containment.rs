//! Query containment and equivalence.
//!
//! The classical canonical-database test: `Q₁ ⊆ Q₂` iff there is a
//! homomorphism from `Q₂` into the frozen body of `Q₁` that preserves the
//! head. For pure conjunctive queries the test is sound and complete; with
//! comparison atoms it is sound (a `true` answer is always correct) but may
//! miss containments that require case analysis over the orderings of the
//! frozen variables — the standard trade-off practical systems make.
//!
//! All checks take an optional set of *known facts*: `contained_given(q1,
//! q2, facts)` decides `Q₁ ⊆ Q₂` over databases that contain the facts,
//! which is how trace-derived knowledge ("`Attendance(1, 2, ·)` exists")
//! enters the enforcement decision.

use crate::compare::CmpContext;
use crate::cq::{Atom, Cq, Subst, Term, Ucq};
use crate::deps::{chase_full, ChaseOutcome, Dependencies};
use crate::homomorphism::{find_homomorphism, HomProblem};
use crate::instance::Instance;

/// Decides `q1 ⊆ q2` (over all databases).
pub fn contained(q1: &Cq, q2: &Cq) -> bool {
    contained_given(q1, q2, &[])
}

/// Decides `q1 ⊆ q2` over all databases containing `facts`.
///
/// Fact atoms may contain variables, which act as labeled nulls (unknown
/// witness values).
pub fn contained_given(q1: &Cq, q2: &Cq, facts: &[Atom]) -> bool {
    contained_given_deps(q1, q2, facts, &Dependencies::none())
}

/// Decides `q1 ⊆ q2` over all databases that contain `facts` *and satisfy
/// the key dependencies*.
///
/// The canonical database (frozen `q1` plus facts) is saturated with the
/// FD chase before the homomorphism test, so equalities the keys force
/// (e.g. two `Posts` atoms sharing a primary key are the same row) are
/// visible to the containment argument.
pub fn contained_given_deps(q1: &Cq, q2: &Cq, facts: &[Atom], deps: &Dependencies) -> bool {
    crate::probe::bump_containment_check();
    if q1.head.len() != q2.head.len() {
        return false;
    }
    // Rename q1 and the facts apart from q2 so variable names cannot clash.
    let mut q1r = q1.rename_vars("l·");
    let facts_r: Vec<Atom> = facts
        .iter()
        .map(|a| {
            let mut renamed = a.clone();
            for t in &mut renamed.args {
                if let Term::Var(v) = t {
                    *t = Term::var(format!("f·{v}"));
                }
            }
            renamed
        })
        .collect();

    // Target: frozen q1 plus the known facts, saturated under the keys.
    let mut target_atoms = q1r.atoms.clone();
    target_atoms.extend(facts_r);
    if !deps.is_empty() {
        match chase_full(&target_atoms, deps) {
            ChaseOutcome::Consistent { atoms, subst } => {
                target_atoms = atoms;
                // The chase's unifications apply to q1's head/comparisons.
                q1r = q1r.substitute(&subst);
            }
            ChaseOutcome::Inconsistent => {
                // No database satisfies q1 together with the facts and keys;
                // containment holds vacuously.
                return true;
            }
        }
    }
    let ctx = CmpContext::new(&q1r.comparisons);
    if ctx.is_unsat() {
        // q1 is unsatisfiable; the empty query is contained in anything.
        return true;
    }

    // Head preservation: q2.head[i] must map to q1.head[i].
    let mut initial = Subst::new();
    for (h2, h1) in q2.head.iter().zip(&q1r.head) {
        match h2 {
            Term::Var(v) => match initial.get(v) {
                Some(bound) if bound != h1 => return false,
                Some(_) => {}
                None => {
                    initial.insert(*v, *h1);
                }
            },
            rigid => {
                let eq = crate::cq::Comparison::new(*rigid, crate::cq::CmpOp::Eq, *h1);
                if rigid != h1 && !ctx.entails(&eq) {
                    return false;
                }
            }
        }
    }

    let p = HomProblem {
        source_atoms: &q2.atoms,
        source_comparisons: &q2.comparisons,
        target_atoms: &target_atoms,
        target_ctx: &ctx,
        initial,
    };
    find_homomorphism(&p).is_some()
}

/// Decides `q1 ≡ q2` (mutual containment).
pub fn equivalent(q1: &Cq, q2: &Cq) -> bool {
    contained(q1, q2) && contained(q2, q1)
}

/// Decides `q1 ≡ q2` over databases containing `facts`.
pub fn equivalent_given(q1: &Cq, q2: &Cq, facts: &[Atom]) -> bool {
    contained_given(q1, q2, facts) && contained_given(q2, q1, facts)
}

/// Decides `q ⊆ u` for a CQ against a union (Sagiv–Yannakakis: for pure CQs
/// this per-disjunct test is complete).
pub fn contained_in_union(q: &Cq, u: &Ucq) -> bool {
    u.disjuncts.iter().any(|d| contained(q, d))
}

/// Decides `u1 ⊆ u2` disjunct-wise.
pub fn union_contained(u1: &Ucq, u2: &Ucq) -> bool {
    u1.disjuncts.iter().all(|d| contained_in_union(d, u2))
}

/// Decides `u1 ≡ u2` via mutual union containment.
pub fn union_equivalent(u1: &Ucq, u2: &Ucq) -> bool {
    union_contained(u1, u2) && union_contained(u2, u1)
}

/// `true` if the query can return at least one tuple on some database
/// (its comparisons are not definitely contradictory).
pub fn satisfiable(q: &Cq) -> bool {
    !CmpContext::new(&q.comparisons).is_unsat()
}

/// `true` if the query returns a tuple on some database *containing the
/// facts* — same as [`satisfiable`] for monotone queries, but exposed for
/// symmetry and readability at call sites.
pub fn satisfiable_given(q: &Cq, facts: &[Atom]) -> bool {
    let _ = facts;
    satisfiable(q)
}

/// Evaluates a query over a ground instance and another frozen query — a
/// helper re-export point so higher layers need only this module.
pub fn holds_on(instance: &Instance, q: &Cq) -> bool {
    instance.satisfies(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{CmpOp, Comparison};

    fn atom(rel: &str, args: Vec<Term>) -> Atom {
        Atom::new(rel, args)
    }

    #[test]
    fn classic_containment() {
        // q1: ans(x) :- R(x, y), R(y, x)   (paths of length 2 back to x)
        // q2: ans(x) :- R(x, y)            (any out-edge)
        let q1 = Cq::new(
            vec![Term::var("x")],
            vec![
                atom("R", vec![Term::var("x"), Term::var("y")]),
                atom("R", vec![Term::var("y"), Term::var("x")]),
            ],
            vec![],
        );
        let q2 = Cq::new(
            vec![Term::var("x")],
            vec![atom("R", vec![Term::var("x"), Term::var("y")])],
            vec![],
        );
        assert!(contained(&q1, &q2));
        assert!(!contained(&q2, &q1));
        assert!(!equivalent(&q1, &q2));
    }

    #[test]
    fn self_join_collapse_equivalence() {
        // ans() :- R(x, y), R(x, z)  ≡  ans() :- R(x, y)
        let q1 = Cq::new(
            vec![],
            vec![
                atom("R", vec![Term::var("x"), Term::var("y")]),
                atom("R", vec![Term::var("x"), Term::var("z")]),
            ],
            vec![],
        );
        let q2 = Cq::new(
            vec![],
            vec![atom("R", vec![Term::var("x"), Term::var("y")])],
            vec![],
        );
        assert!(equivalent(&q1, &q2));
    }

    #[test]
    fn constants_restrict() {
        let q1 = Cq::new(vec![], vec![atom("R", vec![Term::int(1)])], vec![]);
        let q2 = Cq::new(vec![], vec![atom("R", vec![Term::var("x")])], vec![]);
        assert!(contained(&q1, &q2));
        assert!(!contained(&q2, &q1));
    }

    #[test]
    fn example_4_2_comparisons() {
        // Q1: ans(n) :- Employees(n, a), a >= 60
        // Q2: ans(n) :- Employees(n, a), a >= 18
        // Q1 ⊆ Q2 because 60 >= 18.
        let q1 = Cq::new(
            vec![Term::var("n")],
            vec![atom("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        let q2 = Cq::new(
            vec![Term::var("n")],
            vec![atom("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
        );
        assert!(contained(&q1, &q2));
        assert!(!contained(&q2, &q1));
    }

    #[test]
    fn containment_given_facts_example_2_1() {
        // Q2: ans(t, k) :- Events(2, t, k)
        // E : ans(t, k) :- Events(e, t, k), Attendance(1, e, n), e = 2
        //     (normalized: Events(2, t, k), Attendance(1, 2, n))
        // Without facts, Q2 ⊄ E; with the trace fact Attendance(1, 2, w),
        // Q2 ⊆_F E.
        let q2 = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![atom(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let e = Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![
                atom("Events", vec![Term::int(2), Term::var("t"), Term::var("k")]),
                atom(
                    "Attendance",
                    vec![Term::int(1), Term::int(2), Term::var("n")],
                ),
            ],
            vec![],
        );
        assert!(contained(&e, &q2));
        assert!(!contained(&q2, &e));
        let fact = atom(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        assert!(contained_given(&q2, &e, std::slice::from_ref(&fact)));
        assert!(equivalent_given(&q2, &e, std::slice::from_ref(&fact)));
    }

    #[test]
    fn head_constant_handling() {
        // ans(1) :- R(x)  vs  ans(y) :- R(y): the constant head is contained
        // only if the head positions align.
        let q1 = Cq::new(
            vec![Term::int(1)],
            vec![atom("R", vec![Term::var("x")])],
            vec![],
        );
        let q2 = Cq::new(
            vec![Term::var("y")],
            vec![atom("R", vec![Term::var("y")])],
            vec![],
        );
        // q1 ⊆ q2 would need y ↦ 1 while R(y) maps into frozen R(x): y must
        // be both 1 (head) and x (atom) — fails.
        assert!(!contained(&q1, &q2));
        // But ans(1) :- R(1) is contained in ans(y) :- R(y).
        let q3 = Cq::new(
            vec![Term::int(1)],
            vec![atom("R", vec![Term::int(1)])],
            vec![],
        );
        assert!(contained(&q3, &q2));
    }

    #[test]
    fn unsatisfiable_query_contained_in_all() {
        let bot = Cq::new(
            vec![],
            vec![atom("R", vec![Term::var("x")])],
            vec![Comparison::new(Term::var("x"), CmpOp::Lt, Term::var("x"))],
        );
        let any = Cq::new(vec![], vec![atom("S", vec![Term::var("z")])], vec![]);
        assert!(contained(&bot, &any));
        assert!(!satisfiable(&bot));
    }

    #[test]
    fn union_containment() {
        // ans(x) :- R(x), x = 1  and  ans(x) :- R(x), x = 2  are each
        // contained in ans(x) :- R(x).
        let d1 = Cq::new(
            vec![Term::int(1)],
            vec![atom("R", vec![Term::int(1)])],
            vec![],
        );
        let d2 = Cq::new(
            vec![Term::int(2)],
            vec![atom("R", vec![Term::int(2)])],
            vec![],
        );
        let top = Cq::new(
            vec![Term::var("x")],
            vec![atom("R", vec![Term::var("x")])],
            vec![],
        );
        let u = Ucq {
            disjuncts: vec![d1, d2],
        };
        assert!(union_contained(&u, &Ucq::single(top.clone())));
        assert!(!union_contained(&Ucq::single(top), &u));
    }

    #[test]
    fn params_block_containment_without_binding() {
        // ans() :- R(?A)  vs ans() :- R(?B): parameters are distinguished
        // constants, so neither contains the other.
        let qa = Cq::new(vec![], vec![atom("R", vec![Term::param("A")])], vec![]);
        let qb = Cq::new(vec![], vec![atom("R", vec![Term::param("B")])], vec![]);
        assert!(!contained(&qa, &qb));
        assert!(contained(&qa, &qa));
    }
}
