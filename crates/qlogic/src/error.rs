//! Error types for the logic crate.

use std::fmt;

/// Errors from query translation and logical operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// The SQL query falls outside the conjunctive fragment.
    OutOfFragment(String),
    /// The query mentions a table or column the schema lacks.
    UnknownSymbol(String),
    /// A disjunctive expansion exceeded the configured bound.
    TooManyDisjuncts(usize),
    /// An internal invariant failed (reported, never panicked on).
    Internal(String),
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::OutOfFragment(what) => {
                write!(f, "query outside the conjunctive fragment: {what}")
            }
            LogicError::UnknownSymbol(s) => write!(f, "unknown symbol: {s}"),
            LogicError::TooManyDisjuncts(n) => {
                write!(f, "disjunctive expansion produced more than {n} disjuncts")
            }
            LogicError::Internal(msg) => write!(f, "internal logic error: {msg}"),
        }
    }
}

impl std::error::Error for LogicError {}
