//! Conjunctive queries with comparisons and parameters.
//!
//! A [`Cq`] is a query of the form
//!
//! ```text
//! ans(t̄) :- R₁(ū₁), …, Rₙ(ūₙ), c₁, …, cₘ
//! ```
//!
//! where each `Rᵢ` is a relational atom over variables, constants, and
//! *parameters* (distinguished constants such as `?MyUId` that stand for
//! session values), and each `cⱼ` is a comparison (`<`, `<=`, `<>`, …).
//! Equality conjuncts are normalized away by substitution, so a well-formed
//! `Cq` has no `=` comparisons.
//!
//! Unions of conjunctive queries ([`Ucq`]) represent `OR` and `IN`-list
//! queries.

use std::collections::BTreeMap;
use std::fmt;

use sqlir::Value;

/// A term: variable, constant, or named parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable (existential unless it appears in the head).
    Var(String),
    /// A constant value.
    Const(Value),
    /// A named parameter, treated as a distinguished constant.
    Param(String),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }

    /// Convenience constructor for a string constant.
    pub fn str(v: impl Into<String>) -> Term {
        Term::Const(Value::Str(v.into()))
    }

    /// Convenience constructor for a parameter.
    pub fn param(name: impl Into<String>) -> Term {
        Term::Param(name.into())
    }

    /// Returns the variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            _ => None,
        }
    }

    /// `true` if the term is a constant or parameter (rigid under
    /// homomorphisms).
    pub fn is_rigid(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.to_sql_literal()),
            Term::Param(p) => write!(f, "?{p}"),
        }
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation (table) name.
    pub relation: String,
    /// Argument terms, one per column.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, args: Vec<Term>) -> Atom {
        Atom {
            relation: relation.into(),
            args,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Comparison operators (equality is normalized away in `Cq` bodies but may
/// appear transiently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=` (only transient; normalized by substitution).
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// The operator with operand order swapped.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the operator on two concrete values (three-valued: `None`
    /// if either side is `NULL`).
    pub fn eval(self, a: &Value, b: &Value) -> Option<bool> {
        use std::cmp::Ordering::*;
        let ord = a.sql_cmp(b)?;
        Some(match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        })
    }
}

/// A comparison constraint between two terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Comparison {
        Comparison { lhs, op, rhs }
    }

    /// Canonical form: constants on the right where possible, and ordered
    /// operands for symmetric operators.
    pub fn normalized(&self) -> Comparison {
        let mut c = self.clone();
        let should_flip = match (&c.lhs, &c.rhs) {
            (l, Term::Var(_)) if l.is_rigid() => true,
            _ => matches!(c.op, CmpOp::Ne | CmpOp::Eq) && c.lhs > c.rhs,
        };
        if should_flip {
            std::mem::swap(&mut c.lhs, &mut c.rhs);
            c.op = c.op.flipped();
        }
        c
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A substitution from variable names to terms.
pub type Subst = BTreeMap<String, Term>;

/// Applies a substitution to a term.
pub fn apply_term(t: &Term, s: &Subst) -> Term {
    match t {
        Term::Var(v) => s.get(v).cloned().unwrap_or_else(|| t.clone()),
        _ => t.clone(),
    }
}

/// Applies a substitution to an atom.
pub fn apply_atom(a: &Atom, s: &Subst) -> Atom {
    Atom {
        relation: a.relation.clone(),
        args: a.args.iter().map(|t| apply_term(t, s)).collect(),
    }
}

/// Applies a substitution to a comparison.
pub fn apply_comparison(c: &Comparison, s: &Subst) -> Comparison {
    Comparison {
        lhs: apply_term(&c.lhs, s),
        op: c.op,
        rhs: apply_term(&c.rhs, s),
    }
}

/// A conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    /// Optional name (set for views; `ans` when printed otherwise).
    pub name: Option<String>,
    /// Head (distinguished) terms.
    pub head: Vec<Term>,
    /// Relational atoms.
    pub atoms: Vec<Atom>,
    /// Comparison constraints (no `Eq` after normalization).
    pub comparisons: Vec<Comparison>,
}

impl Cq {
    /// Creates a query with the given parts.
    pub fn new(head: Vec<Term>, atoms: Vec<Atom>, comparisons: Vec<Comparison>) -> Cq {
        Cq {
            name: None,
            head,
            atoms,
            comparisons,
        }
    }

    /// All variables appearing anywhere, in first-occurrence order.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for c in &self.comparisons {
            push(&c.lhs);
            push(&c.rhs);
        }
        out
    }

    /// Variables appearing in the head.
    pub fn head_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.head {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }

    /// Named parameters mentioned anywhere.
    pub fn params(&self) -> Vec<String> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Param(p) = t {
                if !out.contains(p) {
                    out.push(p.clone());
                }
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for c in &self.comparisons {
            push(&c.lhs);
            push(&c.rhs);
        }
        out
    }

    /// Applies a substitution to the whole query.
    pub fn substitute(&self, s: &Subst) -> Cq {
        Cq {
            name: self.name.clone(),
            head: self.head.iter().map(|t| apply_term(t, s)).collect(),
            atoms: self.atoms.iter().map(|a| apply_atom(a, s)).collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| apply_comparison(c, s))
                .collect(),
        }
    }

    /// Replaces parameters with constant values (instantiating a view for a
    /// session). Unlisted parameters are left in place.
    pub fn instantiate(&self, bindings: &[(String, Value)]) -> Cq {
        let map_term = |t: &Term| -> Term {
            if let Term::Param(p) = t {
                if let Some((_, v)) = bindings.iter().find(|(n, _)| n == p) {
                    return Term::Const(v.clone());
                }
            }
            t.clone()
        };
        Cq {
            name: self.name.clone(),
            head: self.head.iter().map(map_term).collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom {
                    relation: a.relation.clone(),
                    args: a.args.iter().map(map_term).collect(),
                })
                .collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| Comparison {
                    lhs: map_term(&c.lhs),
                    op: c.op,
                    rhs: map_term(&c.rhs),
                })
                .collect(),
        }
    }

    /// Renames every variable with a prefix, avoiding capture when mixing
    /// queries in one namespace.
    pub fn rename_vars(&self, prefix: &str) -> Cq {
        let s: Subst = self
            .variables()
            .into_iter()
            .map(|v| (v.clone(), Term::Var(format!("{prefix}{v}"))))
            .collect();
        self.substitute(&s)
    }

    /// `true` if the query has no relational atoms.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name.as_deref().unwrap_or("ans"))?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(") :- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.comparisons {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        if first {
            f.write_str("true")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries (all disjuncts share head arity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Wraps a single CQ.
    pub fn single(cq: Cq) -> Ucq {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// The head arity shared by all disjuncts (0 if empty).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map(|c| c.head.len()).unwrap_or(0)
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str("\n∪ ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cq {
        // ans(u, t) :- Attendance(u, e, n), Events(e, t, k), u <> 3
        Cq::new(
            vec![Term::var("u"), Term::var("t")],
            vec![
                Atom::new(
                    "Attendance",
                    vec![Term::var("u"), Term::var("e"), Term::var("n")],
                ),
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
            ],
            vec![Comparison::new(Term::var("u"), CmpOp::Ne, Term::int(3))],
        )
    }

    #[test]
    fn variable_collection_in_order() {
        assert_eq!(sample().variables(), vec!["u", "t", "e", "n", "k"]);
        assert_eq!(sample().head_vars(), vec!["u", "t"]);
    }

    #[test]
    fn substitution_applies_everywhere() {
        let mut s = Subst::new();
        s.insert("u".into(), Term::int(7));
        let q = sample().substitute(&s);
        assert_eq!(q.head[0], Term::int(7));
        assert_eq!(q.atoms[0].args[0], Term::int(7));
        assert_eq!(q.comparisons[0].lhs, Term::int(7));
    }

    #[test]
    fn instantiate_replaces_params() {
        let q = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        let inst = q.instantiate(&[("MyUId".into(), Value::Int(1))]);
        assert_eq!(inst.atoms[0].args[0], Term::int(1));
        assert!(inst.params().is_empty());
    }

    #[test]
    fn rename_avoids_collisions() {
        let q = sample().rename_vars("x_");
        assert_eq!(q.variables(), vec!["x_u", "x_t", "x_e", "x_n", "x_k"]);
    }

    #[test]
    fn display_is_readable() {
        let s = sample().to_string();
        assert!(s.starts_with("ans(u, t) :- Attendance(u, e, n)"), "{s}");
        assert!(s.contains("u <> 3"));
    }

    #[test]
    fn comparison_normalization() {
        // const < var flips to var > const.
        let c = Comparison::new(Term::int(3), CmpOp::Lt, Term::var("x")).normalized();
        assert_eq!(c, Comparison::new(Term::var("x"), CmpOp::Gt, Term::int(3)));
        // symmetric ops order operands.
        let c = Comparison::new(Term::var("y"), CmpOp::Ne, Term::var("x")).normalized();
        assert_eq!(
            c,
            Comparison::new(Term::var("x"), CmpOp::Ne, Term::var("y"))
        );
    }

    #[test]
    fn cmp_op_eval() {
        assert_eq!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)), Some(true));
        assert_eq!(
            CmpOp::Ge.eval(&Value::str("b"), &Value::str("a")),
            Some(true)
        );
        assert_eq!(CmpOp::Eq.eval(&Value::Null, &Value::Int(1)), None);
    }
}
