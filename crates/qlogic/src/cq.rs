//! Conjunctive queries with comparisons and parameters.
//!
//! A [`Cq`] is a query of the form
//!
//! ```text
//! ans(t̄) :- R₁(ū₁), …, Rₙ(ūₙ), c₁, …, cₘ
//! ```
//!
//! where each `Rᵢ` is a relational atom over variables, constants, and
//! *parameters* (distinguished constants such as `?MyUId` that stand for
//! session values), and each `cⱼ` is a comparison (`<`, `<=`, `<>`, …).
//! Equality conjuncts are normalized away by substitution, so a well-formed
//! `Cq` has no `=` comparisons.
//!
//! Unions of conjunctive queries ([`Ucq`]) represent `OR` and `IN`-list
//! queries.
//!
//! All names — variables, parameters, relations, string constants — are
//! interned [`Sym`]s, so a [`Term`] is a 16-byte `Copy` value and the
//! homomorphism search never touches the heap per candidate binding. The
//! string-based constructors (`Term::var("x")`, `Atom::new("R", …)`) remain
//! as thin shims over the interner.

use std::fmt;

use sqlir::Value;

use crate::sym::{Sym, ToSym};

/// A constant value with interned string payloads: the `Copy` twin of
/// [`sqlir::Value`] used inside terms.
///
/// Conversion: [`CVal::from_value`] / [`CVal::to_value`]. Ordering matches
/// [`Value::total_cmp`] (`Null < Int < Str < Bool`, strings by content), so
/// normalization and every sorted container behave exactly as before the
/// interning refactor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CVal {
    /// The SQL `NULL`.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// An interned UTF-8 string.
    Str(Sym),
    /// A boolean.
    Bool(bool),
}

impl CVal {
    /// Interns a [`Value`] into its compact form.
    pub fn from_value(v: &Value) -> CVal {
        match v {
            Value::Null => CVal::Null,
            Value::Int(i) => CVal::Int(*i),
            Value::Str(s) => CVal::Str(Sym::new(s)),
            Value::Bool(b) => CVal::Bool(*b),
        }
    }

    /// Expands back into a [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            CVal::Null => Value::Null,
            CVal::Int(i) => Value::Int(i),
            CVal::Str(s) => Value::Str(s.as_str().to_string()),
            CVal::Bool(b) => Value::Bool(b),
        }
    }

    /// `true` if the value is `NULL`.
    pub fn is_null(self) -> bool {
        matches!(self, CVal::Null)
    }

    /// Total order over all values; mirrors [`Value::total_cmp`].
    pub fn total_cmp(&self, other: &CVal) -> std::cmp::Ordering {
        fn rank(v: &CVal) -> u8 {
            match v {
                CVal::Null => 0,
                CVal::Int(_) => 1,
                CVal::Str(_) => 2,
                CVal::Bool(_) => 3,
            }
        }
        match (self, other) {
            (CVal::Null, CVal::Null) => std::cmp::Ordering::Equal,
            (CVal::Int(a), CVal::Int(b)) => a.cmp(b),
            (CVal::Str(a), CVal::Str(b)) => a.cmp(b),
            (CVal::Bool(a), CVal::Bool(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL three-valued comparison: any `NULL` operand yields `None`.
    pub fn sql_cmp(&self, other: &CVal) -> Option<std::cmp::Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Renders the value as a SQL literal (strings quoted and escaped);
    /// byte-identical to [`Value::to_sql_literal`].
    pub fn to_sql_literal(self) -> String {
        match self {
            CVal::Null => "NULL".to_string(),
            CVal::Int(i) => i.to_string(),
            CVal::Str(s) => format!("'{}'", s.as_str().replace('\'', "''")),
            CVal::Bool(b) => if b { "TRUE" } else { "FALSE" }.to_string(),
        }
    }
}

impl PartialOrd for CVal {
    fn partial_cmp(&self, other: &CVal) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CVal {
    fn cmp(&self, other: &CVal) -> std::cmp::Ordering {
        self.total_cmp(other)
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Null => f.write_str("NULL"),
            CVal::Int(i) => write!(f, "{i}"),
            CVal::Str(s) => f.write_str(s.as_str()),
            CVal::Bool(b) => f.write_str(if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<&Value> for CVal {
    fn from(v: &Value) -> CVal {
        CVal::from_value(v)
    }
}

impl From<Value> for CVal {
    fn from(v: Value) -> CVal {
        CVal::from_value(&v)
    }
}

/// A term: variable, constant, or named parameter. `Copy` and 16 bytes:
/// binding one during homomorphism search is a register move.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable (existential unless it appears in the head).
    Var(Sym),
    /// A constant value.
    Const(CVal),
    /// A named parameter, treated as a distinguished constant.
    Param(Sym),
}

impl Term {
    /// Convenience constructor for a variable.
    pub fn var(name: impl ToSym) -> Term {
        Term::Var(name.to_sym())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(v: i64) -> Term {
        Term::Const(CVal::Int(v))
    }

    /// Convenience constructor for a string constant.
    pub fn str(v: impl ToSym) -> Term {
        Term::Const(CVal::Str(v.to_sym()))
    }

    /// Convenience constructor for a constant from a runtime [`Value`].
    pub fn constant(v: &Value) -> Term {
        Term::Const(CVal::from_value(v))
    }

    /// Convenience constructor for a parameter.
    pub fn param(name: impl ToSym) -> Term {
        Term::Param(name.to_sym())
    }

    /// Returns the variable symbol, if this is a variable.
    pub fn as_var(&self) -> Option<Sym> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// `true` if the term is a constant or parameter (rigid under
    /// homomorphisms).
    pub fn is_rigid(&self) -> bool {
        !matches!(self, Term::Var(_))
    }
}

impl PartialOrd for Term {
    fn partial_cmp(&self, other: &Term) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Term {
    // Matches the pre-interning derived order: Var < Const < Param, names by
    // string content. Comparison normalization and BTree iteration depend on
    // this order being unchanged.
    fn cmp(&self, other: &Term) -> std::cmp::Ordering {
        fn rank(t: &Term) -> u8 {
            match t {
                Term::Var(_) => 0,
                Term::Const(_) => 1,
                Term::Param(_) => 2,
            }
        }
        match (self, other) {
            (Term::Var(a), Term::Var(b)) => a.cmp(b),
            (Term::Const(a), Term::Const(b)) => a.total_cmp(b),
            (Term::Param(a), Term::Param(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.to_sql_literal()),
            Term::Param(p) => write!(f, "?{p}"),
        }
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation (table) name.
    pub relation: Sym,
    /// Argument terms, one per column.
    pub args: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl ToSym, args: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_sym(),
            args,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

/// Comparison operators (equality is normalized away in `Cq` bodies but may
/// appear transiently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=` (only transient; normalized by substitution).
    Eq,
    /// `<>`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// The operator with operand order swapped.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the operator on two interned values (three-valued: `None`
    /// if either side is `NULL`).
    pub fn eval(self, a: &CVal, b: &CVal) -> Option<bool> {
        use std::cmp::Ordering::*;
        let ord = a.sql_cmp(b)?;
        Some(match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        })
    }

    /// Evaluates the operator on two runtime [`Value`]s.
    pub fn eval_values(self, a: &Value, b: &Value) -> Option<bool> {
        self.eval(&CVal::from_value(a), &CVal::from_value(b))
    }
}

/// A comparison constraint between two terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// Left term.
    pub lhs: Term,
    /// Operator.
    pub op: CmpOp,
    /// Right term.
    pub rhs: Term,
}

impl Comparison {
    /// Creates a comparison.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Comparison {
        Comparison { lhs, op, rhs }
    }

    /// Canonical form: constants on the right where possible, and ordered
    /// operands for symmetric operators.
    pub fn normalized(&self) -> Comparison {
        let mut c = *self;
        let should_flip = match (&c.lhs, &c.rhs) {
            (l, Term::Var(_)) if l.is_rigid() => true,
            _ => matches!(c.op, CmpOp::Ne | CmpOp::Eq) && c.lhs > c.rhs,
        };
        if should_flip {
            std::mem::swap(&mut c.lhs, &mut c.rhs);
            c.op = c.op.flipped();
        }
        c
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op.symbol(), self.rhs)
    }
}

/// A substitution from variables to terms.
///
/// Stored as a flat `Vec` of `(Sym, Term)` pairs in insertion order — the
/// entry count in this workspace is a handful of variables, where a linear
/// id scan over `Copy` pairs beats a `BTreeMap<String, Term>` walk by a wide
/// margin and allocates nothing on clone beyond one `Vec`.
///
/// Keys accept anything [`ToSym`], so `s.get("x")`, `s.get(&sym)`, and
/// `s["x"]` all work. Equality is set-like (insertion order does not
/// matter), matching the old map semantics.
#[derive(Clone, Default)]
pub struct Subst {
    entries: Vec<(Sym, Term)>,
}

impl Subst {
    /// An empty substitution.
    pub fn new() -> Subst {
        Subst {
            entries: Vec::new(),
        }
    }

    /// An empty substitution with room for `cap` bindings.
    pub fn with_capacity(cap: usize) -> Subst {
        Subst {
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no bindings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a binding.
    pub fn get<K: ToSym + ?Sized>(&self, key: &K) -> Option<&Term> {
        let k = key.to_sym();
        self.entries
            .iter()
            .find(|(s, _)| s.id() == k.id())
            .map(|(_, t)| t)
    }

    /// Inserts or replaces a binding, returning the previous value.
    pub fn insert(&mut self, key: impl ToSym, value: Term) -> Option<Term> {
        let k = key.to_sym();
        for (s, t) in &mut self.entries {
            if s.id() == k.id() {
                return Some(std::mem::replace(t, value));
            }
        }
        self.entries.push((k, value));
        None
    }

    /// Removes a binding, returning it if present.
    pub fn remove<K: ToSym + ?Sized>(&mut self, key: &K) -> Option<Term> {
        let k = key.to_sym();
        let pos = self.entries.iter().position(|(s, _)| s.id() == k.id())?;
        Some(self.entries.remove(pos).1)
    }

    /// `true` if the key is bound.
    pub fn contains_key<K: ToSym + ?Sized>(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Iterates bindings in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&Sym, &Term)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates bindings mutably (values only may be changed).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&Sym, &mut Term)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Iterates the bound variables.
    pub fn keys(&self) -> impl Iterator<Item = &Sym> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates the bound terms.
    pub fn values(&self) -> impl Iterator<Item = &Term> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl PartialEq for Subst {
    fn eq(&self, other: &Subst) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl Eq for Subst {}

impl fmt::Debug for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.entries.iter().map(|(k, v)| (k, v)))
            .finish()
    }
}

impl<K: ToSym> FromIterator<(K, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (K, Term)>>(iter: I) -> Subst {
        let mut s = Subst::new();
        for (k, v) in iter {
            s.insert(k, v);
        }
        s
    }
}

impl IntoIterator for Subst {
    type Item = (Sym, Term);
    type IntoIter = std::vec::IntoIter<(Sym, Term)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Subst {
    type Item = (&'a Sym, &'a Term);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (Sym, Term)>,
        fn(&'a (Sym, Term)) -> (&'a Sym, &'a Term),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl std::ops::Index<&str> for Subst {
    type Output = Term;
    fn index(&self, key: &str) -> &Term {
        self.get(key).expect("no binding for variable")
    }
}

impl std::ops::Index<Sym> for Subst {
    type Output = Term;
    fn index(&self, key: Sym) -> &Term {
        self.get(&key).expect("no binding for variable")
    }
}

/// Applies a substitution to a term.
pub fn apply_term(t: &Term, s: &Subst) -> Term {
    match t {
        Term::Var(v) => s.get(v).copied().unwrap_or(*t),
        _ => *t,
    }
}

/// Applies a substitution to an atom.
pub fn apply_atom(a: &Atom, s: &Subst) -> Atom {
    Atom {
        relation: a.relation,
        args: a.args.iter().map(|t| apply_term(t, s)).collect(),
    }
}

/// Applies a substitution to a comparison.
pub fn apply_comparison(c: &Comparison, s: &Subst) -> Comparison {
    Comparison {
        lhs: apply_term(&c.lhs, s),
        op: c.op,
        rhs: apply_term(&c.rhs, s),
    }
}

/// A conjunctive query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cq {
    /// Optional name (set for views; `ans` when printed otherwise).
    pub name: Option<Sym>,
    /// Head (distinguished) terms.
    pub head: Vec<Term>,
    /// Relational atoms.
    pub atoms: Vec<Atom>,
    /// Comparison constraints (no `Eq` after normalization).
    pub comparisons: Vec<Comparison>,
}

impl Cq {
    /// Creates a query with the given parts.
    pub fn new(head: Vec<Term>, atoms: Vec<Atom>, comparisons: Vec<Comparison>) -> Cq {
        Cq {
            name: None,
            head,
            atoms,
            comparisons,
        }
    }

    /// All variables appearing anywhere, in first-occurrence order.
    pub fn variables(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for c in &self.comparisons {
            push(&c.lhs);
            push(&c.rhs);
        }
        out
    }

    /// Variables appearing in the head.
    pub fn head_vars(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        for t in &self.head {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// Named parameters mentioned anywhere.
    pub fn params(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        let mut push = |t: &Term| {
            if let Term::Param(p) = t {
                if !out.contains(p) {
                    out.push(*p);
                }
            }
        };
        for t in &self.head {
            push(t);
        }
        for a in &self.atoms {
            for t in &a.args {
                push(t);
            }
        }
        for c in &self.comparisons {
            push(&c.lhs);
            push(&c.rhs);
        }
        out
    }

    /// Applies a substitution to the whole query.
    pub fn substitute(&self, s: &Subst) -> Cq {
        Cq {
            name: self.name,
            head: self.head.iter().map(|t| apply_term(t, s)).collect(),
            atoms: self.atoms.iter().map(|a| apply_atom(a, s)).collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| apply_comparison(c, s))
                .collect(),
        }
    }

    /// Replaces parameters with constant values (instantiating a view for a
    /// session). Unlisted parameters are left in place.
    pub fn instantiate(&self, bindings: &[(String, Value)]) -> Cq {
        let interned: Vec<(Sym, Term)> = bindings
            .iter()
            .map(|(n, v)| (Sym::new(n), Term::constant(v)))
            .collect();
        let map_term = |t: &Term| -> Term {
            if let Term::Param(p) = t {
                if let Some((_, c)) = interned.iter().find(|(n, _)| n.id() == p.id()) {
                    return *c;
                }
            }
            *t
        };
        Cq {
            name: self.name,
            head: self.head.iter().map(map_term).collect(),
            atoms: self
                .atoms
                .iter()
                .map(|a| Atom {
                    relation: a.relation,
                    args: a.args.iter().map(map_term).collect(),
                })
                .collect(),
            comparisons: self
                .comparisons
                .iter()
                .map(|c| Comparison {
                    lhs: map_term(&c.lhs),
                    op: c.op,
                    rhs: map_term(&c.rhs),
                })
                .collect(),
        }
    }

    /// Renames every variable with a prefix, avoiding capture when mixing
    /// queries in one namespace.
    pub fn rename_vars(&self, prefix: &str) -> Cq {
        let s: Subst = self
            .variables()
            .into_iter()
            .map(|v| (v, Term::var(format!("{prefix}{v}"))))
            .collect();
        self.substitute(&s)
    }

    /// `true` if the query has no relational atoms.
    pub fn is_trivial(&self) -> bool {
        self.atoms.is_empty()
    }
}

impl fmt::Display for Cq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name.map(Sym::as_str).unwrap_or("ans"))?;
        for (i, t) in self.head.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(") :- ")?;
        let mut first = true;
        for a in &self.atoms {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{a}")?;
        }
        for c in &self.comparisons {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            write!(f, "{c}")?;
        }
        if first {
            f.write_str("true")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries (all disjuncts share head arity).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucq {
    /// The disjuncts.
    pub disjuncts: Vec<Cq>,
}

impl Ucq {
    /// Wraps a single CQ.
    pub fn single(cq: Cq) -> Ucq {
        Ucq {
            disjuncts: vec![cq],
        }
    }

    /// The head arity shared by all disjuncts (0 if empty).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map(|c| c.head.len()).unwrap_or(0)
    }
}

impl fmt::Display for Ucq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                f.write_str("\n∪ ")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Cq {
        // ans(u, t) :- Attendance(u, e, n), Events(e, t, k), u <> 3
        Cq::new(
            vec![Term::var("u"), Term::var("t")],
            vec![
                Atom::new(
                    "Attendance",
                    vec![Term::var("u"), Term::var("e"), Term::var("n")],
                ),
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
            ],
            vec![Comparison::new(Term::var("u"), CmpOp::Ne, Term::int(3))],
        )
    }

    #[test]
    fn variable_collection_in_order() {
        assert_eq!(sample().variables(), vec!["u", "t", "e", "n", "k"]);
        assert_eq!(sample().head_vars(), vec!["u", "t"]);
    }

    #[test]
    fn substitution_applies_everywhere() {
        let mut s = Subst::new();
        s.insert("u", Term::int(7));
        let q = sample().substitute(&s);
        assert_eq!(q.head[0], Term::int(7));
        assert_eq!(q.atoms[0].args[0], Term::int(7));
        assert_eq!(q.comparisons[0].lhs, Term::int(7));
    }

    #[test]
    fn instantiate_replaces_params() {
        let q = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::param("MyUId"), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        let inst = q.instantiate(&[("MyUId".into(), Value::Int(1))]);
        assert_eq!(inst.atoms[0].args[0], Term::int(1));
        assert!(inst.params().is_empty());
    }

    #[test]
    fn rename_avoids_collisions() {
        let q = sample().rename_vars("x_");
        assert_eq!(q.variables(), vec!["x_u", "x_t", "x_e", "x_n", "x_k"]);
    }

    #[test]
    fn display_is_readable() {
        let s = sample().to_string();
        assert!(s.starts_with("ans(u, t) :- Attendance(u, e, n)"), "{s}");
        assert!(s.contains("u <> 3"));
    }

    #[test]
    fn comparison_normalization() {
        // const < var flips to var > const.
        let c = Comparison::new(Term::int(3), CmpOp::Lt, Term::var("x")).normalized();
        assert_eq!(c, Comparison::new(Term::var("x"), CmpOp::Gt, Term::int(3)));
        // symmetric ops order operands.
        let c = Comparison::new(Term::var("y"), CmpOp::Ne, Term::var("x")).normalized();
        assert_eq!(
            c,
            Comparison::new(Term::var("x"), CmpOp::Ne, Term::var("y"))
        );
    }

    #[test]
    fn cmp_op_eval() {
        assert_eq!(
            CmpOp::Lt.eval_values(&Value::Int(1), &Value::Int(2)),
            Some(true)
        );
        assert_eq!(
            CmpOp::Ge.eval_values(&Value::str("b"), &Value::str("a")),
            Some(true)
        );
        assert_eq!(CmpOp::Eq.eval_values(&Value::Null, &Value::Int(1)), None);
    }

    #[test]
    fn term_is_copy_and_small() {
        // The refactor's contract: terms are registers, not heap clones.
        assert_eq!(std::mem::size_of::<Term>(), 16);
        let t = Term::var("x");
        let u = t; // Copy, not move
        assert_eq!(t, u);
    }

    #[test]
    fn subst_equality_ignores_insertion_order() {
        let mut a = Subst::new();
        a.insert("x", Term::int(1));
        a.insert("y", Term::int(2));
        let mut b = Subst::new();
        b.insert("y", Term::int(2));
        b.insert("x", Term::int(1));
        assert_eq!(a, b);
        b.insert("z", Term::int(3));
        assert_ne!(a, b);
    }

    #[test]
    fn subst_index_by_str_and_sym() {
        let mut s = Subst::new();
        s.insert("x", Term::int(1));
        assert_eq!(s["x"], Term::int(1));
        assert_eq!(s[crate::sym::Sym::new("x")], Term::int(1));
        assert_eq!(s.get("missing"), None);
    }
}
