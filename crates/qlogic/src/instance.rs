//! Instances: sets of facts, possibly containing labeled nulls.
//!
//! An [`Instance`] is a set of atoms whose arguments are terms. Variables
//! appearing in an instance act as *labeled nulls* — unknown but fixed
//! values — which is exactly what the canonical database ("frozen body") of
//! a conjunctive query is. Constraints record what is known about those
//! nulls (e.g. `v >= 60`).

use sqlir::Value;

use crate::compare::CmpContext;
use crate::cq::{Atom, Comparison, Cq, Subst, Term};
use crate::homomorphism::HomProblem;

/// A set of facts over terms, with known constraints.
#[derive(Debug, Clone, Default)]
pub struct Instance {
    /// The facts.
    pub atoms: Vec<Atom>,
    /// Known comparisons over the facts' terms.
    pub constraints: Vec<Comparison>,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// The canonical database of a query: its body, with variables read as
    /// labeled nulls and its comparisons as known constraints.
    pub fn freeze(cq: &Cq) -> Instance {
        Instance {
            atoms: cq.atoms.clone(),
            constraints: cq.comparisons.clone(),
        }
    }

    /// Builds a fully ground instance from `(relation, rows)` pairs.
    pub fn from_rows<'a>(
        tables: impl IntoIterator<Item = (&'a str, &'a [Vec<Value>])>,
    ) -> Instance {
        let mut atoms = Vec::new();
        for (rel, rows) in tables {
            for row in rows {
                atoms.push(Atom::new(rel, row.iter().map(Term::constant).collect()));
            }
        }
        Instance {
            atoms,
            constraints: Vec::new(),
        }
    }

    /// Adds a fact, deduplicating.
    pub fn add(&mut self, atom: Atom) {
        if !self.atoms.contains(&atom) {
            self.atoms.push(atom);
        }
    }

    /// Merges another instance's facts and constraints into this one.
    pub fn extend(&mut self, other: &Instance) {
        for a in &other.atoms {
            self.add(a.clone());
        }
        for c in &other.constraints {
            if !self.constraints.contains(c) {
                self.constraints.push(*c);
            }
        }
    }

    /// Evaluates a query, returning up to `limit` distinct answer tuples.
    ///
    /// Answers may contain labeled nulls if the instance does.
    pub fn eval(&self, q: &Cq, limit: usize) -> Vec<Vec<Term>> {
        let ctx = CmpContext::new(&self.constraints);
        let p = HomProblem {
            source_atoms: &q.atoms,
            source_comparisons: &q.comparisons,
            target_atoms: &self.atoms,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        // Stream homomorphisms, deduplicating head projections on the fly.
        let mut out: Vec<Vec<Term>> = Vec::new();
        crate::homomorphism::for_each_homomorphism(&p, &mut |h| {
            let tuple: Vec<Term> = q.head.iter().map(|t| crate::cq::apply_term(t, h)).collect();
            if !out.contains(&tuple) {
                out.push(tuple);
            }
            out.len() >= limit
        });
        out
    }

    /// `true` if the query has at least one answer on this instance.
    pub fn satisfies(&self, q: &Cq) -> bool {
        !self.eval(q, 1).is_empty()
    }

    /// `true` if the query returns the given tuple on this instance.
    pub fn returns_tuple(&self, q: &Cq, tuple: &[Term]) -> bool {
        if tuple.len() != q.head.len() {
            return false;
        }
        let ctx = CmpContext::new(&self.constraints);
        // Bind head variables to the tuple; rigid head terms must match.
        let mut initial = Subst::new();
        for (h, t) in q.head.iter().zip(tuple) {
            match h {
                Term::Var(v) => match initial.get(v) {
                    Some(bound) if bound != t => return false,
                    Some(_) => {}
                    None => {
                        initial.insert(*v, *t);
                    }
                },
                rigid => {
                    if rigid != t {
                        return false;
                    }
                }
            }
        }
        let p = HomProblem {
            source_atoms: &q.atoms,
            source_comparisons: &q.comparisons,
            target_atoms: &self.atoms,
            target_ctx: &ctx,
            initial,
        };
        crate::homomorphism::find_homomorphism(&p).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CmpOp;

    fn ground() -> Instance {
        Instance::from_rows([
            (
                "Attendance",
                [
                    vec![Value::Int(1), Value::Int(2), Value::Null],
                    vec![Value::Int(2), Value::Int(3), Value::str("cake")],
                ]
                .as_slice(),
            ),
            (
                "Events",
                [
                    vec![Value::Int(2), Value::str("standup")],
                    vec![Value::Int(3), Value::str("party")],
                ]
                .as_slice(),
            ),
        ])
    }

    #[test]
    fn evaluates_join() {
        // ans(t) :- Attendance(1, e, n), Events(e, t)
        let q = Cq::new(
            vec![Term::var("t")],
            vec![
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
                Atom::new("Events", vec![Term::var("e"), Term::var("t")]),
            ],
            vec![],
        );
        let ans = ground().eval(&q, 10);
        assert_eq!(ans, vec![vec![Term::str("standup")]]);
    }

    #[test]
    fn eval_dedups_tuples() {
        // ans(u) :- Attendance(u, e, n) over two rows with different e but
        // projecting a shared head would dedup; here both rows differ in u.
        let q = Cq::new(
            vec![Term::int(1)],
            vec![Atom::new("Events", vec![Term::var("e"), Term::var("t")])],
            vec![],
        );
        // Constant head: both matches produce the same tuple (1).
        assert_eq!(ground().eval(&q, 10).len(), 1);
    }

    #[test]
    fn comparisons_filter_answers() {
        let q = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new("Events", vec![Term::var("e"), Term::var("t")])],
            vec![Comparison::new(Term::var("e"), CmpOp::Gt, Term::int(2))],
        );
        assert_eq!(ground().eval(&q, 10), vec![vec![Term::int(3)]]);
    }

    #[test]
    fn frozen_instance_keeps_nulls() {
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
            vec![Comparison::new(Term::var("y"), CmpOp::Ge, Term::int(0))],
        );
        let inst = Instance::freeze(&q);
        assert!(inst.satisfies(&q));
        // Nulls propagate into answers.
        assert_eq!(inst.eval(&q, 10), vec![vec![Term::var("x")]]);
    }

    #[test]
    fn returns_tuple_checks_membership() {
        let q = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new("Events", vec![Term::int(2), Term::var("t")])],
            vec![],
        );
        let inst = ground();
        assert!(inst.returns_tuple(&q, &[Term::str("standup")]));
        assert!(!inst.returns_tuple(&q, &[Term::str("party")]));
    }

    #[test]
    fn repeated_head_var_binding_consistent() {
        // ans(x, x) must only return tuples with equal components.
        let q = Cq::new(
            vec![Term::var("x"), Term::var("x")],
            vec![Atom::new("Events", vec![Term::var("x"), Term::var("t")])],
            vec![],
        );
        let inst = ground();
        assert!(inst.returns_tuple(&q, &[Term::int(2), Term::int(2)]));
        assert!(!inst.returns_tuple(&q, &[Term::int(2), Term::int(3)]));
    }
}
