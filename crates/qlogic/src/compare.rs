//! A small constraint reasoner for conjunctions of comparisons.
//!
//! [`CmpContext`] takes a conjunction of comparisons over terms (variables,
//! constants, parameters) and supports two queries:
//!
//! * [`CmpContext::is_unsat`] — is the conjunction definitely unsatisfiable?
//! * [`CmpContext::entails`] — does the conjunction definitely entail another
//!   comparison?
//!
//! Both answers are *sound but incomplete*: `false` means "could not prove".
//! The reasoner contracts equalities, computes the transitive closure of the
//! order relation (tracking strictness), seeds the true order among
//! constants, and tracks disequalities. It does not perform integer
//! tightening (`1 < x AND x < 2` over integers is not detected as
//! unsatisfiable); callers that need exact answers at small scale use the
//! `bep-disclose` small-model enumerator instead.

use std::collections::HashMap;

use crate::cq::{CmpOp, Comparison, Term};

/// Reachability flags between term nodes (`le` = ≤ derivable, `lt` = <
/// derivable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Reach {
    le: bool,
    lt: bool,
}

/// A preprocessed conjunction of comparisons.
#[derive(Debug, Clone)]
pub struct CmpContext {
    /// Canonical representative term of each node.
    nodes: Vec<Term>,
    /// Map from every seen term to its node index.
    index: HashMap<Term, usize>,
    /// `reach[i][j]`: is `nodes[i] ≤ nodes[j]` (and strictly?) derivable.
    reach: Vec<Vec<Reach>>,
    /// Disequalities between node indices (stored unordered).
    ne: Vec<(usize, usize)>,
    unsat: bool,
}

/// Union-find with path compression.
struct Uf {
    parent: Vec<usize>,
}

impl Uf {
    fn new(n: usize) -> Uf {
        Uf {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

impl CmpContext {
    /// Builds the context from a conjunction of comparisons.
    pub fn new(comparisons: &[Comparison]) -> CmpContext {
        // Collect distinct terms.
        let mut terms: Vec<Term> = Vec::new();
        let term_idx = |terms: &mut Vec<Term>, t: &Term| -> usize {
            match terms.iter().position(|x| x == t) {
                Some(i) => i,
                None => {
                    terms.push(*t);
                    terms.len() - 1
                }
            }
        };
        let mut triples: Vec<(usize, CmpOp, usize)> = Vec::new();
        for c in comparisons {
            let l = term_idx(&mut terms, &c.lhs);
            let r = term_idx(&mut terms, &c.rhs);
            triples.push((l, c.op, r));
        }

        // 1. Contract equalities with union-find. Equating two distinct
        //    rigid terms is an immediate contradiction (unless they are the
        //    same constant, which would be the same node already).
        let mut uf = Uf::new(terms.len());
        let mut unsat = false;
        for &(l, op, r) in &triples {
            if op == CmpOp::Eq {
                if terms[l].is_rigid() && terms[r].is_rigid() && terms[l] != terms[r] {
                    // Two different parameters *could* be equal; two
                    // different constants cannot.
                    if let (Term::Const(_), Term::Const(_)) = (&terms[l], &terms[r]) {
                        unsat = true;
                    }
                }
                uf.union(l, r);
            }
        }
        // Prefer a rigid representative for each class so constant seeding
        // still applies after contraction.
        let mut rep_of_class: HashMap<usize, usize> = HashMap::new();
        for i in 0..terms.len() {
            let root = uf.find(i);
            let entry = rep_of_class.entry(root).or_insert(i);
            if !terms[*entry].is_rigid() && terms[i].is_rigid() {
                *entry = i;
            }
        }
        // Conflicting rigid members in one class → unsat (two distinct
        // constants unified).
        for i in 0..terms.len() {
            let root = uf.find(i);
            let rep = rep_of_class[&root];
            if let (Term::Const(a), Term::Const(b)) = (&terms[i], &terms[rep]) {
                if a != b {
                    unsat = true;
                }
            }
        }

        // Build node list from representatives.
        let mut nodes: Vec<Term> = Vec::new();
        let mut index: HashMap<Term, usize> = HashMap::new();
        let mut node_of: HashMap<usize, usize> = HashMap::new(); // class root -> node
        for i in 0..terms.len() {
            let root = uf.find(i);
            let rep = rep_of_class[&root];
            let node = match node_of.get(&root) {
                Some(&n) => n,
                None => {
                    // Distinct constants must remain distinct nodes, but the
                    // same constant reached via different classes stays
                    // merged through `index`.
                    let n = match index.get(&terms[rep]) {
                        Some(&n) => n,
                        None => {
                            nodes.push(terms[rep]);
                            index.insert(terms[rep], nodes.len() - 1);
                            nodes.len() - 1
                        }
                    };
                    node_of.insert(root, n);
                    n
                }
            };
            index.entry(terms[i]).or_insert(node);
        }

        let n = nodes.len();
        let mut reach = vec![vec![Reach::default(); n]; n];
        let mut ne: Vec<(usize, usize)> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            reach[i][i] = Reach {
                le: true,
                lt: false,
            };
        }

        let add_edge = |reach: &mut Vec<Vec<Reach>>, a: usize, b: usize, strict: bool| {
            reach[a][b].le = true;
            if strict {
                reach[a][b].lt = true;
            }
        };

        // 2. Seed the true order among constants.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                if let (Term::Const(a), Term::Const(b)) = (&nodes[i], &nodes[j]) {
                    if a.total_cmp(b) == std::cmp::Ordering::Less {
                        add_edge(&mut reach, i, j, true);
                    }
                    ne.push((i, j));
                }
            }
        }

        // 3. Edges from the comparisons themselves.
        for &(l, op, r) in &triples {
            let (a, b) = (index[&terms[l]], index[&terms[r]]);
            match op {
                CmpOp::Eq => {} // contracted above
                CmpOp::Ne => ne.push((a, b)),
                CmpOp::Lt => add_edge(&mut reach, a, b, true),
                CmpOp::Le => add_edge(&mut reach, a, b, false),
                CmpOp::Gt => add_edge(&mut reach, b, a, true),
                CmpOp::Ge => add_edge(&mut reach, b, a, false),
            }
        }

        // 4. Transitive closure (Floyd–Warshall over (le, lt)).
        for k in 0..n {
            for i in 0..n {
                if !reach[i][k].le {
                    continue;
                }
                for j in 0..n {
                    if reach[k][j].le {
                        let lt = reach[i][k].lt || reach[k][j].lt;
                        reach[i][j].le = true;
                        reach[i][j].lt |= lt;
                    }
                }
            }
        }

        // 5. Contradictions.
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            if reach[i][i].lt {
                unsat = true;
            }
        }
        for &(a, b) in &ne {
            // `a ≠ a` is contradictory outright; `a ≤ b ≤ a` forces the two
            // nodes equal, contradicting the disequality.
            if a == b || (reach[a][b].le && reach[b][a].le) {
                unsat = true;
            }
        }

        CmpContext {
            nodes,
            index,
            reach,
            ne,
            unsat,
        }
    }

    /// `true` if the conjunction is definitely unsatisfiable.
    pub fn is_unsat(&self) -> bool {
        self.unsat
    }

    fn node(&self, t: &Term) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// Checks whether two terms are forced equal by the context.
    fn forced_eq(&self, a: &Term, b: &Term) -> bool {
        if a == b {
            return true;
        }
        match (self.node(a), self.node(b)) {
            (Some(i), Some(j)) => {
                i == j
                    || (self.reach[i][j].le
                        && self.reach[j][i].le
                        && !self.reach[i][j].lt
                        && !self.reach[j][i].lt)
            }
            _ => false,
        }
    }

    fn known_le(&self, a: &Term, b: &Term, strict: bool) -> bool {
        // Direct constant comparison works even for terms the context never
        // saw.
        if let (Term::Const(x), Term::Const(y)) = (a, b) {
            let op = if strict { CmpOp::Lt } else { CmpOp::Le };
            if let Some(res) = op.eval(x, y) {
                return res;
            }
        }
        if !strict && a == b {
            return true;
        }
        match (self.node(a), self.node(b)) {
            (Some(i), Some(j)) => {
                if strict {
                    self.reach[i][j].lt
                } else {
                    self.reach[i][j].le || i == j
                }
            }
            (None, Some(j)) => {
                // `a` is a constant the context never saw: route through a
                // constant node c with a ≤ c ≤ b.
                let Term::Const(av) = a else { return false };
                self.nodes.iter().enumerate().any(|(k, n)| {
                    let Term::Const(cv) = n else { return false };
                    let first_strict = av.total_cmp(cv) == std::cmp::Ordering::Less;
                    let first_le = first_strict || av == cv;
                    if !first_le {
                        return false;
                    }
                    let rest = self.reach[k][j];
                    let le = rest.le || k == j;
                    let lt = rest.lt || (first_strict && le);
                    if strict {
                        lt
                    } else {
                        le
                    }
                })
            }
            (Some(i), None) => {
                // Symmetric: a ≤ c ≤ b with c a known constant node.
                let Term::Const(bv) = b else { return false };
                self.nodes.iter().enumerate().any(|(k, n)| {
                    let Term::Const(cv) = n else { return false };
                    let last_strict = cv.total_cmp(bv) == std::cmp::Ordering::Less;
                    let last_le = last_strict || cv == bv;
                    if !last_le {
                        return false;
                    }
                    let first = self.reach[i][k];
                    let le = first.le || i == k;
                    let lt = first.lt || (last_strict && le);
                    if strict {
                        lt
                    } else {
                        le
                    }
                })
            }
            (None, None) => false,
        }
    }

    fn known_ne(&self, a: &Term, b: &Term) -> bool {
        if let (Term::Const(x), Term::Const(y)) = (a, b) {
            if x != y {
                return true;
            }
        }
        if self.known_le(a, b, true) || self.known_le(b, a, true) {
            return true;
        }
        match (self.node(a), self.node(b)) {
            (Some(i), Some(j)) if i != j => self
                .ne
                .iter()
                .any(|&(x, y)| (x == i && y == j) || (x == j && y == i)),
            _ => false,
        }
    }

    /// `true` if the context definitely entails `goal`.
    ///
    /// An unsatisfiable context entails everything.
    pub fn entails(&self, goal: &Comparison) -> bool {
        if self.unsat {
            return true;
        }
        let (a, b) = (&goal.lhs, &goal.rhs);
        match goal.op {
            CmpOp::Eq => self.forced_eq(a, b),
            CmpOp::Ne => self.known_ne(a, b),
            CmpOp::Lt => self.known_le(a, b, true),
            CmpOp::Le => self.known_le(a, b, false) || self.forced_eq(a, b),
            CmpOp::Gt => self.known_le(b, a, true),
            CmpOp::Ge => self.known_le(b, a, false) || self.forced_eq(a, b),
        }
    }

    /// `true` if the context entails every comparison in `goals`.
    pub fn entails_all<'a>(&self, goals: impl IntoIterator<Item = &'a Comparison>) -> bool {
        goals.into_iter().all(|g| self.entails(g))
    }

    /// The number of distinct term nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Convenience: is a conjunction of comparisons definitely unsatisfiable?
pub fn definitely_unsat(comparisons: &[Comparison]) -> bool {
    CmpContext::new(comparisons).is_unsat()
}

/// Convenience: does `ctx` entail `goal`?
pub fn entails(ctx: &[Comparison], goal: &Comparison) -> bool {
    CmpContext::new(ctx).entails(goal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn c(i: i64) -> Term {
        Term::int(i)
    }

    fn cmp(l: Term, op: CmpOp, r: Term) -> Comparison {
        Comparison::new(l, op, r)
    }

    #[test]
    fn transitivity() {
        let ctx = [
            cmp(v("x"), CmpOp::Lt, v("y")),
            cmp(v("y"), CmpOp::Le, v("z")),
        ];
        assert!(entails(&ctx, &cmp(v("x"), CmpOp::Lt, v("z"))));
        assert!(entails(&ctx, &cmp(v("x"), CmpOp::Le, v("z"))));
        assert!(entails(&ctx, &cmp(v("z"), CmpOp::Gt, v("x"))));
        assert!(!entails(&ctx, &cmp(v("z"), CmpOp::Lt, v("x"))));
    }

    #[test]
    fn constant_seeding() {
        // x >= 60 entails x >= 18 because 18 < 60.
        let ctx = [cmp(v("x"), CmpOp::Ge, c(60))];
        assert!(entails(&ctx, &cmp(v("x"), CmpOp::Ge, c(18))));
        assert!(entails(&ctx, &cmp(v("x"), CmpOp::Gt, c(18))));
        assert!(!entails(&ctx, &cmp(v("x"), CmpOp::Ge, c(61))));
    }

    #[test]
    fn strict_cycle_unsat() {
        assert!(definitely_unsat(&[
            cmp(v("x"), CmpOp::Lt, v("y")),
            cmp(v("y"), CmpOp::Lt, v("x")),
        ]));
        assert!(!definitely_unsat(&[
            cmp(v("x"), CmpOp::Le, v("y")),
            cmp(v("y"), CmpOp::Le, v("x")),
        ]));
    }

    #[test]
    fn forced_equal_with_ne_unsat() {
        assert!(definitely_unsat(&[
            cmp(v("x"), CmpOp::Le, v("y")),
            cmp(v("y"), CmpOp::Le, v("x")),
            cmp(v("x"), CmpOp::Ne, v("y")),
        ]));
    }

    #[test]
    fn constant_bounds_unsat() {
        assert!(definitely_unsat(&[
            cmp(v("x"), CmpOp::Ge, c(10)),
            cmp(v("x"), CmpOp::Lt, c(5)),
        ]));
        assert!(!definitely_unsat(&[
            cmp(v("x"), CmpOp::Ge, c(5)),
            cmp(v("x"), CmpOp::Lt, c(10)),
        ]));
    }

    #[test]
    fn equality_contraction() {
        let ctx = [cmp(v("x"), CmpOp::Eq, c(5)), cmp(v("y"), CmpOp::Ge, v("x"))];
        assert!(entails(&ctx, &cmp(v("y"), CmpOp::Ge, c(5))));
        assert!(entails(&ctx, &cmp(v("x"), CmpOp::Eq, c(5))));
    }

    #[test]
    fn equating_distinct_constants_unsat() {
        assert!(definitely_unsat(&[cmp(c(1), CmpOp::Eq, c(2))]));
        assert!(definitely_unsat(&[
            cmp(v("x"), CmpOp::Eq, c(1)),
            cmp(v("x"), CmpOp::Eq, c(2)),
        ]));
    }

    #[test]
    fn ne_from_distinct_constants() {
        let ctx: [Comparison; 0] = [];
        assert!(entails(&ctx, &cmp(c(1), CmpOp::Ne, c(2))));
        assert!(entails(&ctx, &cmp(c(1), CmpOp::Lt, c(2))));
        assert!(!entails(&ctx, &cmp(v("x"), CmpOp::Ne, c(2))));
    }

    #[test]
    fn params_are_opaque() {
        // Different parameters are not known equal or unequal.
        let ctx: [Comparison; 0] = [];
        assert!(!entails(
            &ctx,
            &cmp(Term::param("A"), CmpOp::Ne, Term::param("B"))
        ));
        assert!(!entails(
            &ctx,
            &cmp(Term::param("A"), CmpOp::Eq, Term::param("B"))
        ));
        // But a parameter equals itself.
        assert!(entails(
            &ctx,
            &cmp(Term::param("A"), CmpOp::Eq, Term::param("A"))
        ));
    }

    #[test]
    fn unsat_entails_everything() {
        let ctx = [cmp(c(1), CmpOp::Eq, c(2))];
        assert!(entails(&ctx, &cmp(v("q"), CmpOp::Lt, v("q"))));
    }

    #[test]
    fn string_constants_order() {
        let ctx = [cmp(v("s"), CmpOp::Ge, Term::str("m"))];
        assert!(entails(&ctx, &cmp(v("s"), CmpOp::Gt, Term::str("a"))));
    }

    #[test]
    fn integer_density_incompleteness_documented() {
        // 1 < x < 2 has no integer solution, but the reasoner does not do
        // integer tightening; it must NOT claim unsat (sound, incomplete).
        assert!(!definitely_unsat(&[
            cmp(c(1), CmpOp::Lt, v("x")),
            cmp(v("x"), CmpOp::Lt, c(2)),
        ]));
    }
}
