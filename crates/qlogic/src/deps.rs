//! Schema dependencies: functional dependencies (keys) and the chase.
//!
//! Real schemas declare primary keys, and trace-aware compliance needs them:
//! in the forum application, a probe reveals post 17's group id, and only
//! the key `Posts.PId → *` lets the checker conclude that *the* `Posts` row
//! joined by a later fetch is the same row the probe witnessed. The chase
//! below saturates a canonical database with the equalities the keys force,
//! which the containment checker then reasons over.
//!
//! Soundness note: unifications are applied only when forced syntactically
//! (two atoms agree on the key). A parameter and a constant in a dependent
//! position are *not* unified (they may or may not be equal at runtime) —
//! under-chasing only makes containment harder to prove, which is the safe
//! direction. Two distinct constants in a dependent position mean no
//! database satisfying the keys contains the canonical facts at all.

use crate::cq::{apply_atom, Atom, Subst, Term};
use crate::sym::{Sym, ToSym};

/// A key-style functional dependency: the `key` positions of `relation`
/// determine the whole row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    /// Relation name.
    pub relation: Sym,
    /// Determinant column positions.
    pub key: Vec<usize>,
}

/// An inclusion dependency (foreign key): every row of `child` has a
/// matching row in `parent` (child columns = parent columns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ind {
    /// Referencing relation.
    pub child: Sym,
    /// Referencing column positions.
    pub child_cols: Vec<usize>,
    /// Referenced relation.
    pub parent: Sym,
    /// Referenced column positions.
    pub parent_cols: Vec<usize>,
    /// Referenced relation's arity (needed to mint fresh nulls).
    pub parent_arity: usize,
}

/// A set of dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dependencies {
    /// Key dependencies.
    pub fds: Vec<Fd>,
    /// Inclusion dependencies (foreign keys).
    pub inds: Vec<Ind>,
}

impl Dependencies {
    /// No dependencies.
    pub fn none() -> Dependencies {
        Dependencies::default()
    }

    /// Adds a key dependency.
    pub fn with_key(mut self, relation: impl ToSym, key: Vec<usize>) -> Dependencies {
        self.fds.push(Fd {
            relation: relation.to_sym(),
            key,
        });
        self
    }

    /// Adds an inclusion dependency (foreign key).
    pub fn with_inclusion(mut self, ind: Ind) -> Dependencies {
        self.inds.push(ind);
        self
    }

    /// `true` if there is nothing to chase.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty() && self.inds.is_empty()
    }
}

/// The result of chasing a set of atoms.
#[derive(Debug, Clone)]
pub enum ChaseOutcome {
    /// The saturated atoms plus the substitution that was applied.
    Consistent {
        /// Deduplicated, saturated atoms.
        atoms: Vec<Atom>,
        /// Accumulated variable unifications.
        subst: Subst,
    },
    /// The atoms violate a key outright (two rows, same key, incompatible
    /// constants): no database satisfying the dependencies contains them.
    Inconsistent,
}

/// Saturates `atoms` under the key dependencies.
pub fn chase_fds(atoms: &[Atom], deps: &Dependencies) -> ChaseOutcome {
    let mut atoms: Vec<Atom> = atoms.to_vec();
    let mut subst = Subst::new();
    if deps.is_empty() {
        return ChaseOutcome::Consistent { atoms, subst };
    }
    loop {
        // Find one forced unification, then apply it and restart: the
        // substitution can invalidate earlier scan state.
        let mut pending: Option<(Sym, Term)> = None;
        'scan: for i in 0..atoms.len() {
            for j in (i + 1)..atoms.len() {
                let (a, b) = (&atoms[i], &atoms[j]);
                if a.relation != b.relation || a.args.len() != b.args.len() {
                    continue;
                }
                for fd in &deps.fds {
                    if fd.relation != a.relation || fd.key.iter().any(|&k| k >= a.args.len()) {
                        continue;
                    }
                    if !fd.key.iter().all(|&k| a.args[k] == b.args[k]) {
                        continue;
                    }
                    // The rows must be equal: unify dependent positions.
                    for p in 0..a.args.len() {
                        let (x, y) = (&a.args[p], &b.args[p]);
                        if x == y {
                            continue;
                        }
                        match (x, y) {
                            (Term::Var(v), other) | (other, Term::Var(v)) => {
                                pending = Some((*v, *other));
                                break 'scan;
                            }
                            (Term::Const(_), Term::Const(_)) => {
                                return ChaseOutcome::Inconsistent;
                            }
                            // Parameter vs rigid: possibly equal at runtime;
                            // skipping is the sound (under-chasing) choice.
                            _ => {}
                        }
                    }
                }
            }
        }
        match pending {
            Some((var, to)) => bind(&mut atoms, &mut subst, var, to),
            None => break,
        }
    }
    // Deduplicate.
    let mut deduped: Vec<Atom> = Vec::new();
    for a in atoms {
        if !deduped.contains(&a) {
            deduped.push(a);
        }
    }
    ChaseOutcome::Consistent {
        atoms: deduped,
        subst,
    }
}

/// Saturates atoms under the full dependency set: alternate the key (FD)
/// chase with the inclusion (IND) chase — each child row spawns its missing
/// parent row with fresh labeled nulls — until a fixpoint (bounded; FK
/// graphs in practice are shallow, and the round cap guards cycles).
pub fn chase_full(atoms: &[Atom], deps: &Dependencies) -> ChaseOutcome {
    let mut atoms = atoms.to_vec();
    let mut subst = Subst::new();
    let mut fresh = 0usize;
    for _round in 0..4 {
        // FD phase.
        match chase_fds(&atoms, deps) {
            ChaseOutcome::Consistent { atoms: a, subst: s } => {
                atoms = a;
                for (_, t) in subst.iter_mut() {
                    *t = crate::cq::apply_term(t, &s);
                }
                for (k, v) in s {
                    if !subst.contains_key(&k) {
                        subst.insert(k, v);
                    }
                }
            }
            ChaseOutcome::Inconsistent => return ChaseOutcome::Inconsistent,
        }
        // IND phase: add missing parents.
        let mut added = Vec::new();
        for ind in &deps.inds {
            if ind.child_cols.len() != ind.parent_cols.len() {
                continue; // malformed
            }
            for child in &atoms {
                if child.relation != ind.child
                    || ind.child_cols.iter().any(|&c| c >= child.args.len())
                {
                    continue;
                }
                let key: Vec<&Term> = ind.child_cols.iter().map(|&c| &child.args[c]).collect();
                // A NULL-able FK whose witness is a labeled null still
                // requires a parent in the chase (sound for the canonical
                // database: we only use the chase on instances standing for
                // "databases containing at least these rows").
                let has_parent = atoms.iter().chain(added.iter()).any(|p| {
                    p.relation == ind.parent
                        && ind
                            .parent_cols
                            .iter()
                            .zip(&key)
                            .all(|(&pc, k)| pc < p.args.len() && &&p.args[pc] == k)
                });
                if has_parent {
                    continue;
                }
                let mut args = Vec::with_capacity(ind.parent_arity);
                for i in 0..ind.parent_arity {
                    match ind.parent_cols.iter().position(|&pc| pc == i) {
                        Some(j) => args.push(*key[j]),
                        None => {
                            fresh += 1;
                            args.push(Term::var(format!("ind·{fresh}")));
                        }
                    }
                }
                let parent = Atom::new(ind.parent, args);
                if !added.contains(&parent) {
                    added.push(parent);
                }
            }
        }
        if added.is_empty() {
            break;
        }
        atoms.extend(added);
    }
    ChaseOutcome::Consistent { atoms, subst }
}

/// Normalizes a query by saturating its body under the key dependencies:
/// atoms forced equal by a key merge, and the induced unifications apply to
/// the head and comparisons. Semantics-preserving over databases satisfying
/// the dependencies. An inconsistent body yields an unsatisfiable marker
/// (`0 = 1` comparison).
pub fn normalize_cq(cq: &crate::cq::Cq, deps: &Dependencies) -> crate::cq::Cq {
    match chase_fds(&cq.atoms, deps) {
        ChaseOutcome::Consistent { atoms, subst } => {
            let mut out = cq.substitute(&subst);
            out.atoms = atoms;
            out
        }
        ChaseOutcome::Inconsistent => {
            let mut out = cq.clone();
            out.comparisons.push(crate::cq::Comparison::new(
                Term::int(0),
                crate::cq::CmpOp::Eq,
                Term::int(1),
            ));
            out
        }
    }
}

fn bind(atoms: &mut [Atom], subst: &mut Subst, var: Sym, to: Term) {
    let mut one = Subst::new();
    one.insert(var, to);
    for a in atoms.iter_mut() {
        *a = apply_atom(a, &one);
    }
    // Compose into the accumulated substitution.
    for (_, t) in subst.iter_mut() {
        *t = crate::cq::apply_term(t, &one);
    }
    subst.insert(var, to);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posts_key() -> Dependencies {
        // Posts(PId, GId, AuthorId): PId is the key.
        Dependencies::none().with_key("Posts", vec![0])
    }

    #[test]
    fn chase_unifies_on_key() {
        // Posts(17, g, a) and Posts(17, 5, sk) must be the same row.
        let atoms = [
            Atom::new("Posts", vec![Term::int(17), Term::var("g"), Term::var("a")]),
            Atom::new("Posts", vec![Term::int(17), Term::int(5), Term::var("sk")]),
        ];
        match chase_fds(&atoms, &posts_key()) {
            ChaseOutcome::Consistent { atoms, subst } => {
                assert_eq!(atoms.len(), 1, "rows merged: {atoms:?}");
                assert_eq!(subst.get("g"), Some(&Term::int(5)));
            }
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn chase_detects_key_violation() {
        let atoms = [
            Atom::new("Posts", vec![Term::int(17), Term::int(5), Term::var("a")]),
            Atom::new("Posts", vec![Term::int(17), Term::int(6), Term::var("b")]),
        ];
        assert!(matches!(
            chase_fds(&atoms, &posts_key()),
            ChaseOutcome::Inconsistent
        ));
    }

    #[test]
    fn chase_cascades() {
        // Unifying one pair can trigger another: keys propagate through
        // variables shared across atoms.
        let deps = Dependencies::none()
            .with_key("R", vec![0])
            .with_key("S", vec![0]);
        let atoms = [
            Atom::new("R", vec![Term::var("x"), Term::int(1)]),
            Atom::new("R", vec![Term::var("x"), Term::var("y")]),
            Atom::new("S", vec![Term::var("y"), Term::var("z")]),
            Atom::new("S", vec![Term::int(1), Term::int(9)]),
        ];
        match chase_fds(&atoms, &deps) {
            ChaseOutcome::Consistent { atoms, subst } => {
                assert_eq!(atoms.len(), 2);
                assert_eq!(subst.get("y"), Some(&Term::int(1)));
                assert_eq!(subst.get("z"), Some(&Term::int(9)));
            }
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn params_do_not_unify_with_constants() {
        let atoms = [
            Atom::new(
                "Posts",
                vec![Term::int(17), Term::param("P"), Term::var("a")],
            ),
            Atom::new("Posts", vec![Term::int(17), Term::int(5), Term::var("b")]),
        ];
        match chase_fds(&atoms, &posts_key()) {
            ChaseOutcome::Consistent { atoms, subst } => {
                // The param stays distinct from the constant; the variables
                // in the remaining dependent position unified.
                assert_eq!(atoms.len(), 2);
                assert!(subst.contains_key("a") || subst.contains_key("b"));
            }
            ChaseOutcome::Inconsistent => panic!("params must not conflict"),
        }
    }

    #[test]
    fn empty_deps_is_identity() {
        let atoms = [Atom::new("R", vec![Term::int(1)])];
        match chase_fds(&atoms, &Dependencies::none()) {
            ChaseOutcome::Consistent { atoms: out, subst } => {
                assert_eq!(out.len(), 1);
                assert!(subst.is_empty());
            }
            ChaseOutcome::Inconsistent => panic!(),
        }
    }

    #[test]
    fn ind_chase_adds_missing_parent() {
        // Docs(d, s) with FK Docs.SId -> Spaces.SId spawns Spaces(s, _).
        let deps = Dependencies::none().with_inclusion(Ind {
            child: "Docs".into(),
            child_cols: vec![1],
            parent: "Spaces".into(),
            parent_cols: vec![0],
            parent_arity: 2,
        });
        let atoms = [Atom::new("Docs", vec![Term::var("d"), Term::var("s")])];
        match chase_full(&atoms, &deps) {
            ChaseOutcome::Consistent { atoms, .. } => {
                assert_eq!(atoms.len(), 2);
                let parent = atoms.iter().find(|a| a.relation == "Spaces").unwrap();
                assert_eq!(parent.args[0], Term::var("s"));
            }
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn ind_chase_skips_present_parent() {
        let deps = Dependencies::none().with_inclusion(Ind {
            child: "Docs".into(),
            child_cols: vec![1],
            parent: "Spaces".into(),
            parent_cols: vec![0],
            parent_arity: 2,
        });
        let atoms = [
            Atom::new("Docs", vec![Term::var("d"), Term::int(7)]),
            Atom::new("Spaces", vec![Term::int(7), Term::var("n")]),
        ];
        match chase_full(&atoms, &deps) {
            ChaseOutcome::Consistent { atoms, .. } => assert_eq!(atoms.len(), 2),
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn ind_and_fd_interact() {
        // The spawned parent merges with a keyed sibling.
        let deps = Dependencies::none()
            .with_key("Spaces", vec![0])
            .with_inclusion(Ind {
                child: "Docs".into(),
                child_cols: vec![1],
                parent: "Spaces".into(),
                parent_cols: vec![0],
                parent_arity: 2,
            });
        let atoms = [
            Atom::new("Docs", vec![Term::var("d"), Term::int(7)]),
            Atom::new("Spaces", vec![Term::int(7), Term::str("eng")]),
        ];
        match chase_full(&atoms, &deps) {
            ChaseOutcome::Consistent { atoms, .. } => {
                // No duplicate Spaces row: the FK target is the named row.
                assert_eq!(atoms.iter().filter(|a| a.relation == "Spaces").count(), 1);
            }
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn cyclic_inds_terminate() {
        // A(x) -> B(x) and B(x) -> A(x): parents satisfy each other after
        // one round; the round cap guards deeper cycles.
        let deps = Dependencies::none()
            .with_inclusion(Ind {
                child: "A".into(),
                child_cols: vec![0],
                parent: "B".into(),
                parent_cols: vec![0],
                parent_arity: 1,
            })
            .with_inclusion(Ind {
                child: "B".into(),
                child_cols: vec![0],
                parent: "A".into(),
                parent_cols: vec![0],
                parent_arity: 1,
            });
        let atoms = [Atom::new("A", vec![Term::int(1)])];
        match chase_full(&atoms, &deps) {
            ChaseOutcome::Consistent { atoms, .. } => {
                assert!(atoms.len() <= 3, "bounded: {atoms:?}");
            }
            ChaseOutcome::Inconsistent => panic!("consistent case"),
        }
    }

    #[test]
    fn normalize_merges_keyed_duplicates() {
        let deps = Dependencies::none().with_key("Docs", vec![0]);
        let q = crate::cq::Cq::new(
            vec![Term::var("t1")],
            vec![
                Atom::new(
                    "Docs",
                    vec![Term::var("d"), Term::var("s1"), Term::var("t1")],
                ),
                Atom::new(
                    "Docs",
                    vec![Term::var("d"), Term::var("s2"), Term::var("t2")],
                ),
            ],
            vec![],
        );
        let n = normalize_cq(&q, &deps);
        assert_eq!(n.atoms.len(), 1);
        // The head survived the unification.
        assert_eq!(n.head.len(), 1);
    }
}
