//! Answering queries using views: contained and equivalent rewritings.
//!
//! The generator follows the MiniCon idea (Pottinger & Halevy): for each view
//! it enumerates *MiniCon descriptions* (MCDs) — mappings from a subset of
//! the query's subgoals onto the view's subgoals that respect
//! distinguished-variable requirements — then combines MCDs with disjoint
//! coverage into candidate rewritings. Every candidate is then *verified*
//! with the sound containment checker, so generation may be liberal without
//! threatening soundness:
//!
//! * [`contained_rewritings`] keeps candidates whose expansion is contained
//!   in the query (used for maximally-contained rewritings, §5.2.2 of the
//!   paper, and for query-narrowing patches);
//! * [`equivalent_rewriting`] additionally requires the query to be
//!   contained in the expansion *given the trace facts* — the compliance
//!   condition of the Blockaid-style checker.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::containment::{contained, contained_given_deps};
use crate::cq::{Atom, Cq, Subst, Term, Ucq};
use crate::deps::Dependencies;
use crate::error::LogicError;
use crate::homomorphism::{find_homomorphisms, HomProblem};
use crate::instance::Instance;
use crate::sym::{Sym, ToSym};

/// Bound on MCDs per view and on assembled combinations, keeping worst-case
/// work polynomially bounded in practice.
const MAX_MCDS: usize = 512;
const MAX_COMBOS: usize = 1024;

/// A named collection of view definitions.
#[derive(Debug, Clone, Default)]
pub struct ViewSet {
    views: Vec<Cq>,
}

impl ViewSet {
    /// Creates a view set; every view must carry a unique name.
    pub fn new(views: Vec<Cq>) -> Result<ViewSet, LogicError> {
        let mut names: BTreeSet<Sym> = BTreeSet::new();
        for v in &views {
            let name = v
                .name
                .ok_or_else(|| LogicError::Internal("view without a name".into()))?;
            if !names.insert(name) {
                return Err(LogicError::Internal(format!("duplicate view name {name}")));
            }
        }
        Ok(ViewSet { views })
    }

    /// Creates a view set from views whose names are already known to be
    /// unique — e.g. a subset of an existing [`ViewSet`], or views drawn
    /// from a policy that enforces name uniqueness at construction. Skips
    /// the name-validation pass of [`ViewSet::new`]; callers own the
    /// uniqueness invariant.
    pub fn from_prevalidated(views: Vec<Cq>) -> ViewSet {
        ViewSet { views }
    }

    /// The views.
    pub fn views(&self) -> &[Cq] {
        &self.views
    }

    /// Looks up a view by name (accepts `&str` or `Sym`).
    pub fn get<K: ToSym + ?Sized>(&self, name: &K) -> Option<&Cq> {
        let k = name.to_sym();
        self.views
            .iter()
            .find(|v| v.name.map(Sym::id) == Some(k.id()))
    }
}

/// Indices of the views that can possibly participate in a rewriting of
/// `q`: those sharing at least one relation name with `q`'s body.
///
/// This is the cheap relation-signature pre-filter behind compiled
/// template plans. It is *decision-preserving* for
/// [`equivalent_rewriting_deps`]: an MCD requires a query atom and a view
/// atom with the same relation name and arity ([`mcds_for_view`]), so a
/// view sharing no relation with `q` yields zero MCDs in both strict and
/// relaxed mode and can never appear in a candidate; dropping it leaves
/// the MCD accumulation sequence (and hence every `MAX_MCDS` /
/// `MAX_COMBOS` truncation point) unchanged. Key-dependency
/// normalization ([`crate::deps::normalize_cq`]) only merges or rewrites
/// atoms in place — it never introduces a relation that was absent — and
/// fact reductions only *remove* query atoms, so the filter stays sound
/// after both. Pruning by name alone (ignoring arity) is deliberately a
/// superset of the MCD gate.
pub fn candidate_view_indices(q: &Cq, views: &ViewSet) -> Vec<usize> {
    let q_rels: BTreeSet<Sym> = q.atoms.iter().map(|a| a.relation).collect();
    views
        .views
        .iter()
        .enumerate()
        .filter(|(_, v)| v.atoms.iter().any(|a| q_rels.contains(&a.relation)))
        .map(|(i, _)| i)
        .collect()
}

/// Unfolds a rewriting (whose atoms reference view names) into base tables.
pub fn expand(rw: &Cq, views: &ViewSet) -> Result<Cq, LogicError> {
    let mut out = Cq::new(rw.head.clone(), Vec::new(), rw.comparisons.clone());
    out.name = rw.name;
    let mut fresh = 0usize;
    let mut pending_eqs: Vec<(Term, Term)> = Vec::new();

    for (i, atom) in rw.atoms.iter().enumerate() {
        let view = views
            .get(&atom.relation)
            .ok_or_else(|| LogicError::UnknownSymbol(format!("view {}", atom.relation)))?;
        if view.head.len() != atom.args.len() {
            return Err(LogicError::Internal(format!(
                "view atom {} arity mismatch",
                atom.relation
            )));
        }
        // Rename the view body apart, then unify head terms with atom args.
        let renamed = view.rename_vars(&format!("e{i}·"));
        let mut subst = Subst::new();
        for (h, a) in renamed.head.iter().zip(&atom.args) {
            match h {
                Term::Var(v) => match subst.get(v) {
                    Some(prev) if prev != a => pending_eqs.push((*prev, *a)),
                    Some(_) => {}
                    None => {
                        subst.insert(*v, *a);
                    }
                },
                rigid => {
                    if rigid != a {
                        pending_eqs.push((*rigid, *a));
                    }
                }
            }
        }
        let body = renamed.substitute(&subst);
        out.atoms.extend(body.atoms);
        out.comparisons.extend(body.comparisons);
        fresh += 1;
    }
    let _ = fresh;

    // Resolve pending equalities: substitute variables, or record residual
    // equality comparisons between rigid terms.
    for (a, b) in pending_eqs {
        match (&a, &b) {
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                let mut s = Subst::new();
                s.insert(*v, *t);
                out = out.substitute(&s);
            }
            _ => out
                .comparisons
                .push(crate::cq::Comparison::new(a, crate::cq::CmpOp::Eq, b)),
        }
    }
    Ok(out)
}

/// One MiniCon description: a view applied to cover some query subgoals.
#[derive(Debug, Clone)]
struct Mcd {
    view_idx: usize,
    covered: BTreeSet<usize>,
    /// Query variable → view variable symbol.
    fwd: BTreeMap<Sym, Sym>,
    /// View variable → query term.
    inv: BTreeMap<Sym, Term>,
    /// Query variables whose comparisons are entailed inside the view (no
    /// re-application needed or possible).
    entailed_vars: BTreeSet<Sym>,
}

/// Enumerates MCDs for one view against the query. In `relaxed` mode the
/// MiniCon distinguished-variable requirements are waived — candidates are
/// then only as good as the (dependency-aware) verification that follows,
/// which is exactly the point: joins recoverable through key dependencies
/// are invisible to the syntactic MiniCon test.
fn mcds_for_view(q: &Cq, view: &Cq, view_idx: usize, relaxed: bool) -> Vec<Mcd> {
    let mut out = Vec::new();
    let head_vars: BTreeSet<Sym> = view.head_vars().into_iter().collect();
    let q_head_vars: BTreeSet<Sym> = q.head_vars().into_iter().collect();
    let q_cmp_vars: BTreeSet<Sym> = q
        .comparisons
        .iter()
        .flat_map(|c| [c.lhs.as_var(), c.rhs.as_var()])
        .flatten()
        .collect();

    // Recursive choice: each query atom is either skipped or mapped onto a
    // compatible view atom.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        q: &Cq,
        view: &Cq,
        view_idx: usize,
        idx: usize,
        covered: &mut BTreeSet<usize>,
        fwd: &mut BTreeMap<Sym, Sym>,
        inv: &mut BTreeMap<Sym, Term>,
        out: &mut Vec<Mcd>,
    ) {
        crate::probe::bump_rewrite_iteration();
        if out.len() >= MAX_MCDS {
            return;
        }
        if idx == q.atoms.len() {
            if !covered.is_empty() {
                out.push(Mcd {
                    view_idx,
                    covered: covered.clone(),
                    fwd: fwd.clone(),
                    inv: inv.clone(),
                    entailed_vars: BTreeSet::new(),
                });
            }
            return;
        }
        // Option 1: skip this atom.
        rec(q, view, view_idx, idx + 1, covered, fwd, inv, out);
        // Option 2: map it onto each compatible view atom.
        let g = &q.atoms[idx];
        for va in &view.atoms {
            if va.relation != g.relation || va.args.len() != g.args.len() {
                continue;
            }
            let mut added_fwd: Vec<Sym> = Vec::new();
            let mut added_inv: Vec<Sym> = Vec::new();
            let mut ok = true;
            for (qt, vt) in g.args.iter().zip(&va.args) {
                match vt {
                    Term::Var(y) => {
                        // inv consistency.
                        match inv.get(y) {
                            Some(prev) if prev != qt => {
                                ok = false;
                                break;
                            }
                            Some(_) => {}
                            None => {
                                inv.insert(*y, *qt);
                                added_inv.push(*y);
                            }
                        }
                        // fwd consistency for query variables.
                        if let Term::Var(x) = qt {
                            match fwd.get(x) {
                                Some(prev) if prev != y => {
                                    ok = false;
                                    break;
                                }
                                Some(_) => {}
                                None => {
                                    fwd.insert(*x, *y);
                                    added_fwd.push(*x);
                                }
                            }
                        }
                    }
                    rigid => {
                        if qt != rigid {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if ok {
                covered.insert(idx);
                rec(q, view, view_idx, idx + 1, covered, fwd, inv, out);
                covered.remove(&idx);
            }
            for x in added_fwd {
                fwd.remove(&x);
            }
            for y in added_inv {
                inv.remove(&y);
            }
        }
    }

    let mut covered = BTreeSet::new();
    let mut fwd = BTreeMap::new();
    let mut inv = BTreeMap::new();
    rec(
        q,
        view,
        view_idx,
        0,
        &mut covered,
        &mut fwd,
        &mut inv,
        &mut out,
    );

    // Validate the MiniCon property per MCD (waived in relaxed mode; the
    // assembly's safety check and the verifier still gate every candidate).
    if relaxed {
        return out;
    }
    let view_ctx = crate::compare::CmpContext::new(&view.comparisons);
    out.retain_mut(|m| {
        for (x, y) in &m.fwd {
            let shared_outside = q.atoms.iter().enumerate().any(|(i, a)| {
                !m.covered.contains(&i) && a.args.iter().any(|t| t.as_var() == Some(*x))
            });
            // Distinguished in the query, or shared with uncovered subgoals:
            // the view must export it.
            if (q_head_vars.contains(x) || shared_outside) && !head_vars.contains(y) {
                return false;
            }
            // Used in a comparison: the view must export it (we re-apply the
            // comparison on the rewriting) — unless the view's own
            // comparisons already entail every comparison on it.
            if q_cmp_vars.contains(x) && !head_vars.contains(y) {
                let all_entailed = q
                    .comparisons
                    .iter()
                    .filter(|c| c.lhs.as_var() == Some(*x) || c.rhs.as_var() == Some(*x))
                    .all(|c| {
                        let mapped = map_comparison_fwd(c, &m.fwd);
                        match mapped {
                            Some(mc) => view_ctx.entails(&mc),
                            None => false,
                        }
                    });
                if !all_entailed {
                    return false;
                }
                m.entailed_vars.insert(*x);
            }
        }
        // Rigid query terms matched against view variables require the view
        // variable to be exported so the rewriting can select on it.
        for (y, qt) in &m.inv {
            if qt.is_rigid() && !head_vars.contains(y) {
                return false;
            }
        }
        true
    });
    out
}

/// Maps a query comparison through an MCD's forward variable mapping;
/// `None` if some variable is unmapped.
fn map_comparison_fwd(
    c: &crate::cq::Comparison,
    fwd: &BTreeMap<Sym, Sym>,
) -> Option<crate::cq::Comparison> {
    let map = |t: &Term| -> Option<Term> {
        match t {
            Term::Var(v) => fwd.get(v).map(|y| Term::Var(*y)),
            rigid => Some(*rigid),
        }
    };
    Some(crate::cq::Comparison::new(map(&c.lhs)?, c.op, map(&c.rhs)?))
}

/// Builds the view atom for an MCD; unexported positions get fresh variables.
fn view_atom(m: &Mcd, view: &Cq, fresh: &mut usize) -> Atom {
    let args = view
        .head
        .iter()
        .map(|h| match h {
            Term::Var(y) => m.inv.get(y).copied().unwrap_or_else(|| {
                *fresh += 1;
                Term::var(format!("r·{fresh}"))
            }),
            rigid => *rigid,
        })
        .collect();
    Atom::new(view.name.expect("views are named"), args)
}

/// Generates candidate rewritings (unverified).
fn candidates(q: &Cq, views: &ViewSet) -> Vec<Cq> {
    candidates_mode(q, views, false)
}

fn candidates_mode(q: &Cq, views: &ViewSet, relaxed: bool) -> Vec<Cq> {
    let mut all_mcds: Vec<Mcd> = Vec::new();
    for (vi, v) in views.views.iter().enumerate() {
        all_mcds.extend(mcds_for_view(q, v, vi, relaxed));
        if all_mcds.len() >= MAX_MCDS {
            break;
        }
    }

    // Combine MCDs with pairwise-disjoint coverage into full covers.
    let n = q.atoms.len();
    let mut combos: Vec<Vec<usize>> = Vec::new();
    fn cover(
        all: &[Mcd],
        n: usize,
        covered: &mut BTreeSet<usize>,
        chosen: &mut Vec<usize>,
        combos: &mut Vec<Vec<usize>>,
    ) {
        crate::probe::bump_rewrite_iteration();
        if combos.len() >= MAX_COMBOS {
            return;
        }
        let next = (0..n).find(|i| !covered.contains(i));
        let Some(next) = next else {
            combos.push(chosen.clone());
            return;
        };
        for (mi, m) in all.iter().enumerate() {
            if !m.covered.contains(&next) {
                continue;
            }
            if m.covered.iter().any(|i| covered.contains(i)) {
                continue;
            }
            covered.extend(m.covered.iter().copied());
            chosen.push(mi);
            cover(all, n, covered, chosen, combos);
            chosen.pop();
            for i in &m.covered {
                covered.remove(i);
            }
        }
    }
    let mut covered = BTreeSet::new();
    let mut chosen = Vec::new();
    cover(&all_mcds, n, &mut covered, &mut chosen, &mut combos);

    // Relaxed mode additionally admits one *redundant* view application per
    // combination: a view atom that re-covers already-covered subgoals can
    // re-export a join variable another view hides (e.g. a metadata view
    // re-exposing the post→group link), which only the dependency-aware
    // verifier can certify.
    if relaxed {
        let base = combos.clone();
        for combo in base {
            for mi in 0..all_mcds.len() {
                if combos.len() >= MAX_COMBOS {
                    break;
                }
                if !combo.contains(&mi) {
                    let mut extended = combo.clone();
                    extended.push(mi);
                    combos.push(extended);
                }
            }
        }
    }

    let mut out = Vec::new();
    for combo in combos {
        let mut fresh = 0usize;
        let mut rw = Cq::new(q.head.clone(), Vec::new(), Vec::new());
        let mut ok = true;
        let mut entailed: BTreeSet<Sym> = BTreeSet::new();
        for &mi in &combo {
            let m = &all_mcds[mi];
            let view = &views.views[m.view_idx];
            rw.atoms.push(view_atom(m, view, &mut fresh));
            entailed.extend(m.entailed_vars.iter().copied());
        }
        let avail: BTreeSet<Sym> = rw
            .atoms
            .iter()
            .flat_map(|a| a.args.iter().filter_map(|t| t.as_var()))
            .collect();
        // Comparisons re-apply on the rewriting when their variables are
        // exported; otherwise they must be entailed inside a chosen view.
        // (In relaxed mode unavailable comparisons are dropped and the
        // verifier decides.)
        for c in &q.comparisons {
            let vars: Vec<Sym> = [&c.lhs, &c.rhs].iter().filter_map(|t| t.as_var()).collect();
            if vars.iter().all(|v| avail.contains(v)) {
                rw.comparisons.push(*c);
            } else if !relaxed && !vars.iter().all(|v| entailed.contains(v)) {
                ok = false;
            }
        }
        // Safety: every head variable must occur in some atom.
        for v in rw.head_vars() {
            if !avail.contains(&v) {
                ok = false;
            }
        }
        if ok {
            out.push(rw);
        }
    }
    out
}

/// Returns verified contained rewritings of `q` using `views`.
///
/// Every returned rewriting `R` satisfies `expand(R) ⊆ q`.
pub fn contained_rewritings(q: &Cq, views: &ViewSet) -> Vec<Cq> {
    let mut out = Vec::new();
    for rw in candidates(q, views) {
        if let Ok(exp) = expand(&rw, views) {
            if crate::containment::satisfiable(&exp) && contained(&exp, q) {
                out.push(rw);
            }
        }
    }
    out
}

/// The maximally-contained rewriting: the union of all verified contained
/// rewritings, pruned of disjuncts subsumed by others.
pub fn maximally_contained(q: &Cq, views: &ViewSet) -> Ucq {
    let rewritings = contained_rewritings(q, views);
    let expansions: Vec<Cq> = rewritings
        .iter()
        .filter_map(|rw| expand(rw, views).ok())
        .collect();
    // Prune disjuncts whose expansion is contained in another's.
    let mut keep = vec![true; rewritings.len()];
    for i in 0..rewritings.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rewritings.len() {
            if i != j && keep[i] && keep[j] && contained(&expansions[i], &expansions[j]) {
                // i is subsumed by j; drop i unless they are mutually
                // contained (then drop the later one).
                if !contained(&expansions[j], &expansions[i]) || j < i {
                    keep[i] = false;
                }
            }
        }
    }
    Ucq {
        disjuncts: rewritings
            .into_iter()
            .zip(keep)
            .filter_map(|(rw, k)| k.then_some(rw))
            .collect(),
    }
}

/// Seeks a rewriting `R` with `expand(R) ≡ q` over all databases containing
/// `facts`. This is the compliance certificate of the enforcement checker.
///
/// Besides pure view rewritings, the search also *reduces* the query by
/// embedding subsets of its subgoals directly into the known facts (an
/// already-witnessed join branch needs no view to cover it).
pub fn equivalent_rewriting(q: &Cq, views: &ViewSet, facts: &[Atom]) -> Option<Cq> {
    equivalent_rewriting_deps(q, views, facts, &Dependencies::none())
}

/// [`equivalent_rewriting`] with key dependencies: the containment checks
/// run over databases satisfying the keys, which lets trace facts about a
/// keyed row (e.g. a post's group id) discharge join branches exactly.
pub fn equivalent_rewriting_deps(
    q: &Cq,
    views: &ViewSet,
    facts: &[Atom],
    deps: &Dependencies,
) -> Option<Cq> {
    // Normalize the query and views under the keys: redundant atoms the
    // chase merges would otherwise defeat syntactic candidate generation.
    let (q_n, views_n);
    let (q, views) = if deps.is_empty() {
        (q, views)
    } else {
        q_n = crate::deps::normalize_cq(q, deps);
        views_n = ViewSet {
            views: views
                .views
                .iter()
                .map(|v| crate::deps::normalize_cq(v, deps))
                .collect(),
        };
        (&q_n, &views_n)
    };
    // Try the query as-is, then fact-reduced variants; strict MiniCon
    // candidates first, relaxed ones (verification-gated) second.
    for relaxed in [false, true] {
        if relaxed && deps.is_empty() {
            break; // relaxation only pays off with dependency reasoning
        }
        for reduced in fact_reductions(q, facts) {
            if reduced.atoms.is_empty() {
                // Fully witnessed by facts: the query is determined outright.
                if contained_given_deps(q, &reduced, facts, deps)
                    && contained_given_deps(&reduced, q, facts, deps)
                {
                    return Some(reduced);
                }
                continue;
            }
            for rw in candidates_mode(&reduced, views, relaxed) {
                let Ok(exp) = expand(&rw, views) else {
                    continue;
                };
                if contained_given_deps(q, &exp, facts, deps)
                    && contained_given_deps(&exp, q, facts, deps)
                {
                    return Some(rw);
                }
            }
        }
    }
    None
}

/// Returns verified *containing* rewritings of `q` using `views`: every
/// returned `R` satisfies `q ⊆ expand(R)`.
///
/// A containing rewriting computes, from the view contents alone, a superset
/// of the query's answer — so a tuple *absent* from `R`'s answer is certainly
/// absent from `q`'s. This is the certificate behind negative query
/// implication (NQI) in `bep-disclose`.
///
/// Generation: choose up to `max_atoms` views; for each, find a homomorphism
/// from its body into the frozen query (i.e. the query implies a match of
/// that view); the view atom's arguments are the homomorphic images of the
/// view head. The rewriting's head is the query's head, which must be
/// covered by the collected view atoms. Every candidate is verified.
pub fn containing_rewritings(q: &Cq, views: &ViewSet, max_atoms: usize) -> Vec<Cq> {
    let frozen = Instance::freeze(q);
    let ctx = crate::compare::CmpContext::new(&frozen.constraints);

    // Per view, homomorphisms from its body into the frozen query.
    let mut applications: Vec<Atom> = Vec::new();
    for view in &views.views {
        let renamed = view.rename_vars("c·");
        let p = HomProblem {
            source_atoms: &renamed.atoms,
            source_comparisons: &renamed.comparisons,
            target_atoms: &frozen.atoms,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        for h in find_homomorphisms(&p, 16) {
            let args: Vec<Term> = renamed
                .head
                .iter()
                .map(|t| crate::cq::apply_term(t, &h))
                .collect();
            let atom = Atom::new(view.name.expect("views are named"), args);
            if !applications.contains(&atom) {
                applications.push(atom);
            }
        }
    }

    // Combine up to `max_atoms` applications covering the query head vars.
    let head_vars: BTreeSet<Sym> = q.head_vars().into_iter().collect();
    let mut out: Vec<Cq> = Vec::new();
    let mut choose = |combo: &[&Atom]| {
        let avail: BTreeSet<Sym> = combo
            .iter()
            .flat_map(|a| a.args.iter().filter_map(|t| t.as_var()))
            .collect();
        if !head_vars.iter().all(|v| avail.contains(v)) {
            return;
        }
        let rw = Cq::new(
            q.head.clone(),
            combo.iter().map(|a| (*a).clone()).collect(),
            Vec::new(),
        );
        if let Ok(exp) = expand(&rw, views) {
            if contained(q, &exp) && !out.contains(&rw) {
                out.push(rw);
            }
        }
    };
    // Size-1 and size-2 combinations (sufficient for the joins NQI needs;
    // callers can raise `max_atoms` for deeper correlations).
    for a in &applications {
        choose(&[a]);
    }
    if max_atoms >= 2 {
        for (i, a) in applications.iter().enumerate() {
            for b in applications.iter().skip(i + 1) {
                choose(&[a, b]);
            }
        }
    }
    if max_atoms >= 3 {
        for (i, a) in applications.iter().enumerate() {
            for (j, b) in applications.iter().enumerate().skip(i + 1) {
                for c in applications.iter().skip(j + 1) {
                    choose(&[a, b, c]);
                }
            }
        }
    }
    out
}

/// Enumerates versions of `q` with subsets of its atoms discharged against
/// the known facts (including the empty reduction, i.e. `q` itself, first).
fn fact_reductions(q: &Cq, facts: &[Atom]) -> Vec<Cq> {
    let mut out = vec![q.clone()];
    if facts.is_empty() || q.atoms.is_empty() {
        return out;
    }
    let fact_instance = Instance {
        atoms: facts.to_vec(),
        constraints: Vec::new(),
    };
    let ctx = crate::compare::CmpContext::new(&fact_instance.constraints);

    // For each nonempty subset of atoms (bounded), try to embed it into the
    // facts; on success, drop those atoms under the embedding substitution.
    let n = q.atoms.len();
    if n > 6 {
        return out; // subsets explode; the unreduced attempt still runs
    }
    for mask in 1u32..(1 << n) {
        let subset: Vec<Atom> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| q.atoms[i].clone())
            .collect();
        let p = HomProblem {
            source_atoms: &subset,
            source_comparisons: &[],
            target_atoms: &fact_instance.atoms,
            target_ctx: &ctx,
            initial: Subst::new(),
        };
        for h in find_homomorphisms(&p, 8) {
            let remaining: Vec<Atom> = (0..n)
                .filter(|i| mask & (1 << i) == 0)
                .map(|i| crate::cq::apply_atom(&q.atoms[i], &h))
                .collect();
            let mut reduced = Cq::new(
                q.head
                    .iter()
                    .map(|t| crate::cq::apply_term(t, &h))
                    .collect(),
                remaining,
                q.comparisons
                    .iter()
                    .map(|c| crate::cq::apply_comparison(c, &h))
                    .collect(),
            );
            reduced.name = q.name;
            if !out.contains(&reduced) {
                out.push(reduced);
            }
            if out.len() > 64 {
                return out;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::{CmpOp, Comparison};

    /// The paper's calendar policy, instantiated for user 1.
    /// V1(e) :- Attendance(1, e, n)
    /// V2(e, t, k, n) :- Events(e, t, k), Attendance(1, e, n)
    fn calendar_views() -> ViewSet {
        let mut v1 = Cq::new(
            vec![Term::var("e")],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::var("e"), Term::var("n")],
            )],
            vec![],
        );
        v1.name = Some("V1".into());
        let mut v2 = Cq::new(
            vec![
                Term::var("e"),
                Term::var("t"),
                Term::var("k"),
                Term::var("n"),
            ],
            vec![
                Atom::new(
                    "Events",
                    vec![Term::var("e"), Term::var("t"), Term::var("k")],
                ),
                Atom::new(
                    "Attendance",
                    vec![Term::int(1), Term::var("e"), Term::var("n")],
                ),
            ],
            vec![],
        );
        v2.name = Some("V2".into());
        ViewSet::new(vec![v1, v2]).unwrap()
    }

    fn q1() -> Cq {
        // SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2
        Cq::new(
            vec![Term::int(1)],
            vec![Atom::new(
                "Attendance",
                vec![Term::int(1), Term::int(2), Term::var("n")],
            )],
            vec![],
        )
    }

    fn q2() -> Cq {
        // SELECT Title, Kind FROM Events WHERE EId = 2
        Cq::new(
            vec![Term::var("t"), Term::var("k")],
            vec![Atom::new(
                "Events",
                vec![Term::int(2), Term::var("t"), Term::var("k")],
            )],
            vec![],
        )
    }

    #[test]
    fn q1_has_equivalent_rewriting() {
        let views = calendar_views();
        let rw = equivalent_rewriting(&q1(), &views, &[]).expect("Q1 should be allowed");
        assert_eq!(rw.atoms.len(), 1);
        assert_eq!(rw.atoms[0].relation, "V1");
        assert_eq!(rw.atoms[0].args, vec![Term::int(2)]);
    }

    #[test]
    fn q2_blocked_without_history_allowed_with() {
        let views = calendar_views();
        // In isolation: no equivalent rewriting (V2 requires attendance).
        assert!(equivalent_rewriting(&q2(), &views, &[]).is_none());
        // With the trace fact from Q1 returning non-empty:
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        let rw = equivalent_rewriting(&q2(), &views, std::slice::from_ref(&fact))
            .expect("Q2 should be allowed given the trace");
        assert!(!rw.atoms.is_empty());
    }

    #[test]
    fn reissued_query_is_allowed_via_facts_alone() {
        let views = ViewSet::new(vec![]).unwrap();
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        // Even with NO views, re-asking the already-answered Q1 is compliant.
        let rw = equivalent_rewriting(&q1(), &views, std::slice::from_ref(&fact))
            .expect("re-issued query should be allowed");
        assert!(rw.atoms.is_empty());
    }

    #[test]
    fn expansion_unfolds_views() {
        let views = calendar_views();
        let rw = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "V2",
                vec![Term::int(2), Term::var("t"), Term::var("k"), Term::var("n")],
            )],
            vec![],
        );
        let exp = expand(&rw, &views).unwrap();
        assert_eq!(exp.atoms.len(), 2);
        assert!(exp.atoms.iter().any(|a| a.relation == "Events"));
        assert!(exp.atoms.iter().any(|a| a.relation == "Attendance"));
    }

    #[test]
    fn contained_rewritings_are_contained() {
        let views = calendar_views();
        // Q: all event titles (broader than the policy allows).
        let q = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        let rws = contained_rewritings(&q, &views);
        assert!(!rws.is_empty(), "V2 gives a contained rewriting");
        for rw in &rws {
            let exp = expand(rw, &views).unwrap();
            assert!(contained(&exp, &q));
        }
        // But no equivalent rewriting exists: the query reveals more.
        assert!(equivalent_rewriting(&q, &views, &[]).is_none());
    }

    #[test]
    fn maximally_contained_covers_union() {
        // Two selective views over R; MCR of "all of R" is their union.
        let mut va = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![Comparison::new(Term::var("x"), CmpOp::Ge, Term::int(10))],
        );
        va.name = Some("Va".into());
        let mut vb = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![Comparison::new(Term::var("x"), CmpOp::Lt, Term::int(0))],
        );
        vb.name = Some("Vb".into());
        let views = ViewSet::new(vec![va, vb]).unwrap();
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let mcr = maximally_contained(&q, &views);
        assert_eq!(mcr.disjuncts.len(), 2);
    }

    #[test]
    fn comparison_selection_on_views() {
        // View exports ages; query asks for age >= 60 — the rewriting keeps
        // the comparison on the exported column.
        let mut v = Cq::new(
            vec![Term::var("n"), Term::var("a")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![],
        );
        v.name = Some("AllEmployees".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let q = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        let rw = equivalent_rewriting(&q, &views, &[]).expect("selection over view");
        assert_eq!(rw.comparisons.len(), 1);
    }

    #[test]
    fn view_with_comparison_gives_contained_not_equivalent() {
        // View: only seniors. Query: everyone. Contained but not equivalent.
        let mut v = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        v.name = Some("Seniors".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let q = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![],
        );
        assert!(!contained_rewritings(&q, &views).is_empty());
        assert!(equivalent_rewriting(&q, &views, &[]).is_none());
    }

    #[test]
    fn unexported_join_var_blocks_rewriting() {
        // View projects only the event title, hiding EId; a query that needs
        // to select on EId cannot be rewritten.
        let mut v = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::var("e"), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        v.name = Some("Titles".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let q = Cq::new(
            vec![Term::var("t")],
            vec![Atom::new(
                "Events",
                vec![Term::int(7), Term::var("t"), Term::var("k")],
            )],
            vec![],
        );
        assert!(equivalent_rewriting(&q, &views, &[]).is_none());
        // It is not even containable: selecting EId = 7 from titles alone is
        // impossible.
        assert!(contained_rewritings(&q, &views).is_empty());
    }

    #[test]
    fn comparison_entailed_inside_view() {
        // View: seniors (age >= 60, age NOT exported). Query: adults with
        // age >= 18 — entailed inside the view, so the rewriting succeeds
        // even though the view hides the age column.
        let mut v = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        v.name = Some("Seniors".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let q = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
        );
        // Contained (not equivalent): every senior is an adult.
        let rws = contained_rewritings(&q, &views);
        assert!(
            !rws.is_empty(),
            "entailed comparison should permit rewriting"
        );
        for rw in &rws {
            let exp = expand(rw, &views).unwrap();
            assert!(contained(&exp, &q));
        }
    }

    #[test]
    fn containing_rewriting_single_view() {
        // View: adults. Query: seniors. Adults ⊇ seniors.
        let mut v = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
        );
        v.name = Some("Adults".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let q = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        let rws = containing_rewritings(&q, &views, 2);
        assert!(!rws.is_empty());
        for rw in &rws {
            let exp = expand(rw, &views).unwrap();
            assert!(contained(&q, &exp), "q ⊆ expansion must hold");
        }
    }

    #[test]
    fn candidate_view_indices_prunes_by_relation_signature() {
        let views = calendar_views(); // V1: Attendance; V2: Events+Attendance
        assert_eq!(candidate_view_indices(&q1(), &views), vec![0, 1]);
        // Q2 touches only Events → only V2 can participate.
        assert_eq!(candidate_view_indices(&q2(), &views), vec![1]);
        // A query over an unrelated relation prunes everything.
        let q = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Unrelated", vec![Term::var("x")])],
            vec![],
        );
        assert!(candidate_view_indices(&q, &views).is_empty());
    }

    #[test]
    fn pruned_view_set_is_decision_identical() {
        // The compiled-plan soundness claim, checked directly: running the
        // rewriting search over only the signature-pruned views returns the
        // same verdict (and the same certificate) as the full set, with and
        // without facts, with and without dependencies.
        let views = calendar_views();
        let mut deps = Dependencies::none();
        deps = deps.with_key("Events".to_string(), vec![0]);
        let fact = Atom::new(
            "Attendance",
            vec![Term::int(1), Term::int(2), Term::var("w")],
        );
        for q in [q1(), q2()] {
            let pruned = ViewSet::from_prevalidated(
                candidate_view_indices(&q, &views)
                    .into_iter()
                    .map(|i| views.views()[i].clone())
                    .collect(),
            );
            for facts in [&[][..], std::slice::from_ref(&fact)] {
                for d in [&Dependencies::none(), &deps] {
                    let full = equivalent_rewriting_deps(&q, &views, facts, d);
                    let cut = equivalent_rewriting_deps(&q, &pruned, facts, d);
                    assert_eq!(full, cut, "pruning changed the decision for {q:?}");
                }
            }
        }
    }

    #[test]
    fn containing_rewriting_join_hospital() {
        // The hospital narrowing (Example 4.1): V1 hides the disease, V2
        // hides the patient, but their join still bounds S from above.
        let mut v1 = Cq::new(
            vec![Term::var("p"), Term::var("doc")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        v1.name = Some("PatientDoctor".into());
        let mut v2 = Cq::new(
            vec![Term::var("doc"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        v2.name = Some("DoctorDiseases".into());
        let views = ViewSet::new(vec![v1, v2]).unwrap();
        let s = Cq::new(
            vec![Term::var("p"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        let rws = containing_rewritings(&s, &views, 2);
        assert!(!rws.is_empty(), "the V1 ⋈ V2 upper bound must be found");
        // And no equivalent (or even contained) rewriting exists: the views
        // cannot pin the patient-disease link exactly.
        assert!(equivalent_rewriting(&s, &views, &[]).is_none());
    }
}
