//! Translation between the SQL AST and conjunctive queries.
//!
//! [`sql_to_ucq`] maps a `SELECT` in the select-project-join fragment
//! (plus `OR`/`IN`-lists, which expand to unions, and non-negated
//! `EXISTS`/`IN` subqueries, which fold into the body) onto a [`Ucq`].
//! Queries outside the fragment produce a typed
//! [`LogicError::OutOfFragment`] so callers can fall back to conservative
//! handling.
//!
//! [`cq_to_sql`] goes the other way, rendering a CQ as an executable
//! `SELECT` — used to turn rewritings back into SQL patches.

use std::collections::BTreeMap;

use sqlir::{
    BinaryOp, ColumnRef, Distinctness, Expr, JoinClause, Param, Query, SelectItem, TableRef,
    UnaryOp, Value,
};

use crate::cq::{Atom, CmpOp, Comparison, Cq, Subst, Term, Ucq};
use crate::error::LogicError;

/// Maximum number of disjuncts produced by DNF expansion.
pub const MAX_DISJUNCTS: usize = 64;

/// Relation schemas needed for translation (column names per table), plus
/// optional key information for dependency-aware reasoning.
#[derive(Debug, Clone, Default)]
pub struct RelSchema {
    tables: BTreeMap<String, Vec<String>>,
    keys: BTreeMap<String, Vec<usize>>,
    foreign_keys: Vec<crate::deps::Ind>,
}

impl RelSchema {
    /// Creates an empty schema.
    pub fn new() -> RelSchema {
        RelSchema::default()
    }

    /// Adds (or replaces) a table with its column names.
    pub fn add_table(
        &mut self,
        name: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) {
        self.tables
            .insert(name.into(), columns.into_iter().map(Into::into).collect());
    }

    /// Declares the primary-key column positions of a table.
    pub fn set_key(&mut self, name: impl Into<String>, key: Vec<usize>) {
        self.keys.insert(name.into(), key);
    }

    /// Declares a foreign key (child columns reference parent columns).
    /// The parent's arity is resolved from its declared columns; unknown
    /// parents are ignored.
    pub fn set_foreign_key(
        &mut self,
        child: impl Into<String>,
        child_cols: Vec<usize>,
        parent: impl Into<String>,
        parent_cols: Vec<usize>,
    ) {
        let parent = parent.into();
        let Some(parent_arity) = self.arity(&parent) else {
            return;
        };
        self.foreign_keys.push(crate::deps::Ind {
            child: crate::sym::Sym::from(child.into()),
            child_cols,
            parent: crate::sym::Sym::from(parent),
            parent_cols,
            parent_arity,
        });
    }

    /// The declared dependencies (keys and foreign keys).
    pub fn dependencies(&self) -> crate::deps::Dependencies {
        let mut deps = crate::deps::Dependencies::none();
        for (table, key) in &self.keys {
            if !key.is_empty() {
                deps = deps.with_key(table.clone(), key.clone());
            }
        }
        for ind in &self.foreign_keys {
            deps = deps.with_inclusion(ind.clone());
        }
        deps
    }

    /// Returns a table's columns.
    pub fn columns(&self, table: &str) -> Result<&[String], LogicError> {
        self.tables
            .get(table)
            .map(|v| v.as_slice())
            .ok_or_else(|| LogicError::UnknownSymbol(format!("table {table}")))
    }

    /// All table names.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(|s| s.as_str())
    }

    /// Number of columns of a table, if known.
    pub fn arity(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(|c| c.len())
    }
}

/// One table binding during translation.
#[derive(Debug, Clone)]
struct Binding {
    name: String,
    columns: Vec<String>,
    /// Variable names, one per column.
    vars: Vec<String>,
}

#[derive(Debug, Clone, Default)]
struct TransScope {
    bindings: Vec<Binding>,
}

impl TransScope {
    fn resolve(&self, col: &ColumnRef) -> Result<Option<Term>, LogicError> {
        match &col.table {
            Some(t) => {
                for b in &self.bindings {
                    if &b.name == t {
                        return match b.columns.iter().position(|c| c == &col.column) {
                            Some(i) => Ok(Some(Term::var(b.vars[i].clone()))),
                            None => Err(LogicError::UnknownSymbol(format!(
                                "column {t}.{}",
                                col.column
                            ))),
                        };
                    }
                }
                Ok(None)
            }
            None => {
                let mut found = None;
                for b in &self.bindings {
                    if let Some(i) = b.columns.iter().position(|c| c == &col.column) {
                        if found.is_some() {
                            return Err(LogicError::OutOfFragment(format!(
                                "ambiguous column {}",
                                col.column
                            )));
                        }
                        found = Some(Term::var(b.vars[i].clone()));
                    }
                }
                Ok(found)
            }
        }
    }
}

/// Translates a SQL `SELECT` into a union of conjunctive queries.
pub fn sql_to_ucq(schema: &RelSchema, q: &Query) -> Result<Ucq, LogicError> {
    let mut fresh = 0usize;
    let cqs = translate_query(schema, q, &mut fresh, None)?;
    Ok(Ucq { disjuncts: cqs })
}

/// Translates a SQL `SELECT` that must be a single conjunctive query.
pub fn sql_to_cq(schema: &RelSchema, q: &Query) -> Result<Cq, LogicError> {
    let u = sql_to_ucq(schema, q)?;
    match <[Cq; 1]>::try_from(u.disjuncts) {
        Ok([cq]) => Ok(cq),
        Err(v) => Err(LogicError::OutOfFragment(format!(
            "query expands to {} disjuncts, expected exactly 1",
            v.len()
        ))),
    }
}

fn translate_query(
    schema: &RelSchema,
    q: &Query,
    fresh: &mut usize,
    outer: Option<&TransScope>,
) -> Result<Vec<Cq>, LogicError> {
    if q.has_aggregates() || !q.group_by.is_empty() || q.having.is_some() {
        return Err(LogicError::OutOfFragment("aggregation".into()));
    }
    // ORDER BY and LIMIT do not change what information a query can reveal
    // upward (the unlimited answer determines the limited one), so both are
    // ignored for logical purposes.

    let scope_id = *fresh;
    *fresh += 1;

    let mut scope = TransScope::default();
    let mut atoms = Vec::new();
    let mut predicates: Vec<&Expr> = Vec::new();

    let add_binding = |scope: &mut TransScope,
                       atoms: &mut Vec<Atom>,
                       tref: &TableRef|
     -> Result<(), LogicError> {
        let columns = schema.columns(&tref.table)?.to_vec();
        let binding = tref.binding().to_string();
        if scope.bindings.iter().any(|b| b.name == binding) {
            return Err(LogicError::OutOfFragment(format!(
                "duplicate binding {binding}"
            )));
        }
        let vars: Vec<String> = columns
            .iter()
            .map(|c| format!("s{scope_id}.{binding}.{c}"))
            .collect();
        atoms.push(Atom::new(
            tref.table.clone(),
            vars.iter().map(|v| Term::var(v.clone())).collect(),
        ));
        scope.bindings.push(Binding {
            name: binding,
            columns,
            vars,
        });
        Ok(())
    };

    for tref in &q.from {
        add_binding(&mut scope, &mut atoms, tref)?;
    }
    for JoinClause { table, on } in &q.joins {
        add_binding(&mut scope, &mut atoms, table)?;
        predicates.push(on);
    }
    if let Some(w) = &q.where_clause {
        predicates.push(w);
    }

    // Translate the conjunction of all predicates into DNF over leaves.
    let mut disjuncts: Vec<LeafConj> = vec![LeafConj::default()];
    for p in predicates {
        let dnf = to_dnf(schema, p, &scope, outer, fresh, false)?;
        let mut next = Vec::new();
        for d in &disjuncts {
            for clause in &dnf {
                let mut merged = d.clone();
                merged.merge(clause);
                next.push(merged);
                if next.len() > MAX_DISJUNCTS {
                    return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
                }
            }
        }
        disjuncts = next;
    }

    // Head terms.
    let mut head = Vec::new();
    for item in &q.items {
        match item {
            SelectItem::Wildcard => {
                for b in &scope.bindings {
                    head.extend(b.vars.iter().map(|v| Term::var(v.clone())));
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let b = scope
                    .bindings
                    .iter()
                    .find(|b| &b.name == t)
                    .ok_or_else(|| LogicError::UnknownSymbol(format!("binding {t}")))?;
                head.extend(b.vars.iter().map(|v| Term::var(v.clone())));
            }
            SelectItem::Expr { expr, .. } => head.push(expr_to_term(expr, &scope, outer)?),
        }
    }

    // Assemble one CQ per disjunct, normalizing equalities.
    let mut out = Vec::new();
    for d in disjuncts {
        let mut cq = Cq::new(head.clone(), atoms.clone(), Vec::new());
        cq.atoms.extend(d.extra_atoms.clone());
        if let Some(cq) = normalize_disjunct(cq, &d.comparisons) {
            out.push(cq);
        }
    }
    if out.is_empty() {
        // Every disjunct was unsatisfiable; represent as one contradictory CQ
        // so callers still see a well-formed (empty) query.
        let mut cq = Cq::new(head, atoms, Vec::new());
        cq.comparisons
            .push(Comparison::new(Term::int(0), CmpOp::Eq, Term::int(1)));
        out.push(cq);
    }
    Ok(out)
}

/// A conjunction of leaf constraints accumulated during DNF expansion.
#[derive(Debug, Clone, Default)]
struct LeafConj {
    comparisons: Vec<Comparison>,
    extra_atoms: Vec<Atom>,
}

impl LeafConj {
    fn merge(&mut self, other: &LeafConj) {
        self.comparisons.extend(other.comparisons.iter().cloned());
        self.extra_atoms.extend(other.extra_atoms.iter().cloned());
    }
}

fn expr_to_term(
    e: &Expr,
    scope: &TransScope,
    outer: Option<&TransScope>,
) -> Result<Term, LogicError> {
    match e {
        Expr::Literal(v) => {
            if v.is_null() {
                Err(LogicError::OutOfFragment("NULL literal".into()))
            } else {
                Ok(Term::constant(v))
            }
        }
        Expr::Param(Param::Named(n)) => Ok(Term::param(n.clone())),
        Expr::Param(Param::Positional(i)) => Ok(Term::param(format!("arg{i}"))),
        Expr::Column(c) => match scope.resolve(c)? {
            Some(t) => Ok(t),
            None => match outer {
                Some(o) => match o.resolve(c)? {
                    Some(t) => Ok(t),
                    None => Err(LogicError::UnknownSymbol(format!("column {}", c.column))),
                },
                None => Err(LogicError::UnknownSymbol(format!("column {}", c.column))),
            },
        },
        other => Err(LogicError::OutOfFragment(format!("expression {other}"))),
    }
}

fn cmp_of(op: BinaryOp) -> Option<CmpOp> {
    Some(match op {
        BinaryOp::Eq => CmpOp::Eq,
        BinaryOp::Ne => CmpOp::Ne,
        BinaryOp::Lt => CmpOp::Lt,
        BinaryOp::Le => CmpOp::Le,
        BinaryOp::Gt => CmpOp::Gt,
        BinaryOp::Ge => CmpOp::Ge,
        _ => return None,
    })
}

fn negate_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Ne,
        CmpOp::Ne => CmpOp::Eq,
        CmpOp::Lt => CmpOp::Ge,
        CmpOp::Le => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Le,
        CmpOp::Ge => CmpOp::Lt,
    }
}

/// Converts a predicate to DNF over comparison/subquery leaves.
fn to_dnf(
    schema: &RelSchema,
    e: &Expr,
    scope: &TransScope,
    outer: Option<&TransScope>,
    fresh: &mut usize,
    negated: bool,
) -> Result<Vec<LeafConj>, LogicError> {
    match e {
        Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } if !negated => cross(schema, lhs, rhs, scope, outer, fresh, false),
        Expr::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } if !negated => {
            let mut l = to_dnf(schema, lhs, scope, outer, fresh, false)?;
            let r = to_dnf(schema, rhs, scope, outer, fresh, false)?;
            l.extend(r);
            if l.len() > MAX_DISJUNCTS {
                return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
            }
            Ok(l)
        }
        // De Morgan under negation.
        Expr::Binary {
            op: BinaryOp::And,
            lhs,
            rhs,
        } => {
            let mut l = to_dnf(schema, lhs, scope, outer, fresh, true)?;
            let r = to_dnf(schema, rhs, scope, outer, fresh, true)?;
            l.extend(r);
            if l.len() > MAX_DISJUNCTS {
                return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
            }
            Ok(l)
        }
        Expr::Binary {
            op: BinaryOp::Or,
            lhs,
            rhs,
        } => cross_negated(schema, lhs, rhs, scope, outer, fresh),
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => to_dnf(schema, expr, scope, outer, fresh, !negated),
        Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
            let mut cmp = cmp_of(*op).expect("comparison op");
            if negated {
                cmp = negate_cmp(cmp);
            }
            let l = expr_to_term(lhs, scope, outer)?;
            let r = expr_to_term(rhs, scope, outer)?;
            Ok(vec![LeafConj {
                comparisons: vec![Comparison::new(l, cmp, r)],
                extra_atoms: vec![],
            }])
        }
        Expr::InList {
            expr,
            list,
            negated: in_neg,
        } => {
            let t = expr_to_term(expr, scope, outer)?;
            let effective_neg = in_neg ^ negated;
            if effective_neg {
                // NOT IN: conjunction of disequalities (one clause).
                let comparisons = list
                    .iter()
                    .map(|item| {
                        Ok(Comparison::new(
                            t,
                            CmpOp::Ne,
                            expr_to_term(item, scope, outer)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, LogicError>>()?;
                Ok(vec![LeafConj {
                    comparisons,
                    extra_atoms: vec![],
                }])
            } else {
                // IN: disjunction of equalities.
                let mut out = Vec::new();
                for item in list {
                    out.push(LeafConj {
                        comparisons: vec![Comparison::new(
                            t,
                            CmpOp::Eq,
                            expr_to_term(item, scope, outer)?,
                        )],
                        extra_atoms: vec![],
                    });
                }
                if out.len() > MAX_DISJUNCTS {
                    return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
                }
                Ok(out)
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated: bt_neg,
        } => {
            let t = expr_to_term(expr, scope, outer)?;
            let lo = expr_to_term(low, scope, outer)?;
            let hi = expr_to_term(high, scope, outer)?;
            if bt_neg ^ negated {
                Ok(vec![
                    LeafConj {
                        comparisons: vec![Comparison::new(t, CmpOp::Lt, lo)],
                        extra_atoms: vec![],
                    },
                    LeafConj {
                        comparisons: vec![Comparison::new(t, CmpOp::Gt, hi)],
                        extra_atoms: vec![],
                    },
                ])
            } else {
                Ok(vec![LeafConj {
                    comparisons: vec![
                        Comparison::new(t, CmpOp::Ge, lo),
                        Comparison::new(t, CmpOp::Le, hi),
                    ],
                    extra_atoms: vec![],
                }])
            }
        }
        Expr::Exists {
            query,
            negated: ex_neg,
        } => {
            if ex_neg ^ negated {
                return Err(LogicError::OutOfFragment("NOT EXISTS".into()));
            }
            let sub = translate_query(schema, query, fresh, Some(scope))?;
            disjuncts_to_leaves(sub, None)
        }
        Expr::InSubquery {
            expr,
            query,
            negated: in_neg,
        } => {
            if in_neg ^ negated {
                return Err(LogicError::OutOfFragment("NOT IN (subquery)".into()));
            }
            let t = expr_to_term(expr, scope, outer)?;
            let sub = translate_query(schema, query, fresh, Some(scope))?;
            disjuncts_to_leaves(sub, Some(t))
        }
        Expr::Like {
            expr,
            pattern,
            negated: lk_neg,
        } => {
            // LIKE without wildcards is equality; everything else is out of
            // the fragment.
            if let Expr::Literal(Value::Str(p)) = pattern.as_ref() {
                if !p.contains('%') && !p.contains('_') {
                    let t = expr_to_term(expr, scope, outer)?;
                    let op = if lk_neg ^ negated {
                        CmpOp::Ne
                    } else {
                        CmpOp::Eq
                    };
                    return Ok(vec![LeafConj {
                        comparisons: vec![Comparison::new(t, op, Term::str(p.clone()))],
                        extra_atoms: vec![],
                    }]);
                }
            }
            Err(LogicError::OutOfFragment("LIKE with wildcards".into()))
        }
        Expr::Literal(Value::Bool(b)) => {
            if *b != negated {
                Ok(vec![LeafConj::default()])
            } else {
                // FALSE: contradictory clause.
                Ok(vec![LeafConj {
                    comparisons: vec![Comparison::new(Term::int(0), CmpOp::Eq, Term::int(1))],
                    extra_atoms: vec![],
                }])
            }
        }
        other => Err(LogicError::OutOfFragment(format!("predicate {other}"))),
    }
}

/// Converts subquery disjuncts into leaves whose atoms/comparisons fold into
/// the outer body; `in_term`, when set, is equated with the subquery head.
fn disjuncts_to_leaves(sub: Vec<Cq>, in_term: Option<Term>) -> Result<Vec<LeafConj>, LogicError> {
    let mut out = Vec::new();
    for cq in sub {
        let mut leaf = LeafConj {
            comparisons: cq.comparisons.clone(),
            extra_atoms: cq.atoms.clone(),
        };
        if let Some(t) = &in_term {
            if cq.head.len() != 1 {
                return Err(LogicError::OutOfFragment(
                    "IN subquery must project one column".into(),
                ));
            }
            leaf.comparisons
                .push(Comparison::new(*t, CmpOp::Eq, cq.head[0]));
        }
        out.push(leaf);
    }
    Ok(out)
}

fn cross(
    schema: &RelSchema,
    lhs: &Expr,
    rhs: &Expr,
    scope: &TransScope,
    outer: Option<&TransScope>,
    fresh: &mut usize,
    negated: bool,
) -> Result<Vec<LeafConj>, LogicError> {
    let l = to_dnf(schema, lhs, scope, outer, fresh, negated)?;
    let r = to_dnf(schema, rhs, scope, outer, fresh, negated)?;
    let mut out = Vec::new();
    for a in &l {
        for b in &r {
            let mut m = a.clone();
            m.merge(b);
            out.push(m);
            if out.len() > MAX_DISJUNCTS {
                return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
            }
        }
    }
    Ok(out)
}

/// `NOT (a OR b)` = `NOT a AND NOT b` — the cross-product of negations.
fn cross_negated(
    schema: &RelSchema,
    lhs: &Expr,
    rhs: &Expr,
    scope: &TransScope,
    outer: Option<&TransScope>,
    fresh: &mut usize,
) -> Result<Vec<LeafConj>, LogicError> {
    let l = to_dnf(schema, lhs, scope, outer, fresh, true)?;
    let r = to_dnf(schema, rhs, scope, outer, fresh, true)?;
    let mut out = Vec::new();
    for a in &l {
        for b in &r {
            let mut m = a.clone();
            m.merge(b);
            out.push(m);
            if out.len() > MAX_DISJUNCTS {
                return Err(LogicError::TooManyDisjuncts(MAX_DISJUNCTS));
            }
        }
    }
    Ok(out)
}

/// Normalizes one disjunct: substitutes equalities away, drops definitely
/// unsatisfiable disjuncts (returns `None`).
fn normalize_disjunct(mut cq: Cq, raw_comparisons: &[Comparison]) -> Option<Cq> {
    let mut comps: Vec<Comparison> = raw_comparisons.to_vec();
    let mut kept: Vec<Comparison> = Vec::new();

    // Iterate to a fixpoint: each substitution is applied to everything
    // (query and remaining comparisons) before the next one is chosen.
    loop {
        let idx = comps.iter().position(|c| {
            c.op == CmpOp::Eq && (matches!((&c.lhs, &c.rhs), (Term::Var(_), _) | (_, Term::Var(_))))
        });
        let Some(idx) = idx else { break };
        let c = comps.remove(idx);
        match (&c.lhs, &c.rhs) {
            (a, b) if a == b => {}
            (Term::Var(v), t) | (t, Term::Var(v)) => {
                let mut s = Subst::new();
                s.insert(*v, *t);
                cq = cq.substitute(&s);
                comps = comps
                    .iter()
                    .map(|x| crate::cq::apply_comparison(x, &s))
                    .collect();
            }
            _ => unreachable!("position matched a variable side"),
        }
    }
    for c in comps {
        if c.op == CmpOp::Eq {
            match (&c.lhs, &c.rhs) {
                (Term::Const(a), Term::Const(b)) => {
                    if a != b {
                        return None; // contradictory disjunct
                    }
                }
                (a, b) if a == b => {}
                // Param-vs-const / param-vs-param: keep as a residual
                // equality constraint.
                _ => kept.push(c),
            }
        } else {
            kept.push(c);
        }
    }

    // Drop trivially true comparisons, detect trivially false ones.
    let mut finals = Vec::new();
    for c in kept {
        if let (Term::Const(a), Term::Const(b)) = (&c.lhs, &c.rhs) {
            match c.op.eval(a, b) {
                Some(true) => continue,
                Some(false) | None => return None,
            }
        }
        if c.lhs == c.rhs {
            match c.op {
                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => continue,
                CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => return None,
            }
        }
        let n = c.normalized();
        if !finals.contains(&n) {
            finals.push(n);
        }
    }
    cq.comparisons = finals;
    if crate::compare::definitely_unsat(&cq.comparisons) {
        return None;
    }
    // Deduplicate atoms.
    let mut atoms = Vec::new();
    for a in cq.atoms {
        if !atoms.contains(&a) {
            atoms.push(a);
        }
    }
    cq.atoms = atoms;
    Some(cq)
}

/// Renders a conjunctive query as an executable SQL `SELECT`.
///
/// Atoms become aliased `FROM` entries (`t0`, `t1`, …); repeated variables
/// and rigid arguments become `WHERE` equalities; comparisons append as
/// further conjuncts. The schema supplies column names.
pub fn cq_to_sql(schema: &RelSchema, cq: &Cq) -> Result<Query, LogicError> {
    let mut q = Query::new();
    q.distinct = Distinctness::Distinct;
    let mut var_site: BTreeMap<crate::sym::Sym, Expr> = BTreeMap::new();
    let mut conditions: Vec<Expr> = Vec::new();

    for (i, atom) in cq.atoms.iter().enumerate() {
        let alias = format!("t{i}");
        let columns = schema.columns(atom.relation.as_str())?;
        if columns.len() != atom.args.len() {
            return Err(LogicError::Internal(format!(
                "atom {} arity {} does not match schema arity {}",
                atom.relation,
                atom.args.len(),
                columns.len()
            )));
        }
        q.from
            .push(TableRef::aliased(atom.relation.as_str(), alias.clone()));
        for (col, arg) in columns.iter().zip(&atom.args) {
            let site = Expr::qcol(alias.clone(), col.clone());
            match arg {
                Term::Var(v) => match var_site.get(v) {
                    Some(first) => conditions.push(Expr::eq(site, first.clone())),
                    None => {
                        var_site.insert(*v, site);
                    }
                },
                Term::Const(c) => {
                    conditions.push(Expr::eq(site, Expr::Literal(c.to_value())));
                }
                Term::Param(p) => {
                    conditions.push(Expr::eq(site, Expr::named_param(p.as_str())));
                }
            }
        }
    }

    let term_expr = |t: &Term| -> Result<Expr, LogicError> {
        Ok(match t {
            Term::Var(v) => var_site
                .get(v)
                .cloned()
                .ok_or_else(|| LogicError::Internal(format!("unsafe variable {v}")))?,
            Term::Const(c) => Expr::Literal(c.to_value()),
            Term::Param(p) => Expr::named_param(p.as_str()),
        })
    };

    for c in &cq.comparisons {
        let l = term_expr(&c.lhs)?;
        let r = term_expr(&c.rhs)?;
        let op = match c.op {
            CmpOp::Eq => BinaryOp::Eq,
            CmpOp::Ne => BinaryOp::Ne,
            CmpOp::Lt => BinaryOp::Lt,
            CmpOp::Le => BinaryOp::Le,
            CmpOp::Gt => BinaryOp::Gt,
            CmpOp::Ge => BinaryOp::Ge,
        };
        conditions.push(Expr::binary(op, l, r));
    }

    for h in &cq.head {
        q.items.push(SelectItem::Expr {
            expr: term_expr(h)?,
            alias: None,
        });
    }
    if q.items.is_empty() {
        // Boolean query: project a constant.
        q.items.push(SelectItem::Expr {
            expr: Expr::int(1),
            alias: None,
        });
    }
    q.where_clause = Expr::and_all(conditions);
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlir::parse_query;

    fn calendar_schema() -> RelSchema {
        let mut s = RelSchema::new();
        s.add_table("Users", ["UId", "Name"]);
        s.add_table("Events", ["EId", "Title", "Kind"]);
        s.add_table("Attendance", ["UId", "EId", "Notes"]);
        s.add_table("Employees", ["name", "age"]);
        s
    }

    fn to_cq(sql: &str) -> Cq {
        let q = parse_query(sql).unwrap();
        sql_to_cq(&calendar_schema(), &q).unwrap()
    }

    #[test]
    fn translates_q1_from_paper() {
        let cq = to_cq("SELECT 1 FROM Attendance WHERE UId = 1 AND EId = 2");
        assert_eq!(cq.head, vec![Term::int(1)]);
        assert_eq!(cq.atoms.len(), 1);
        assert_eq!(cq.atoms[0].relation, "Attendance");
        assert_eq!(cq.atoms[0].args[0], Term::int(1));
        assert_eq!(cq.atoms[0].args[1], Term::int(2));
        assert!(matches!(cq.atoms[0].args[2], Term::Var(_)));
        assert!(cq.comparisons.is_empty());
    }

    #[test]
    fn translates_view_v2() {
        let cq =
            to_cq("SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId WHERE a.UId = ?MyUId");
        assert_eq!(cq.atoms.len(), 2);
        // The join equality unified the two EId variables.
        let ev_eid = &cq.atoms[0].args[0];
        let at_eid = &cq.atoms[1].args[1];
        assert_eq!(ev_eid, at_eid);
        // The parameter landed in the Attendance UId slot.
        assert_eq!(cq.atoms[1].args[0], Term::param("MyUId"));
        // SELECT * projects all six columns.
        assert_eq!(cq.head.len(), 6);
    }

    #[test]
    fn comparison_queries() {
        let cq = to_cq("SELECT name FROM Employees WHERE age >= 60");
        assert_eq!(cq.comparisons.len(), 1);
        assert_eq!(cq.comparisons[0].op, CmpOp::Ge);
    }

    #[test]
    fn or_expands_to_union() {
        let q = parse_query("SELECT EId FROM Events WHERE Kind = 'a' OR Kind = 'b'").unwrap();
        let u = sql_to_ucq(&calendar_schema(), &q).unwrap();
        assert_eq!(u.disjuncts.len(), 2);
    }

    #[test]
    fn in_list_expands_to_union() {
        let q = parse_query("SELECT EId FROM Events WHERE EId IN (1, 2, 3)").unwrap();
        let u = sql_to_ucq(&calendar_schema(), &q).unwrap();
        assert_eq!(u.disjuncts.len(), 3);
        assert_eq!(u.disjuncts[0].atoms[0].args[0], Term::int(1));
    }

    #[test]
    fn exists_folds_into_body() {
        let cq = to_cq(
            "SELECT Title FROM Events e WHERE EXISTS \
             (SELECT 1 FROM Attendance a WHERE a.EId = e.EId AND a.UId = 5)",
        );
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(cq.atoms[1].relation, "Attendance");
        assert_eq!(cq.atoms[1].args[0], Term::int(5));
        // Correlation: the subquery's EId var unified with the outer one.
        assert_eq!(cq.atoms[1].args[1], cq.atoms[0].args[0]);
    }

    #[test]
    fn in_subquery_folds_with_equality() {
        let cq = to_cq(
            "SELECT Title FROM Events WHERE EId IN (SELECT EId FROM Attendance WHERE UId = 7)",
        );
        assert_eq!(cq.atoms.len(), 2);
        assert_eq!(cq.atoms[0].args[0], cq.atoms[1].args[1]);
    }

    #[test]
    fn rejects_out_of_fragment() {
        let schema = calendar_schema();
        let agg = parse_query("SELECT COUNT(*) FROM Events").unwrap();
        assert!(matches!(
            sql_to_ucq(&schema, &agg),
            Err(LogicError::OutOfFragment(_))
        ));
        let neg = parse_query(
            "SELECT 1 FROM Events e WHERE NOT EXISTS (SELECT 1 FROM Attendance a \
             WHERE a.EId = e.EId)",
        )
        .unwrap();
        assert!(matches!(
            sql_to_ucq(&schema, &neg),
            Err(LogicError::OutOfFragment(_))
        ));
        let isnull = parse_query("SELECT 1 FROM Events WHERE Kind IS NULL").unwrap();
        assert!(sql_to_ucq(&schema, &isnull).is_err());
    }

    #[test]
    fn contradictory_where_collapses() {
        let q = parse_query("SELECT EId FROM Events WHERE EId = 1 AND EId = 2").unwrap();
        let u = sql_to_ucq(&calendar_schema(), &q).unwrap();
        // The contradiction is preserved as an unsatisfiable marker CQ.
        assert_eq!(u.disjuncts.len(), 1);
        assert!(!crate::containment::satisfiable(&u.disjuncts[0]));
    }

    #[test]
    fn between_translates_to_two_comparisons() {
        let cq = to_cq("SELECT name FROM Employees WHERE age BETWEEN 18 AND 60");
        assert_eq!(cq.comparisons.len(), 2);
    }

    #[test]
    fn not_pushes_through() {
        let cq = to_cq("SELECT name FROM Employees WHERE NOT age < 18");
        assert_eq!(cq.comparisons[0].op, CmpOp::Ge);
        let q = parse_query("SELECT name FROM Employees WHERE NOT (age < 18 OR age > 60)").unwrap();
        let cq = sql_to_cq(&calendar_schema(), &q).unwrap();
        assert_eq!(cq.comparisons.len(), 2);
    }

    #[test]
    fn roundtrip_cq_to_sql() {
        let schema = calendar_schema();
        let cq = to_cq(
            "SELECT e.Title FROM Events e JOIN Attendance a ON e.EId = a.EId \
             WHERE a.UId = 4 AND e.Kind <> 'secret'",
        );
        let sql = cq_to_sql(&schema, &cq).unwrap();
        // Round-trip back to a CQ and check equivalence.
        let cq2 = sql_to_cq(&schema, &sql).unwrap();
        assert!(crate::containment::equivalent(&cq, &cq2), "{cq}\nvs\n{cq2}");
    }

    #[test]
    fn roundtrip_preserves_params() {
        let schema = calendar_schema();
        let cq = to_cq("SELECT EId FROM Attendance WHERE UId = ?MyUId");
        let sql = cq_to_sql(&schema, &cq).unwrap();
        assert!(sql.to_string().contains("?MyUId"));
        let cq2 = sql_to_cq(&schema, &sql).unwrap();
        assert!(crate::containment::equivalent(&cq, &cq2));
    }

    #[test]
    fn like_without_wildcards_is_equality() {
        let cq = to_cq("SELECT EId FROM Events WHERE Kind LIKE 'work'");
        // Equality substituted the constant into the atom.
        assert_eq!(cq.atoms[0].args[2], Term::str("work"));
    }
}
