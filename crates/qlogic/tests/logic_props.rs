//! Property-based tests of the logic core's algebraic laws:
//!
//! * containment is reflexive and transitive; equivalence is symmetric;
//! * containment agrees with evaluation on random ground instances
//!   (`q1 ⊆ q2` implies `q1(D) ⊆ q2(D)` for every sampled `D`);
//! * anti-unification generalizes both inputs (`a ⊆ anti_unify(a, b)`);
//! * minimization preserves equivalence;
//! * the comparison reasoner's entailment is consistent with brute-force
//!   evaluation over small assignments.

use proptest::prelude::*;
use qlogic::{
    anti_unify, contained, equivalent, minimize, Atom, CmpOp, Comparison, Cq, Instance, Term,
};
use sqlir::Value;

/// Relations: R/2, S/1 over a small constant domain.
fn term(vars: &'static [&'static str]) -> impl Strategy<Value = Term> {
    prop_oneof![
        proptest::sample::select(vars).prop_map(Term::var),
        (0i64..3).prop_map(Term::int),
    ]
}

fn atom(vars: &'static [&'static str]) -> impl Strategy<Value = Atom> {
    prop_oneof![
        (term(vars), term(vars)).prop_map(|(a, b)| Atom::new("R", vec![a, b])),
        term(vars).prop_map(|a| Atom::new("S", vec![a])),
    ]
}

fn cq() -> impl Strategy<Value = Cq> {
    const VARS: &[&str] = &["x", "y", "z"];
    (
        proptest::collection::vec(atom(VARS), 1..4),
        proptest::sample::subsequence(VARS.to_vec(), 0..=2),
    )
        .prop_map(|(atoms, head_vars)| {
            // Keep the query safe: head vars must occur in an atom.
            let atom_vars: Vec<qlogic::Sym> = atoms
                .iter()
                .flat_map(|a| a.args.iter().filter_map(|t| t.as_var()))
                .collect();
            let head: Vec<Term> = head_vars
                .into_iter()
                .filter(|v| atom_vars.iter().any(|av| av == v))
                .map(Term::var)
                .collect();
            Cq::new(head, atoms, vec![])
        })
}

/// All ground instances are sampled from this tiny universe.
fn instance() -> impl Strategy<Value = Instance> {
    let r_tuples = proptest::collection::vec((0i64..3, 0i64..3), 0..4);
    let s_tuples = proptest::collection::vec(0i64..3, 0..3);
    (r_tuples, s_tuples).prop_map(|(rs, ss)| {
        let r_rows: Vec<Vec<Value>> = rs
            .into_iter()
            .map(|(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect();
        let s_rows: Vec<Vec<Value>> = ss.into_iter().map(|a| vec![Value::Int(a)]).collect();
        Instance::from_rows([("R", r_rows.as_slice()), ("S", s_rows.as_slice())])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn containment_reflexive(q in cq()) {
        prop_assert!(contained(&q, &q));
    }

    #[test]
    fn containment_transitive(a in cq(), b in cq(), c in cq()) {
        if a.head.len() == b.head.len() && b.head.len() == c.head.len()
            && contained(&a, &b) && contained(&b, &c) {
            prop_assert!(contained(&a, &c));
        }
    }

    #[test]
    fn equivalence_symmetric(a in cq(), b in cq()) {
        prop_assert_eq!(
            equivalent(&a, &b),
            equivalent(&b, &a)
        );
    }

    #[test]
    fn containment_sound_on_instances(a in cq(), b in cq(), db in instance()) {
        if a.head.len() == b.head.len() && contained(&a, &b) {
            let ans_a = db.eval(&a, 1000);
            let ans_b = db.eval(&b, 1000);
            for t in &ans_a {
                prop_assert!(
                    ans_b.contains(t),
                    "containment violated on instance: {} ⊆ {} but tuple {:?} missing",
                    a, b, t
                );
            }
        }
    }

    #[test]
    fn anti_unify_generalizes_both(a in cq(), b in cq()) {
        if let Some(g) = anti_unify(&a, &b) {
            prop_assert!(contained(&a, &g), "{} not contained in lgg {}", a, g);
            prop_assert!(contained(&b, &g), "{} not contained in lgg {}", b, g);
        }
    }

    #[test]
    fn minimize_preserves_equivalence(q in cq()) {
        let m = minimize(&q);
        prop_assert!(equivalent(&q, &m), "{} vs minimized {}", q, m);
        prop_assert!(m.atoms.len() <= q.atoms.len());
    }

    #[test]
    fn entailment_sound_for_assignments(
        ops in proptest::collection::vec(
            (0usize..3, 0usize..4, 0i64..4), 1..4),
        goal in (0usize..3, 0usize..4, 0i64..4),
        assign in proptest::collection::vec(0i64..4, 3),
    ) {
        // Variables v0..v2; comparisons v_i OP c.
        let op_of = |i: usize| [CmpOp::Lt, CmpOp::Le, CmpOp::Ne, CmpOp::Ge][i % 4];
        let ctx: Vec<Comparison> = ops
            .iter()
            .map(|&(v, o, c)| {
                Comparison::new(Term::var(format!("v{v}")), op_of(o), Term::int(c))
            })
            .collect();
        let g = Comparison::new(
            Term::var(format!("v{}", goal.0)),
            op_of(goal.1),
            Term::int(goal.2),
        );
        let reasoner = qlogic::CmpContext::new(&ctx);
        // If the context holds under the assignment, an entailed goal must too.
        let holds = |c: &Comparison| -> bool {
            let lv = match &c.lhs {
                Term::Var(v) => Value::Int(assign[v.as_str()[1..].parse::<usize>().unwrap()]),
                Term::Const(v) => v.to_value(),
                Term::Param(_) => return true,
            };
            let rv = match &c.rhs {
                Term::Var(v) => Value::Int(assign[v.as_str()[1..].parse::<usize>().unwrap()]),
                Term::Const(v) => v.to_value(),
                Term::Param(_) => return true,
            };
            c.op.eval_values(&lv, &rv).unwrap_or(false)
        };
        if ctx.iter().all(holds) && reasoner.entails(&g) {
            prop_assert!(
                holds(&g),
                "unsound entailment: {:?} |= {:?} refuted by {:?}",
                ctx, g, assign
            );
        }
    }

    #[test]
    fn unsat_contexts_have_no_models(
        ops in proptest::collection::vec((0usize..2, 0usize..4, 0i64..3), 1..5),
        assign in proptest::collection::vec(0i64..3, 2),
    ) {
        let op_of = |i: usize| [CmpOp::Lt, CmpOp::Le, CmpOp::Ne, CmpOp::Ge][i % 4];
        let ctx: Vec<Comparison> = ops
            .iter()
            .map(|&(v, o, c)| {
                Comparison::new(Term::var(format!("v{v}")), op_of(o), Term::int(c))
            })
            .collect();
        if qlogic::compare::definitely_unsat(&ctx) {
            // No integer assignment may satisfy all comparisons.
            let holds = |c: &Comparison| -> bool {
                let get = |t: &Term| match t {
                    Term::Var(v) => Value::Int(assign[v.as_str()[1..].parse::<usize>().unwrap()]),
                    Term::Const(v) => v.to_value(),
                    Term::Param(_) => Value::Int(0),
                };
                c.op.eval_values(&get(&c.lhs), &get(&c.rhs)).unwrap_or(false)
            };
            prop_assert!(
                !ctx.iter().all(holds),
                "claimed-unsat context satisfied by {:?}: {:?}",
                assign, ctx
            );
        }
    }
}
