//! Differential tests for the interned logic core's string-API shim.
//!
//! The symbol-interning refactor kept the old string-based constructors as a
//! shim (`Atom::new("R", …)`, `Term::var("x")`) over the `Sym`-based core.
//! These tests build the *same* random queries through both front doors —
//! the legacy string constructors and explicit pre-interned `Sym`s — and
//! assert the results are indistinguishable everywhere it matters for
//! decision compatibility:
//!
//! * `Display` output (what traces and certificates serialize) is
//!   byte-identical;
//! * containment verdicts agree on every pair;
//! * minimization produces the same query;
//! * `variables()` reports the same symbols in the same order.

use proptest::prelude::*;
use qlogic::{contained, equivalent, intern, minimize, Atom, CmpOp, Comparison, Cq, Sym, Term};

/// A constructor-neutral spec for a term.
#[derive(Clone, Debug)]
enum SpecTerm {
    Var(&'static str),
    Int(i64),
    Param(&'static str),
}

/// A constructor-neutral spec for a query: `(head, atoms, comparisons)`
/// with relation names and args as plain data.
type SpecAtom = (&'static str, Vec<SpecTerm>);
type SpecCq = (
    Vec<SpecTerm>,
    Vec<SpecAtom>,
    Vec<(SpecTerm, CmpOp, SpecTerm)>,
);

/// Lowers a spec through the legacy string-based constructors.
fn build_str(spec: &SpecCq) -> Cq {
    let term = |t: &SpecTerm| match t {
        SpecTerm::Var(v) => Term::var(*v),
        SpecTerm::Int(i) => Term::int(*i),
        SpecTerm::Param(p) => Term::param(*p),
    };
    let (head, atoms, cmps) = spec;
    let mut q = Cq::new(
        head.iter().map(term).collect(),
        atoms
            .iter()
            .map(|(rel, args)| Atom::new(*rel, args.iter().map(term).collect()))
            .collect(),
        cmps.iter()
            .map(|(l, op, r)| Comparison::new(term(l), *op, term(r)))
            .collect(),
    );
    q.name = Some("q".into());
    q
}

/// Lowers a spec through explicit pre-interned symbols — no string shim on
/// any hot path.
fn build_sym(spec: &SpecCq) -> Cq {
    let term = |t: &SpecTerm| match t {
        SpecTerm::Var(v) => Term::Var(intern(v)),
        SpecTerm::Int(i) => Term::int(*i),
        SpecTerm::Param(p) => Term::Param(intern(p)),
    };
    let (head, atoms, cmps) = spec;
    let mut q = Cq::new(
        head.iter().map(term).collect(),
        atoms
            .iter()
            .map(|(rel, args)| {
                let rel: Sym = intern(rel);
                Atom::new(rel, args.iter().map(term).collect())
            })
            .collect(),
        cmps.iter()
            .map(|(l, op, r)| Comparison::new(term(l), *op, term(r)))
            .collect(),
    );
    q.name = Some(intern("q"));
    q
}

const VARS: &[&str] = &["x", "y", "z", "w"];

fn spec_term() -> impl Strategy<Value = SpecTerm> {
    prop_oneof![
        proptest::sample::select(VARS).prop_map(SpecTerm::Var),
        (0i64..3).prop_map(SpecTerm::Int),
        proptest::sample::select(&["UId", "Me"][..]).prop_map(SpecTerm::Param),
    ]
}

fn spec_atom() -> impl Strategy<Value = SpecAtom> {
    prop_oneof![
        (spec_term(), spec_term()).prop_map(|(a, b)| ("R", vec![a, b])),
        spec_term().prop_map(|a| ("S", vec![a])),
        (spec_term(), spec_term(), spec_term()).prop_map(|(a, b, c)| ("T", vec![a, b, c])),
    ]
}

fn spec_cq() -> impl Strategy<Value = SpecCq> {
    (
        proptest::collection::vec(spec_atom(), 1..5),
        proptest::sample::subsequence(VARS.to_vec(), 0..=2),
        proptest::collection::vec(
            (
                spec_term(),
                proptest::sample::select(&[CmpOp::Le, CmpOp::Ne][..]),
                spec_term(),
            ),
            0..2,
        ),
    )
        .prop_map(|(atoms, head_vars, cmps)| {
            // Keep the query safe: head and comparison vars must occur in
            // an atom, or containment would be trivially false everywhere.
            let atom_vars: Vec<Sym> = atoms
                .iter()
                .flat_map(|(_, args)| args.iter())
                .filter_map(|t| match t {
                    SpecTerm::Var(v) => Some(intern(v)),
                    _ => None,
                })
                .collect();
            let occurs = |t: &SpecTerm| match t {
                SpecTerm::Var(v) => atom_vars.iter().any(|av| av.as_str() == *v),
                _ => true,
            };
            let head: Vec<SpecTerm> = head_vars
                .into_iter()
                .map(SpecTerm::Var)
                .filter(occurs)
                .collect();
            let cmps = cmps
                .into_iter()
                .filter(|(l, _, r)| occurs(l) && occurs(r))
                .collect();
            (head, atoms, cmps)
        })
}

proptest! {
    /// Both construction paths yield structurally equal queries with
    /// byte-identical Display output.
    #[test]
    fn constructors_agree(spec in spec_cq()) {
        let a = build_str(&spec);
        let b = build_sym(&spec);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_string(), b.to_string());
        prop_assert_eq!(a.variables(), b.variables());
        prop_assert_eq!(a.params(), b.params());
    }

    /// Containment verdicts are independent of which constructor built the
    /// operands (all four cross-combinations agree).
    #[test]
    fn containment_agrees(s1 in spec_cq(), s2 in spec_cq()) {
        let a1 = build_str(&s1);
        let a2 = build_sym(&s1);
        let b1 = build_str(&s2);
        let b2 = build_sym(&s2);
        let verdict = contained(&a1, &b1);
        prop_assert_eq!(verdict, contained(&a2, &b2));
        prop_assert_eq!(verdict, contained(&a1, &b2));
        prop_assert_eq!(verdict, contained(&a2, &b1));
        prop_assert_eq!(equivalent(&a1, &b1), equivalent(&a2, &b2));
    }

    /// Minimization commutes with the constructor choice: minimizing the
    /// string-built and sym-built queries gives the same (equivalent and
    /// identically printed) result.
    #[test]
    fn minimization_agrees(spec in spec_cq()) {
        let a = minimize(&build_str(&spec));
        let b = minimize(&build_sym(&spec));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_string(), b.to_string());
        prop_assert!(equivalent(&a, &b));
    }
}

/// Display of a query built from interned symbols resolves back through the
/// interner to the exact original spelling — including multi-byte names.
#[test]
fn display_resolves_unicode_names() {
    let rel = intern("Présences");
    let v = intern("événement");
    let q = Cq::new(
        vec![Term::Var(v)],
        vec![Atom::new(rel, vec![Term::Var(v), Term::int(1)])],
        vec![],
    );
    let printed = q.to_string();
    assert!(printed.contains("Présences"), "got: {printed}");
    assert!(printed.contains("événement"), "got: {printed}");
}

/// Re-interning the spelled-out form of every symbol in a query round-trips
/// to the same ids (the interner is canonical, so Display → intern is the
/// identity on symbols).
#[test]
fn display_intern_round_trip() {
    let q = build_str(&(
        vec![SpecTerm::Var("x")],
        vec![
            ("R", vec![SpecTerm::Var("x"), SpecTerm::Var("y")]),
            ("S", vec![SpecTerm::Param("UId")]),
        ],
        vec![(SpecTerm::Var("y"), CmpOp::Le, SpecTerm::Int(2))],
    ));
    for v in q.variables() {
        assert_eq!(intern(v.as_str()), v);
    }
    for a in &q.atoms {
        assert_eq!(intern(a.relation.as_str()), a.relation);
    }
}
