//! The Bayesian-privacy baseline (§4.2).
//!
//! Disclosure as belief shift: under a *tuple-independent* prior (every
//! potential tuple present independently with probability `p`), how far does
//! observing the view image move an adversary's probability that a tuple is
//! in the sensitive query's answer?
//!
//! This is the §4.2 strawman made concrete — it produces a number, but the
//! number is only meaningful if the prior is (§4.3's objection: priors on
//! human belief cannot be validated). The experiments use it to show how
//! verdicts swing with `p` while the prior-agnostic criteria stay put.

use qlogic::{Cq, Term, ViewSet};

use crate::error::DiscloseError;
use crate::smallmodel::{Tuple, Universe};

/// Configuration of the tuple-independent prior.
#[derive(Debug, Clone, Copy)]
pub struct BayesConfig {
    /// Probability that any given potential tuple is present.
    pub tuple_prob: f64,
}

impl Default for BayesConfig {
    fn default() -> BayesConfig {
        BayesConfig { tuple_prob: 0.5 }
    }
}

/// The result of a belief-shift computation.
#[derive(Debug, Clone)]
pub struct BayesReport {
    /// The largest |posterior − prior| over tuples and view images.
    pub max_shift: f64,
    /// Prior probability of the max-shift tuple being in the answer.
    pub prior: f64,
    /// Posterior probability of that tuple given the max-shift image.
    pub posterior: f64,
    /// The tuple achieving the maximum shift.
    pub tuple: Option<Tuple>,
}

/// Evaluation budget per query per database.
const EVAL_LIMIT: usize = 4096;

/// Computes the maximum belief shift over the bounded universe.
///
/// Database weights follow the tuple-independent prior; relations must be
/// enumerated with `max_rows` equal to the full tuple count for the prior to
/// be exact (a truncated enumeration conditions on "at most k rows", which
/// the caller may intend, but it is no longer the pure independent model).
pub fn belief_shift(
    universe: &Universe,
    views: &ViewSet,
    sensitive: &Cq,
    cfg: BayesConfig,
) -> Result<BayesReport, DiscloseError> {
    let p = cfg.tuple_prob.clamp(0.0, 1.0);
    let dbs = universe.enumerate()?;
    // Total potential tuples across relations (for weights).
    let total_candidates: usize = universe
        .relations
        .iter()
        .map(|r| universe.domain.len().pow(r.arity as u32))
        .sum();

    let mut weights = Vec::with_capacity(dbs.len());
    let mut images: Vec<Vec<Vec<Tuple>>> = Vec::with_capacity(dbs.len());
    let mut answers: Vec<Vec<Tuple>> = Vec::with_capacity(dbs.len());
    let mut possible: Vec<Tuple> = Vec::new();

    for db in &dbs {
        let rows = db.atoms.len();
        let w = p.powi(rows as i32) * (1.0 - p).powi((total_candidates - rows) as i32);
        weights.push(w);
        images.push(
            views
                .views()
                .iter()
                .map(|v| {
                    let mut a = db.eval(v, EVAL_LIMIT);
                    a.sort();
                    a
                })
                .collect(),
        );
        let mut ans = db.eval(sensitive, EVAL_LIMIT);
        ans.sort();
        for t in &ans {
            if !possible.contains(t) {
                possible.push(t.clone());
            }
        }
        answers.push(ans);
    }

    let total_weight: f64 = weights.iter().sum();
    if total_weight <= 0.0 {
        return Ok(BayesReport {
            max_shift: 0.0,
            prior: 0.0,
            posterior: 0.0,
            tuple: None,
        });
    }

    // Group databases by image.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new(); // (first idx, members)
    for i in 0..dbs.len() {
        match groups
            .iter_mut()
            .find(|(first, _)| images[*first] == images[i])
        {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }

    let mut report = BayesReport {
        max_shift: 0.0,
        prior: 0.0,
        posterior: 0.0,
        tuple: None,
    };
    for t in &possible {
        let prior: f64 = (0..dbs.len())
            .filter(|&i| answers[i].contains(t))
            .map(|i| weights[i])
            .sum::<f64>()
            / total_weight;
        for (_, members) in &groups {
            let group_weight: f64 = members.iter().map(|&i| weights[i]).sum();
            if group_weight <= 0.0 {
                continue;
            }
            let posterior: f64 = members
                .iter()
                .filter(|&&i| answers[i].contains(t))
                .map(|&i| weights[i])
                .sum::<f64>()
                / group_weight;
            let shift = (posterior - prior).abs();
            if shift > report.max_shift {
                report = BayesReport {
                    max_shift: shift,
                    prior,
                    posterior,
                    tuple: Some(t.clone()),
                };
            }
        }
    }
    Ok(report)
}

/// Convenience: the probability that a *specific* tuple is in the sensitive
/// answer, before and after observing a concrete image — used by examples to
/// narrate the hospital scenario.
pub fn shift_for_tuple(
    universe: &Universe,
    views: &ViewSet,
    sensitive: &Cq,
    tuple: &[Term],
    cfg: BayesConfig,
) -> Result<Vec<(f64, f64)>, DiscloseError> {
    let p = cfg.tuple_prob.clamp(0.0, 1.0);
    let dbs = universe.enumerate()?;
    let total_candidates: usize = universe
        .relations
        .iter()
        .map(|r| universe.domain.len().pow(r.arity as u32))
        .sum();

    let mut weights = Vec::new();
    let mut images = Vec::new();
    let mut has_tuple = Vec::new();
    for db in &dbs {
        let rows = db.atoms.len();
        weights.push(p.powi(rows as i32) * (1.0 - p).powi((total_candidates - rows) as i32));
        images.push(
            views
                .views()
                .iter()
                .map(|v| {
                    let mut a = db.eval(v, EVAL_LIMIT);
                    a.sort();
                    a
                })
                .collect::<Vec<_>>(),
        );
        has_tuple.push(db.returns_tuple(sensitive, tuple));
    }
    let total: f64 = weights.iter().sum();
    let prior: f64 = weights
        .iter()
        .zip(&has_tuple)
        .filter(|(_, h)| **h)
        .map(|(w, _)| w)
        .sum::<f64>()
        / total;

    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for i in 0..dbs.len() {
        match groups
            .iter_mut()
            .find(|(first, _)| images[*first] == images[i])
        {
            Some((_, members)) => members.push(i),
            None => groups.push((i, vec![i])),
        }
    }
    Ok(groups
        .iter()
        .map(|(_, members)| {
            let gw: f64 = members.iter().map(|&i| weights[i]).sum();
            let post: f64 = members
                .iter()
                .filter(|&&i| has_tuple[i])
                .map(|&i| weights[i])
                .sum::<f64>()
                / gw.max(f64::MIN_POSITIVE);
            (prior, post)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallmodel::RelationSpec;
    use qlogic::Atom;

    fn named(mut cq: Cq, name: &str) -> Cq {
        cq.name = Some(name.into());
        cq
    }

    #[test]
    fn identity_view_maximal_shift() {
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("R", vec![Term::var("x")])],
                vec![],
            ),
            "All",
        );
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let report = belief_shift(
            &universe,
            &ViewSet::new(vec![v]).unwrap(),
            &s,
            BayesConfig::default(),
        )
        .unwrap();
        // Seeing the view pins the answer exactly: posterior is 0 or 1 while
        // the prior is 1/2.
        assert!((report.max_shift - 0.5).abs() < 1e-9, "{report:?}");
    }

    #[test]
    fn blind_view_zero_shift() {
        let universe = Universe::with_int_domain(
            vec![
                RelationSpec {
                    name: "Secret".into(),
                    arity: 1,
                    max_rows: 2,
                },
                RelationSpec {
                    name: "Public".into(),
                    arity: 1,
                    max_rows: 2,
                },
            ],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Public", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Secret", vec![Term::var("y")])],
            vec![],
        );
        let report = belief_shift(
            &universe,
            &ViewSet::new(vec![v]).unwrap(),
            &s,
            BayesConfig::default(),
        )
        .unwrap();
        assert!(report.max_shift < 1e-9, "{report:?}");
    }

    #[test]
    fn shift_depends_on_prior() {
        // The Bayesian verdict moves with the assumed prior — the §4.2
        // criticism in one assertion.
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        let v = named(
            Cq::new(vec![], vec![Atom::new("R", vec![Term::var("x")])], vec![]),
            "NonEmpty",
        );
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        let lo = belief_shift(&universe, &views, &s, BayesConfig { tuple_prob: 0.1 })
            .unwrap()
            .max_shift;
        let hi = belief_shift(&universe, &views, &s, BayesConfig { tuple_prob: 0.9 })
            .unwrap()
            .max_shift;
        assert!((lo - hi).abs() > 0.05, "lo={lo}, hi={hi}");
    }
}
