//! Sampled PQI/NQI estimation for universes too large to enumerate.
//!
//! The exact decider of [`crate::smallmodel`] enumerates every database in
//! the bounded universe; the count grows as roughly `2^(dᵃ)` per relation
//! (domain `d`, arity `a`) and stops being feasible almost immediately. The
//! sampler draws random databases instead, groups them by view image, and
//! looks for PQI/NQI witnesses *within the sample*.
//!
//! Semantics of the estimate:
//!
//! * a reported **NQI witness is sound**: the tuple is possible (it appeared
//!   in some sampled database) and is absent from `S` on every sampled
//!   database of some image group — exhibiting two sampled databases that
//!   realize the negative inference needs nothing outside the sample;
//! * a reported **PQI witness is evidence, not proof**: the tuple was in `S`
//!   on every *sampled* database of its group, but an unsampled database
//!   with the same image could still miss it. The `group_support` field
//!   reports the weakest group size used, so callers can judge confidence;
//! * a `false` is never conclusive (the witness may live outside the
//!   sample).

use qlogic::{Cq, Instance, ViewSet};
use rand::Rng;
use sqlir::Value;

use crate::error::DiscloseError;
use crate::smallmodel::{Tuple, Universe, ViewImage};

/// The sampled estimate.
#[derive(Debug, Clone)]
pub struct SampledVerdict {
    /// A PQI witness was found in the sample.
    pub pqi_evidence: bool,
    /// Supporting group size of the PQI witness (higher = stronger).
    pub pqi_support: usize,
    /// An NQI witness was found (sound).
    pub nqi: bool,
    /// Databases sampled.
    pub samples: usize,
    /// Distinct view images seen.
    pub images: usize,
}

/// Evaluation budget per query per database.
const EVAL_LIMIT: usize = 4096;

/// Draws one random database from the universe.
pub fn sample_database(universe: &Universe, rng: &mut impl Rng) -> Instance {
    let mut tables: Vec<(String, Vec<Vec<Value>>)> = Vec::new();
    for spec in &universe.relations {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let n = rng.gen_range(0..=spec.max_rows);
        for _ in 0..n {
            let row: Vec<Value> = (0..spec.arity)
                .map(|_| universe.domain[rng.gen_range(0..universe.domain.len())].clone())
                .collect();
            if !rows.contains(&row) {
                rows.push(row);
            }
        }
        tables.push((spec.name.clone(), rows));
    }
    Instance::from_rows(tables.iter().map(|(n, r)| (n.as_str(), r.as_slice())))
}

/// Estimates PQI/NQI over `samples` random databases.
pub fn decide_sampled(
    universe: &Universe,
    views: &ViewSet,
    sensitive: &Cq,
    samples: usize,
    rng: &mut impl Rng,
) -> Result<SampledVerdict, DiscloseError> {
    if universe.domain.is_empty() || universe.relations.is_empty() {
        return Err(DiscloseError::Schema("empty universe".into()));
    }
    let mut groups: Vec<(ViewImage, Vec<Vec<Tuple>>)> = Vec::new();
    let mut possible: Vec<Tuple> = Vec::new();
    let mut answer_sets: Vec<Vec<Tuple>> = Vec::new();

    for _ in 0..samples {
        let db = sample_database(universe, rng);
        let image: Vec<Vec<Tuple>> = views
            .views()
            .iter()
            .map(|v| {
                let mut a = db.eval(v, EVAL_LIMIT);
                a.sort();
                a
            })
            .collect();
        let mut answers = db.eval(sensitive, EVAL_LIMIT);
        answers.sort();
        for t in &answers {
            if !possible.contains(t) {
                possible.push(t.clone());
            }
        }
        answer_sets.push(answers.clone());
        match groups.iter_mut().find(|(img, _)| *img == image) {
            Some((_, members)) => members.push(answers),
            None => groups.push((image, vec![answers])),
        }
    }

    let certain_overall: Vec<Tuple> = possible
        .iter()
        .filter(|t| answer_sets.iter().all(|a| a.contains(t)))
        .cloned()
        .collect();

    let mut pqi_evidence = false;
    let mut pqi_support = 0usize;
    let mut nqi = false;
    for (_, members) in &groups {
        for t in &possible {
            if !certain_overall.contains(t) && members.iter().all(|a| a.contains(t)) {
                // Prefer the strongest supporting group.
                if members.len() > pqi_support {
                    pqi_evidence = true;
                    pqi_support = members.len();
                }
            }
            if !nqi && members.iter().all(|a| !a.contains(t)) {
                nqi = true;
            }
        }
    }
    Ok(SampledVerdict {
        pqi_evidence,
        pqi_support,
        nqi,
        samples,
        images: groups.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallmodel::RelationSpec;
    use qlogic::{Atom, Term};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn named(mut cq: Cq, name: &str) -> Cq {
        cq.name = Some(name.into());
        cq
    }

    #[test]
    fn sampler_agrees_with_exact_on_identity() {
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("R", vec![Term::var("x")])],
                vec![],
            ),
            "All",
        );
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let verdict = decide_sampled(&universe, &views, &s, 200, &mut rng).unwrap();
        assert!(verdict.pqi_evidence);
        assert!(verdict.nqi);
        assert!(verdict.images >= 3, "several images sampled");
    }

    #[test]
    fn blind_views_stay_quiet_on_nqi() {
        let universe = Universe::with_int_domain(
            vec![
                RelationSpec {
                    name: "Sec".into(),
                    arity: 1,
                    max_rows: 2,
                },
                RelationSpec {
                    name: "Pub".into(),
                    arity: 1,
                    max_rows: 2,
                },
            ],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Pub", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Sec", vec![Term::var("y")])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let verdict = decide_sampled(&universe, &views, &s, 400, &mut rng).unwrap();
        // NQI reports are sound, so a blind view must never produce one.
        assert!(!verdict.nqi, "{verdict:?}");
    }

    #[test]
    fn handles_larger_universe_than_exact() {
        // arity 3 over domain 3 would be 2^27-ish databases exhaustively;
        // sampling handles it in milliseconds.
        let universe = Universe {
            relations: vec![RelationSpec {
                name: "T".into(),
                arity: 3,
                max_rows: 4,
            }],
            domain: (0..3).map(Value::Int).collect(),
            cap: 1,
        };
        let v1 = named(
            Cq::new(
                vec![Term::var("p"), Term::var("d")],
                vec![Atom::new(
                    "T",
                    vec![Term::var("p"), Term::var("d"), Term::var("x")],
                )],
                vec![],
            ),
            "PD",
        );
        let v2 = named(
            Cq::new(
                vec![Term::var("d"), Term::var("x")],
                vec![Atom::new(
                    "T",
                    vec![Term::var("p"), Term::var("d"), Term::var("x")],
                )],
                vec![],
            ),
            "DX",
        );
        let s = Cq::new(
            vec![Term::var("p"), Term::var("x")],
            vec![Atom::new(
                "T",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        );
        let views = ViewSet::new(vec![v1, v2]).unwrap();
        let mut rng = SmallRng::seed_from_u64(11);
        let verdict = decide_sampled(&universe, &views, &s, 300, &mut rng).unwrap();
        // The exact decider refuses this universe; the sampler answers.
        assert!(universe.enumerate().is_err());
        assert!(verdict.nqi, "hospital narrowing found by sampling");
    }

    #[test]
    fn empty_universe_is_an_error() {
        let universe = Universe {
            relations: vec![],
            domain: vec![],
            cap: 10,
        };
        let views = ViewSet::new(vec![]).unwrap();
        let s = Cq::new(vec![], vec![Atom::new("R", vec![Term::var("x")])], vec![]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(decide_sampled(&universe, &views, &s, 10, &mut rng).is_err());
    }
}
