//! Policy evaluation for sensitive-data disclosure (§4 of the paper).
//!
//! Given a policy's (instantiated) views and a set of *sensitive queries*
//! the operator wants hidden, this crate answers: how much can an adversary
//! holding the views infer about the sensitive answers?
//!
//! * [`pqi`] / [`nqi`] — the paper's proposed **prior-agnostic** criteria
//!   (positive/negative query implication, Benedikt et al. Def. 3.5 adapted
//!   to views), decided by rewriting-based certificates: a *contained*
//!   rewriting renders answers certain (PQI); a *containing* rewriting
//!   bounds the answer from above and can rule answers out (NQI). The
//!   hospital scenario of Example 4.1 yields an NQI certificate — exactly
//!   the "narrowed down to two diseases" inference.
//! * [`smallmodel`] — an exact decision procedure over a bounded universe of
//!   databases, used as ground truth: it also catches closed-world
//!   inferences the certificates cannot (the hospital PQI);
//! * [`sampled`] — a randomized estimator for universes beyond exhaustive
//!   reach (sound for NQI witnesses, evidential for PQI).
//! * [`bayes`] — the Bayesian-privacy baseline of §4.2 (tuple-independent
//!   priors), included to demonstrate how its verdicts move with the
//!   assumed prior while PQI/NQI stay put.
//! * [`kanon`] — k-anonymity over view releases, extended past the
//!   single-table setting.
//! * [`report`] — one-call audits aggregating every criterion.

#![warn(missing_docs)]

pub mod bayes;
pub mod error;
pub mod kanon;
pub mod nqi;
pub mod pqi;
pub mod report;
pub mod sampled;
pub mod smallmodel;

pub use bayes::{belief_shift, BayesConfig, BayesReport};
pub use error::DiscloseError;
pub use kanon::{check_release, k_anonymity_of_rows, KAnonReport};
pub use nqi::{check_nqi, NqiOutcome};
pub use pqi::{check_pqi, PqiOutcome};
pub use report::{audit, DisclosureReport};
pub use sampled::{decide_sampled, sample_database, SampledVerdict};
pub use smallmodel::{decide, RelationSpec, SmallModelVerdict, Universe};
