//! Error types for disclosure evaluation.

use std::fmt;

/// Errors raised by the disclosure checkers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscloseError {
    /// The configured universe is too large to enumerate.
    UniverseTooLarge {
        /// Estimated database count.
        estimated: u128,
        /// The configured cap.
        cap: u128,
    },
    /// A schema/query mismatch.
    Schema(String),
    /// A logic-layer failure.
    Logic(String),
}

impl fmt::Display for DiscloseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiscloseError::UniverseTooLarge { estimated, cap } => write!(
                f,
                "bounded universe has ~{estimated} databases, beyond the cap of {cap}; \
                 shrink the domain or use sampling"
            ),
            DiscloseError::Schema(m) => write!(f, "schema error: {m}"),
            DiscloseError::Logic(m) => write!(f, "logic error: {m}"),
        }
    }
}

impl std::error::Error for DiscloseError {}

impl From<qlogic::LogicError> for DiscloseError {
    fn from(e: qlogic::LogicError) -> DiscloseError {
        DiscloseError::Logic(e.to_string())
    }
}
