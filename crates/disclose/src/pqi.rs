//! Positive query implication (PQI) — certificate-based checking.
//!
//! `PQI_S(V)` holds if revealing the contents of the views `V` could render
//! a *possible* answer to the sensitive query `S` *certain* (Benedikt et
//! al., Def. 3.5, adapted to view-based access control per §4.3 of the
//! paper).
//!
//! The certificate: a **contained rewriting** `R` of `S` over `V` whose
//! expansion is satisfiable and non-trivial. On any database where `R`
//! (computed from the view contents alone) returns a tuple `t`, every
//! database consistent with those view contents also has `t ∈ S` — `t` is
//! certain. Since `S` returns nothing on the empty database, `t` was not
//! certain a priori, so disclosure occurred.
//!
//! Soundness: a returned certificate always witnesses PQI. Completeness:
//! the certificate reasons about views as *lower bounds* only; inferences
//! that need the closed view extension ("the doctor treats *only* these
//! diseases") are invisible to it — the small-model enumerator decides
//! those exactly at bounded scale, and experiment T3 quantifies the gap.

use qlogic::{contained_rewritings, expand, satisfiable, Cq, ViewSet};

/// The outcome of a certificate-based PQI check.
#[derive(Debug, Clone)]
pub enum PqiOutcome {
    /// PQI holds; the rewriting is the certificate.
    Holds {
        /// The contained rewriting over the views.
        certificate: Cq,
    },
    /// No certificate was found (PQI may still hold via closed-world
    /// reasoning; see the small-model checker).
    NotFound,
    /// The sensitive query is unsatisfiable — nothing to disclose.
    TrivialQuery,
}

impl PqiOutcome {
    /// `true` if a certificate was found.
    pub fn holds(&self) -> bool {
        matches!(self, PqiOutcome::Holds { .. })
    }
}

/// Checks PQI for a sensitive query against instantiated policy views.
pub fn check_pqi(sensitive: &Cq, views: &ViewSet) -> PqiOutcome {
    if !satisfiable(sensitive) || sensitive.atoms.is_empty() {
        return PqiOutcome::TrivialQuery;
    }
    for rw in contained_rewritings(sensitive, views) {
        let Ok(exp) = expand(&rw, views) else {
            continue;
        };
        // The expansion must be able to produce a tuple on some database
        // (satisfiable) and must actually depend on data (non-trivial).
        if satisfiable(&exp) && !exp.atoms.is_empty() {
            return PqiOutcome::Holds { certificate: rw };
        }
    }
    PqiOutcome::NotFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::{Atom, CmpOp, Comparison, Term};

    fn named(mut cq: Cq, name: &str) -> Cq {
        cq.name = Some(name.into());
        cq
    }

    #[test]
    fn example_4_2_positive_direction() {
        // V = {Q1: seniors}; S = Q2: adults. Revealing Q1 renders its
        // answers certain answers of Q2: PQI holds.
        let q1 = named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
            ),
            "Q1",
        );
        let s = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
        );
        let views = ViewSet::new(vec![q1]).unwrap();
        assert!(check_pqi(&s, &views).holds());
    }

    #[test]
    fn reverse_direction_no_certificate() {
        // V = {Q2: adults}; S = Q1: seniors. Knowing the adults does not
        // make any senior certain (an adult may be 30).
        let q2 = named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
            ),
            "Q2",
        );
        let s = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        let views = ViewSet::new(vec![q2]).unwrap();
        assert!(!check_pqi(&s, &views).holds());
    }

    #[test]
    fn hospital_certificate_misses_closed_world() {
        // The hospital narrowing needs closed-world reasoning about the
        // view extension; the certificate checker must NOT claim PQI (the
        // small-model checker finds it instead — see smallmodel tests).
        let v1 = named(
            Cq::new(
                vec![Term::var("p"), Term::var("doc")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "PatientDoctor",
        );
        let v2 = named(
            Cq::new(
                vec![Term::var("doc"), Term::var("dis")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "DoctorDiseases",
        );
        let s = Cq::new(
            vec![Term::var("p"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        let views = ViewSet::new(vec![v1, v2]).unwrap();
        assert!(!check_pqi(&s, &views).holds());
    }

    #[test]
    fn disjoint_views_disclose_nothing() {
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Public", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Secret", vec![Term::var("y")])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        assert!(!check_pqi(&s, &views).holds());
    }

    #[test]
    fn unsatisfiable_sensitive_query_is_trivial() {
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("R", vec![Term::var("x")])],
                vec![],
            ),
            "V",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("R", vec![Term::var("y")])],
            vec![Comparison::new(Term::var("y"), CmpOp::Lt, Term::var("y"))],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        assert!(matches!(check_pqi(&s, &views), PqiOutcome::TrivialQuery));
    }

    #[test]
    fn identity_view_is_total_disclosure() {
        let v = named(
            Cq::new(
                vec![Term::var("x"), Term::var("y")],
                vec![Atom::new("R", vec![Term::var("x"), Term::var("y")])],
                vec![],
            ),
            "All",
        );
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x"), Term::int(1)])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        assert!(check_pqi(&s, &views).holds());
    }
}
