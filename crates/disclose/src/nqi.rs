//! Negative query implication (NQI) — certificate-based checking.
//!
//! `NQI_S(V)` holds if revealing the contents of `V` could render a possible
//! answer to `S` *impossible*. The certificate: a **containing rewriting**
//! `R` over the views (`S ⊆ expand(R)`). `R`'s answer, computed from the
//! view contents alone, is an upper bound on `S`'s — so any tuple outside it
//! is ruled out. The bound is informative (some possible answer actually
//! gets excluded on some view image) whenever `S` is satisfiable and the
//! expansion has at least one relational atom: on the empty database the
//! views are empty, `R` returns nothing, and every possible answer of `S` is
//! excluded.

use qlogic::{containing_rewritings, expand, satisfiable, Cq, ViewSet};

/// The outcome of a certificate-based NQI check.
#[derive(Debug, Clone)]
pub enum NqiOutcome {
    /// NQI holds; the rewriting is the certificate.
    Holds {
        /// The containing rewriting over the views.
        certificate: Cq,
    },
    /// No certificate found.
    NotFound,
    /// The sensitive query is unsatisfiable — nothing to exclude.
    TrivialQuery,
}

impl NqiOutcome {
    /// `true` if a certificate was found.
    pub fn holds(&self) -> bool {
        matches!(self, NqiOutcome::Holds { .. })
    }
}

/// Maximum view atoms in a containing-rewriting certificate.
pub const MAX_CERT_ATOMS: usize = 3;

/// Checks NQI for a sensitive query against instantiated policy views.
pub fn check_nqi(sensitive: &Cq, views: &ViewSet) -> NqiOutcome {
    if !satisfiable(sensitive) || sensitive.atoms.is_empty() {
        return NqiOutcome::TrivialQuery;
    }
    for rw in containing_rewritings(sensitive, views, MAX_CERT_ATOMS) {
        let Ok(exp) = expand(&rw, views) else {
            continue;
        };
        if !exp.atoms.is_empty() {
            return NqiOutcome::Holds { certificate: rw };
        }
    }
    NqiOutcome::NotFound
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::{Atom, CmpOp, Comparison, Term};

    fn named(mut cq: Cq, name: &str) -> Cq {
        cq.name = Some(name.into());
        cq
    }

    #[test]
    fn example_4_2_negative_direction() {
        // V = {Q2: adults}; S = Q1: seniors. If Q2 doesn't return Alex,
        // neither can Q1: NQI holds.
        let q2 = named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
            ),
            "Q2",
        );
        let s = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
        );
        let views = ViewSet::new(vec![q2]).unwrap();
        assert!(check_nqi(&s, &views).holds());
    }

    #[test]
    fn seniors_view_does_not_bound_adults() {
        // V = {Q1: seniors}; S = Q2: adults. The seniors view is a lower
        // bound, not an upper bound, on the adults: no NQI certificate.
        let q1 = named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
            ),
            "Q1",
        );
        let s = Cq::new(
            vec![Term::var("n")],
            vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
            vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
        );
        let views = ViewSet::new(vec![q1]).unwrap();
        assert!(!check_nqi(&s, &views).holds());
    }

    #[test]
    fn hospital_narrowing_found() {
        // Example 4.1: patient→doctor and doctor→diseases views bound the
        // patient→disease query from above, excluding diseases the assigned
        // doctor does not treat.
        let v1 = named(
            Cq::new(
                vec![Term::var("p"), Term::var("doc")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "PatientDoctor",
        );
        let v2 = named(
            Cq::new(
                vec![Term::var("doc"), Term::var("dis")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "DoctorDiseases",
        );
        let s = Cq::new(
            vec![Term::var("p"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        let views = ViewSet::new(vec![v1, v2]).unwrap();
        let outcome = check_nqi(&s, &views);
        assert!(outcome.holds(), "the V1 ⋈ V2 upper bound certifies NQI");
        if let NqiOutcome::Holds { certificate } = outcome {
            assert!(certificate.atoms.len() <= 2);
        }
    }

    #[test]
    fn unrelated_views_no_certificate() {
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Public", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Secret", vec![Term::var("y")])],
            vec![],
        );
        let views = ViewSet::new(vec![v]).unwrap();
        assert!(!check_nqi(&s, &views).holds());
    }
}
