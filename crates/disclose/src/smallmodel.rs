//! Exact PQI/NQI decisions over a bounded universe (the ground truth for
//! the certificate checkers, per §4.3's call for practical algorithms).
//!
//! All databases over a finite active domain (bounded rows per relation) are
//! enumerated and grouped by their *view image* — what an adversary holding
//! the views would see. Within a group:
//!
//! * a tuple in `S`'s answer on **every** consistent database is *certain
//!   given the image*; if it is not certain over all databases, **PQI**
//!   holds;
//! * a tuple possible overall but in `S`'s answer on **no** consistent
//!   database is *impossible given the image*; **NQI** holds.
//!
//! The verdict is exact **relative to the bounded universe** — a
//! disclosure needing a larger domain than configured will be missed, and
//! (dually) finite domains can make answers certain that an unbounded
//! domain would not. Experiments therefore treat the enumerator as ground
//! truth at matched scale, not as an oracle for unbounded semantics.

use qlogic::{Cq, Instance, Term, ViewSet};
use sqlir::Value;

use crate::error::DiscloseError;

/// A relation in the bounded universe.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Maximum rows enumerated for this relation.
    pub max_rows: usize,
}

/// The bounded universe of databases.
#[derive(Debug, Clone)]
pub struct Universe {
    /// Relations.
    pub relations: Vec<RelationSpec>,
    /// Shared active domain.
    pub domain: Vec<Value>,
    /// Hard cap on the number of databases enumerated.
    pub cap: u128,
}

impl Universe {
    /// A universe with the given relations and an integer domain `0..d`.
    pub fn with_int_domain(relations: Vec<RelationSpec>, d: i64) -> Universe {
        Universe {
            relations,
            domain: (0..d).map(Value::Int).collect(),
            cap: 2_000_000,
        }
    }

    /// All tuples of the given arity over the domain.
    fn all_tuples(&self, arity: usize) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = vec![Vec::new()];
        for _ in 0..arity {
            let mut next = Vec::with_capacity(out.len() * self.domain.len());
            for prefix in &out {
                for v in &self.domain {
                    let mut t = prefix.clone();
                    t.push(v.clone());
                    next.push(t);
                }
            }
            out = next;
        }
        out
    }

    /// All row subsets for a relation (sizes `0..=max_rows`).
    fn subsets(&self, spec: &RelationSpec) -> Vec<Vec<Vec<Value>>> {
        let tuples = self.all_tuples(spec.arity);
        let mut out: Vec<Vec<Vec<Value>>> = Vec::new();
        let n = tuples.len();
        // Enumerate bitmasks when feasible; relations are small by design.
        if n <= 20 {
            for mask in 0u32..(1 << n) {
                if (mask.count_ones() as usize) <= spec.max_rows {
                    out.push(
                        (0..n)
                            .filter(|i| mask & (1 << i) != 0)
                            .map(|i| tuples[i].clone())
                            .collect(),
                    );
                }
            }
        } else {
            // Enumerate by size to stay bounded.
            fn combos(
                tuples: &[Vec<Value>],
                k: usize,
                start: usize,
                cur: &mut Vec<Vec<Value>>,
                out: &mut Vec<Vec<Vec<Value>>>,
            ) {
                if cur.len() == k {
                    out.push(cur.clone());
                    return;
                }
                for i in start..tuples.len() {
                    cur.push(tuples[i].clone());
                    combos(tuples, k, i + 1, cur, out);
                    cur.pop();
                }
            }
            for k in 0..=spec.max_rows.min(n) {
                combos(&tuples, k, 0, &mut Vec::new(), &mut out);
            }
        }
        out
    }

    /// Number of row subsets a relation contributes (`Σ C(tuples, k)` for
    /// `k ≤ max_rows`), computed without materializing anything.
    fn subset_count(&self, spec: &RelationSpec) -> u128 {
        let n = (self.domain.len() as u128).saturating_pow(spec.arity as u32);
        let mut total: u128 = 0;
        let mut choose: u128 = 1; // C(n, 0)
        for k in 0..=spec.max_rows as u128 {
            if k > 0 {
                if k > n {
                    break;
                }
                choose = choose
                    .saturating_mul(n - (k - 1))
                    .checked_div(k)
                    .unwrap_or(u128::MAX);
            }
            total = total.saturating_add(choose);
            if total > self.cap.saturating_mul(2) {
                break; // already hopeless; avoid overflow churn
            }
        }
        total
    }

    /// Enumerates every database in the universe.
    pub fn enumerate(&self) -> Result<Vec<Instance>, DiscloseError> {
        // Estimate arithmetically before materializing anything.
        let mut estimated: u128 = 1;
        for spec in &self.relations {
            estimated = estimated.saturating_mul(self.subset_count(spec));
            if estimated > self.cap {
                return Err(DiscloseError::UniverseTooLarge {
                    estimated,
                    cap: self.cap,
                });
            }
        }
        let mut per_relation = Vec::new();
        for spec in &self.relations {
            per_relation.push((spec.name.clone(), self.subsets(spec)));
        }
        let mut dbs: Vec<Vec<(String, Vec<Vec<Value>>)>> = vec![Vec::new()];
        for (name, subsets) in per_relation {
            let mut next = Vec::with_capacity(dbs.len() * subsets.len());
            for db in &dbs {
                for subset in &subsets {
                    let mut d = db.clone();
                    d.push((name.clone(), subset.clone()));
                    next.push(d);
                }
            }
            dbs = next;
        }
        Ok(dbs
            .into_iter()
            .map(|tables| {
                Instance::from_rows(tables.iter().map(|(n, rows)| (n.as_str(), rows.as_slice())))
            })
            .collect())
    }
}

/// An answer tuple (ground).
pub type Tuple = Vec<Term>;

/// A view image: per view, the sorted answer set an adversary would see.
pub type ViewImage = Vec<Vec<Tuple>>;

/// The exact verdict over the bounded universe.
#[derive(Debug, Clone)]
pub struct SmallModelVerdict {
    /// PQI holds in the universe.
    pub pqi: bool,
    /// A witnessing `(view-image index, tuple)` for PQI.
    pub pqi_witness: Option<Tuple>,
    /// NQI holds in the universe.
    pub nqi: bool,
    /// A witnessing tuple for NQI.
    pub nqi_witness: Option<Tuple>,
    /// Databases enumerated.
    pub databases: usize,
    /// Distinct view images.
    pub images: usize,
}

/// Evaluation budget per query per database.
const EVAL_LIMIT: usize = 4096;

/// Decides PQI and NQI exactly over the universe.
pub fn decide(
    universe: &Universe,
    views: &ViewSet,
    sensitive: &Cq,
) -> Result<SmallModelVerdict, DiscloseError> {
    let dbs = universe.enumerate()?;

    // Per database: the view image and S's answer set.
    let mut groups: Vec<(ViewImage, Vec<Vec<Tuple>>)> = Vec::new(); // (image, member answer sets)
    let mut possible: Vec<Tuple> = Vec::new();
    let mut s_answers: Vec<Vec<Tuple>> = Vec::with_capacity(dbs.len());

    for db in &dbs {
        let image: Vec<Vec<Tuple>> = views
            .views()
            .iter()
            .map(|v| {
                let mut ans = db.eval(v, EVAL_LIMIT);
                ans.sort();
                ans
            })
            .collect();
        let mut answers = db.eval(sensitive, EVAL_LIMIT);
        answers.sort();
        for t in &answers {
            if !possible.contains(t) {
                possible.push(t.clone());
            }
        }
        s_answers.push(answers.clone());
        match groups.iter_mut().find(|(img, _)| *img == image) {
            Some((_, members)) => members.push(answers),
            None => groups.push((image, vec![answers])),
        }
    }

    // Certain over all databases (usually empty: the empty DB is included).
    let certain_overall: Vec<Tuple> = possible
        .iter()
        .filter(|t| s_answers.iter().all(|ans| ans.contains(t)))
        .cloned()
        .collect();

    let mut pqi_witness = None;
    let mut nqi_witness = None;
    for (_, members) in &groups {
        // Certain within the group.
        for t in &possible {
            if !certain_overall.contains(t)
                && pqi_witness.is_none()
                && members.iter().all(|ans| ans.contains(t))
            {
                pqi_witness = Some(t.clone());
            }
            if nqi_witness.is_none() && members.iter().all(|ans| !ans.contains(t)) {
                nqi_witness = Some(t.clone());
            }
        }
        if pqi_witness.is_some() && nqi_witness.is_some() {
            break;
        }
    }

    Ok(SmallModelVerdict {
        pqi: pqi_witness.is_some(),
        pqi_witness,
        nqi: nqi_witness.is_some(),
        nqi_witness,
        databases: dbs.len(),
        images: groups.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Atom;

    fn named(mut cq: Cq, name: &str) -> Cq {
        cq.name = Some(name.into());
        cq
    }

    /// Hospital schema at miniature scale: Treatment(p, doc, dis) with a
    /// domain of two values per column.
    fn hospital() -> (Universe, ViewSet, Cq) {
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "Treatment".into(),
                arity: 3,
                max_rows: 2,
            }],
            2,
        );
        let v1 = named(
            Cq::new(
                vec![Term::var("p"), Term::var("doc")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "PatientDoctor",
        );
        let v2 = named(
            Cq::new(
                vec![Term::var("doc"), Term::var("dis")],
                vec![Atom::new(
                    "Treatment",
                    vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
                )],
                vec![],
            ),
            "DoctorDiseases",
        );
        let s = Cq::new(
            vec![Term::var("p"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        );
        (universe, ViewSet::new(vec![v1, v2]).unwrap(), s)
    }

    #[test]
    fn hospital_has_both_pqi_and_nqi() {
        let (universe, views, s) = hospital();
        let verdict = decide(&universe, &views, &s).unwrap();
        assert!(
            verdict.nqi,
            "diseases outside the doctor's set are excluded"
        );
        assert!(
            verdict.pqi,
            "closed-world images can pin the disease exactly \
             (e.g. the assigned doctor treats exactly one)"
        );
        assert!(verdict.databases > 0 && verdict.images > 1);
    }

    #[test]
    fn blind_views_disclose_nothing() {
        // A view over an unrelated relation neither certifies nor excludes.
        let universe = Universe::with_int_domain(
            vec![
                RelationSpec {
                    name: "Secret".into(),
                    arity: 1,
                    max_rows: 2,
                },
                RelationSpec {
                    name: "Public".into(),
                    arity: 1,
                    max_rows: 2,
                },
            ],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("Public", vec![Term::var("x")])],
                vec![],
            ),
            "Pub",
        );
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Secret", vec![Term::var("y")])],
            vec![],
        );
        let verdict = decide(&universe, &ViewSet::new(vec![v]).unwrap(), &s).unwrap();
        assert!(!verdict.pqi);
        assert!(!verdict.nqi);
    }

    #[test]
    fn identity_view_is_total_disclosure() {
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        let v = named(
            Cq::new(
                vec![Term::var("x")],
                vec![Atom::new("R", vec![Term::var("x")])],
                vec![],
            ),
            "All",
        );
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let verdict = decide(&universe, &ViewSet::new(vec![v]).unwrap(), &s).unwrap();
        assert!(verdict.pqi);
        assert!(verdict.nqi);
    }

    #[test]
    fn cap_is_enforced() {
        let mut universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 3,
                max_rows: 8,
            }],
            3,
        );
        universe.cap = 100;
        let err = universe.enumerate().unwrap_err();
        assert!(matches!(err, DiscloseError::UniverseTooLarge { .. }));
    }

    #[test]
    fn enumeration_counts_match() {
        // One unary relation over {0,1}, max 2 rows: subsets {}, {0}, {1},
        // {0,1} = 4 databases.
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        assert_eq!(universe.enumerate().unwrap().len(), 4);
    }
}
