//! k-anonymity over view releases (the other prior-agnostic criterion the
//! paper cites, §4.3).
//!
//! A release is k-anonymous w.r.t. a set of quasi-identifier columns if
//! every combination of quasi-identifier values that appears at all appears
//! in at least `k` rows. The classical algorithms assume a single released
//! table; here the release is the set of *view results* on a concrete
//! database, which extends the check to joined, multi-table schemas as the
//! paper asks.

#[cfg(test)]
use qlogic::Cq;
use qlogic::{Instance, Term, ViewSet};

/// The k-anonymity level of a set of rows under the given quasi-identifier
/// column indices: the size of the smallest non-empty equivalence class.
///
/// An empty release is vacuously anonymous (`usize::MAX`).
pub fn k_anonymity_of_rows(rows: &[Vec<Term>], quasi: &[usize]) -> usize {
    let mut classes: Vec<(Vec<&Term>, usize)> = Vec::new();
    for row in rows {
        let key: Vec<&Term> = quasi.iter().filter_map(|&i| row.get(i)).collect();
        match classes.iter_mut().find(|(k, _)| *k == key) {
            Some((_, n)) => *n += 1,
            None => classes.push((key, 1)),
        }
    }
    classes.iter().map(|(_, n)| *n).min().unwrap_or(usize::MAX)
}

/// Per-view k-anonymity report.
#[derive(Debug, Clone)]
pub struct KAnonReport {
    /// `(view name, k level)` for each view.
    pub per_view: Vec<(String, usize)>,
}

impl KAnonReport {
    /// The weakest (smallest) k across views.
    pub fn min_k(&self) -> usize {
        self.per_view
            .iter()
            .map(|(_, k)| *k)
            .min()
            .unwrap_or(usize::MAX)
    }

    /// `true` if every view is at least k-anonymous.
    pub fn satisfies(&self, k: usize) -> bool {
        self.min_k() >= k
    }
}

/// Evaluation budget per view.
const EVAL_LIMIT: usize = 65_536;

/// Checks k-anonymity of every view's result on a concrete database.
///
/// `quasi` gives, per view (matched by name), the quasi-identifier head
/// positions; views not listed use all head positions.
pub fn check_release(db: &Instance, views: &ViewSet, quasi: &[(&str, Vec<usize>)]) -> KAnonReport {
    let mut per_view = Vec::new();
    for v in views.views() {
        let name = v.name.map_or_else(|| "?".to_string(), |n| n.to_string());
        let rows = db.eval(v, EVAL_LIMIT);
        let default: Vec<usize> = (0..v.head.len()).collect();
        let cols = quasi
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c.clone())
            .unwrap_or(default);
        per_view.push((name, k_anonymity_of_rows(&rows, &cols)));
    }
    KAnonReport { per_view }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qlogic::Atom;
    use sqlir::Value;

    #[test]
    fn counts_equivalence_classes() {
        let rows = vec![
            vec![Term::int(30), Term::str("a")],
            vec![Term::int(30), Term::str("b")],
            vec![Term::int(40), Term::str("c")],
        ];
        // QI = first column: class sizes {30: 2, 40: 1} → k = 1.
        assert_eq!(k_anonymity_of_rows(&rows, &[0]), 1);
        // QI = nothing: one class of 3.
        assert_eq!(k_anonymity_of_rows(&rows, &[]), 3);
    }

    #[test]
    fn empty_release_is_vacuous() {
        assert_eq!(k_anonymity_of_rows(&[], &[0]), usize::MAX);
    }

    #[test]
    fn view_release_check() {
        let db = Instance::from_rows([(
            "People",
            [
                vec![Value::Int(30), Value::str("flu")],
                vec![Value::Int(30), Value::str("cold")],
                vec![Value::Int(41), Value::str("flu")],
            ]
            .as_slice(),
        )]);
        let mut v = Cq::new(
            vec![Term::var("age"), Term::var("dis")],
            vec![Atom::new(
                "People",
                vec![Term::var("age"), Term::var("dis")],
            )],
            vec![],
        );
        v.name = Some("Release".into());
        let views = ViewSet::new(vec![v]).unwrap();
        // Age is the quasi-identifier: the 41 group has one member.
        let report = check_release(&db, &views, &[("Release", vec![0])]);
        assert_eq!(report.min_k(), 1);
        assert!(!report.satisfies(2));
    }

    #[test]
    fn projection_improves_anonymity() {
        let db = Instance::from_rows([(
            "People",
            [
                vec![Value::Int(30), Value::str("flu")],
                vec![Value::Int(30), Value::str("cold")],
                vec![Value::Int(41), Value::str("flu")],
            ]
            .as_slice(),
        )]);
        // Release only the disease column: flu appears twice, cold once.
        let mut v = Cq::new(
            vec![Term::var("dis")],
            vec![Atom::new(
                "People",
                vec![Term::var("age"), Term::var("dis")],
            )],
            vec![],
        );
        v.name = Some("DiseasesOnly".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let report = check_release(&db, &views, &[]);
        // Distinct tuples deduplicate under set semantics; each class has
        // size 1 — k-anonymity over set-semantics releases is conservative.
        assert_eq!(report.min_k(), 1);
    }
}
