//! Aggregated disclosure reports (what "Dora" reads before deploying a
//! policy, per §4.3's workflow).

use std::fmt;

use qlogic::{Cq, ViewSet};

use crate::bayes::{belief_shift, BayesConfig, BayesReport};
use crate::error::DiscloseError;
use crate::nqi::{check_nqi, NqiOutcome};
use crate::pqi::{check_pqi, PqiOutcome};
use crate::smallmodel::{decide, SmallModelVerdict, Universe};

/// The full audit result for one sensitive query.
#[derive(Debug, Clone)]
pub struct DisclosureReport {
    /// Display name of the sensitive query.
    pub sensitive: String,
    /// §4.1's first check: would the enforcement layer block the direct
    /// query? (`false` means the policy *answers* the sensitive query
    /// outright — the audit is moot and the policy needs tightening.)
    pub directly_blocked: bool,
    /// Certificate-based PQI.
    pub pqi: PqiOutcome,
    /// Certificate-based NQI.
    pub nqi: NqiOutcome,
    /// Exact bounded-universe verdict (if a universe was supplied).
    pub small_model: Option<SmallModelVerdict>,
    /// Bayesian belief shift (if a universe was supplied).
    pub bayes: Option<BayesReport>,
}

impl DisclosureReport {
    /// `true` if any criterion signals disclosure.
    pub fn any_disclosure(&self) -> bool {
        self.pqi.holds()
            || self.nqi.holds()
            || self
                .small_model
                .as_ref()
                .map(|v| v.pqi || v.nqi)
                .unwrap_or(false)
    }
}

impl fmt::Display for DisclosureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "sensitive query: {}", self.sensitive)?;
        writeln!(
            f,
            "  direct query    : {}",
            if self.directly_blocked {
                "blocked by the policy"
            } else {
                "ANSWERED by the policy (tighten it!)"
            }
        )?;
        writeln!(
            f,
            "  PQI certificate : {}",
            match &self.pqi {
                PqiOutcome::Holds { certificate } => format!("HOLDS via {certificate}"),
                PqiOutcome::NotFound => "not found".to_string(),
                PqiOutcome::TrivialQuery => "trivial query".to_string(),
            }
        )?;
        writeln!(
            f,
            "  NQI certificate : {}",
            match &self.nqi {
                NqiOutcome::Holds { certificate } => format!("HOLDS via {certificate}"),
                NqiOutcome::NotFound => "not found".to_string(),
                NqiOutcome::TrivialQuery => "trivial query".to_string(),
            }
        )?;
        if let Some(v) = &self.small_model {
            writeln!(
                f,
                "  small model     : PQI={} NQI={} ({} databases, {} images)",
                v.pqi, v.nqi, v.databases, v.images
            )?;
        }
        if let Some(b) = &self.bayes {
            writeln!(
                f,
                "  Bayesian shift  : {:.3} (prior {:.3} → posterior {:.3})",
                b.max_shift, b.prior, b.posterior
            )?;
        }
        Ok(())
    }
}

/// Runs every applicable checker for one sensitive query.
///
/// The certificate checkers always run; the exact and Bayesian checkers run
/// only when a bounded universe is supplied (they enumerate databases).
pub fn audit(
    sensitive: &Cq,
    views: &ViewSet,
    universe: Option<&Universe>,
    bayes: Option<BayesConfig>,
) -> Result<DisclosureReport, DiscloseError> {
    let small_model = match universe {
        Some(u) => Some(decide(u, views, sensitive)?),
        None => None,
    };
    let bayes_report = match (universe, bayes) {
        (Some(u), Some(cfg)) => Some(belief_shift(u, views, sensitive, cfg)?),
        _ => None,
    };
    Ok(DisclosureReport {
        sensitive: sensitive.to_string(),
        directly_blocked: qlogic::equivalent_rewriting(sensitive, views, &[]).is_none(),
        pqi: check_pqi(sensitive, views),
        nqi: check_nqi(sensitive, views),
        small_model,
        bayes: bayes_report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smallmodel::RelationSpec;
    use qlogic::{Atom, Term};

    #[test]
    fn audit_runs_all_checkers() {
        let universe = Universe::with_int_domain(
            vec![RelationSpec {
                name: "R".into(),
                arity: 1,
                max_rows: 2,
            }],
            2,
        );
        let mut v = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        v.name = Some("All".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let s = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("R", vec![Term::var("x")])],
            vec![],
        );
        let report = audit(&s, &views, Some(&universe), Some(BayesConfig::default())).unwrap();
        assert!(report.any_disclosure());
        assert!(
            !report.directly_blocked,
            "the identity view answers the sensitive query outright"
        );
        assert!(report.small_model.is_some());
        assert!(report.bayes.is_some());
        let text = report.to_string();
        assert!(text.contains("PQI certificate"));
        assert!(text.contains("Bayesian shift"));
    }

    #[test]
    fn audit_without_universe_is_certificates_only() {
        let mut v = Cq::new(
            vec![Term::var("x")],
            vec![Atom::new("Public", vec![Term::var("x")])],
            vec![],
        );
        v.name = Some("Pub".into());
        let views = ViewSet::new(vec![v]).unwrap();
        let s = Cq::new(
            vec![Term::var("y")],
            vec![Atom::new("Secret", vec![Term::var("y")])],
            vec![],
        );
        let report = audit(&s, &views, None, None).unwrap();
        assert!(!report.any_disclosure());
        assert!(report.small_model.is_none());
    }
}
