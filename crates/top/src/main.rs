//! `bep-top` — a live terminal view of a running enforcement server.
//!
//! Two connections do all the work. The first `subscribe`s to the
//! decision journal and folds every pushed event into per-template
//! panes: decision counts, verdict split, latency, solver-span counter
//! averages, and which cache tier answered. The second scrapes the
//! Prometheus exposition and `stats` snapshot each frame for the
//! byte-accurate memory gauges (`bep_mem_bytes{component=...}`) and the
//! server-wide latency percentiles.
//!
//! Point it at a server (for example `serve_calendar`):
//!
//! ```text
//! bep-top 127.0.0.1:4270
//! ```
//!
//! Or let it spin up its own in-process demo server with synthetic
//! traffic — also the CI smoke path, since it needs no orchestration:
//!
//! ```text
//! bep-top --demo --frames 3 --interval-ms 200
//! ```
//!
//! Flags:
//!
//! * `--frames N` — render `N` frames to stdout and exit (headless mode,
//!   plain text). Without it, bep-top runs until interrupted and
//!   repaints the terminal in place.
//! * `--interval-ms M` — frame interval (default 1000).
//! * `--top K` — show the `K` busiest templates (default 10).
//! * `--demo` — serve a tiny calendar policy locally and generate
//!   alternating allowed/blocked traffic against it.

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bep_core::{schema_of_database, ComplianceChecker, Policy, ProxyConfig, SqlProxy, Verdict};
use bep_server::{Client, ClientError, EventBatch, Server, ServerConfig, WireStats};
use minidb::Database;
use sqlir::Value;

/// How long one `next_events` read may block inside a frame: short
/// enough to keep the frame cadence honest, long enough to not spin.
const STREAM_TICK: Duration = Duration::from_millis(200);

fn main() {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--demo" => opts.demo = true,
            "--frames" => opts.frames = req_num(&mut args, "--frames"),
            "--interval-ms" => {
                opts.interval = Duration::from_millis(req_num(&mut args, "--interval-ms"))
            }
            "--top" => opts.top = req_num(&mut args, "--top") as usize,
            "--help" | "-h" => {
                println!("usage: bep-top [ADDR] [--demo] [--frames N] [--interval-ms M] [--top K]");
                return;
            }
            other => opts.addr = other.to_string(),
        }
    }

    let demo = if opts.demo {
        let d = DemoServer::start();
        opts.addr = d.addr.to_string();
        Some(d)
    } else {
        None
    };

    let outcome = run(&opts);
    if let Some(d) = demo {
        d.stop();
    }
    if let Err(e) = outcome {
        eprintln!("bep-top: {e}");
        std::process::exit(1);
    }
}

fn req_num(args: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("bep-top: {flag} needs a numeric argument");
        std::process::exit(2);
    })
}

struct Opts {
    addr: String,
    /// 0 means run forever (interactive mode).
    frames: u64,
    interval: Duration,
    top: usize,
    demo: bool,
}

impl Default for Opts {
    fn default() -> Opts {
        Opts {
            addr: "127.0.0.1:4270".into(),
            frames: 0,
            interval: Duration::from_millis(1000),
            top: 10,
            demo: false,
        }
    }
}

fn run(opts: &Opts) -> Result<(), String> {
    let addr: SocketAddr = opts
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("resolve {}: {e}", opts.addr))?
        .next()
        .ok_or_else(|| format!("resolve {}: no address", opts.addr))?;

    let io = Duration::from_secs(5);
    let mut scrape = Client::connect(addr, io).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut sub = Client::connect(addr, io).map_err(|e| format!("connect {addr}: {e}"))?;
    sub.subscribe(0).map_err(|e| format!("subscribe: {e}"))?;
    sub.set_io_timeout(STREAM_TICK.min(opts.interval))
        .map_err(|e| format!("set stream timeout: {e}"))?;

    let interactive = opts.frames == 0;
    let mut agg = Aggregate::default();
    let mut frame = 0u64;
    let mut prev_evictions: Vec<(String, u64)> = Vec::new();
    let mut prev_scrape = Instant::now();
    loop {
        frame += 1;
        // Drain the stream until the frame interval elapses; each read
        // blocks at most STREAM_TICK, so an idle server still renders.
        let deadline = Instant::now() + opts.interval;
        let mut fresh = 0usize;
        loop {
            match sub.next_events() {
                Ok(batch) => {
                    fresh += batch.events.len();
                    agg.ingest(batch);
                }
                Err(ClientError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                    ) => {}
                Err(e) => return Err(format!("stream: {e}")),
            }
            if Instant::now() >= deadline {
                break;
            }
        }

        let stats = scrape.stats().map_err(|e| format!("stats: {e}"))?;
        let text = scrape.metrics().map_err(|e| format!("metrics: {e}"))?;
        let mem = parse_mem_gauges(&text);
        let evictions = parse_eviction_counters(&text);
        let now = Instant::now();
        let rates = eviction_rates(&prev_evictions, &evictions, now - prev_scrape);
        prev_evictions = evictions;
        prev_scrape = now;
        let snapshot = parse_snapshot_gauges(&text);
        let writes = parse_write_counters(&text);

        if interactive {
            // Repaint in place: clear screen, home the cursor.
            print!("\x1b[2J\x1b[H");
        }
        print!(
            "{}",
            render(opts, frame, fresh, &agg, &stats, &mem, &rates, &snapshot, &writes)
        );
        if !interactive && frame >= opts.frames {
            return Ok(());
        }
    }
}

// ---------------------------------------------------------------------------
// Aggregation: fold the event stream into per-template panes.

/// One template's pane: everything shown about it comes from folding the
/// pushed [`bep_core::DecisionEvent`]s, never from re-querying the server.
#[derive(Default)]
struct Pane {
    count: u64,
    allowed: u64,
    total_ns: u64,
    max_ns: u64,
    rewrite_iterations: u64,
    containment_checks: u64,
    hom_nodes: u64,
    /// Decisions answered by each cache tier, keyed by tier label.
    tiers: HashMap<&'static str, u64>,
}

#[derive(Default)]
struct Aggregate {
    panes: HashMap<u64, Pane>,
    delivered: u64,
    dropped: u64,
}

impl Aggregate {
    fn ingest(&mut self, batch: EventBatch) {
        self.dropped = batch.dropped;
        self.delivered += batch.events.len() as u64;
        for e in batch.events {
            let pane = self.panes.entry(e.template_hash).or_default();
            pane.count += 1;
            if e.verdict == Verdict::Allowed {
                pane.allowed += 1;
            }
            pane.total_ns += e.total_ns;
            pane.max_ns = pane.max_ns.max(e.total_ns);
            pane.rewrite_iterations += e.span.rewrite_iterations as u64;
            pane.containment_checks += e.span.containment_checks as u64;
            pane.hom_nodes += e.span.hom_nodes as u64;
            *pane.tiers.entry(e.tier.label()).or_insert(0) += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics scrape: pull the byte-accurate gauges out of the exposition.

/// Extracts `bep_mem_bytes{component="X"} N` samples, in exposition order.
fn parse_mem_gauges(text: &str) -> Vec<(String, u64)> {
    parse_labeled(text, "bep_mem_bytes{component=\"")
}

/// Extracts `bep_cache_evictions_total{tier="X"} N` counters, in
/// exposition order (plan, session-allow, session-deny).
fn parse_eviction_counters(text: &str) -> Vec<(String, u64)> {
    parse_labeled(text, "bep_cache_evictions_total{tier=\"")
}

/// Extracts the write-decision verdict counters and the unchecked-traffic
/// audit counter: `(allowed/blocked/passthrough, unchecked)`.
fn parse_write_counters(text: &str) -> (Vec<(String, u64)>, u64) {
    let verdicts = parse_labeled(text, "bep_write_decisions_total{verdict=\"");
    let unchecked = text
        .lines()
        .find_map(|l| l.strip_prefix("bep_unchecked_statements_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    (verdicts, unchecked)
}

fn parse_labeled(text: &str, prefix: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix(prefix) else {
            continue;
        };
        let Some((label, value)) = rest.split_once("\"}") else {
            continue;
        };
        if let Ok(n) = value.trim().parse::<u64>() {
            out.push((label.to_string(), n));
        }
    }
    out
}

/// The warm-start snapshot gauges: entries loaded/rejected at the last
/// load (or saved at the last save), file bytes, and the epoch-seconds
/// stamp of whichever happened last.
#[derive(Debug, Default, PartialEq)]
struct SnapshotGauges {
    loaded: u64,
    rejected: u64,
    bytes: u64,
    timestamp: u64,
}

fn parse_snapshot_gauges(text: &str) -> SnapshotGauges {
    let mut g = SnapshotGauges::default();
    for (outcome, n) in parse_labeled(text, "bep_snapshot_entries{outcome=\"") {
        match outcome.as_str() {
            "loaded" => g.loaded = n,
            "rejected" => g.rejected = n,
            _ => {}
        }
    }
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("bep_snapshot_bytes ") {
            g.bytes = v.trim().parse().unwrap_or(0);
        } else if let Some(v) = line.strip_prefix("bep_snapshot_timestamp_seconds ") {
            g.timestamp = v.trim().parse().unwrap_or(0);
        }
    }
    g
}

/// Turns two scrapes of the cumulative eviction counters into per-second
/// rates. Tiers are matched by label; a missing or reset counter (new
/// server behind the same address) clamps to zero instead of going
/// negative.
fn eviction_rates(
    prev: &[(String, u64)],
    cur: &[(String, u64)],
    elapsed: Duration,
) -> Vec<(String, f64)> {
    let secs = elapsed.as_secs_f64().max(1e-9);
    cur.iter()
        .map(|(tier, n)| {
            let before = prev
                .iter()
                .find(|(t, _)| t == tier)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            (tier.clone(), n.saturating_sub(before) as f64 / secs)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rendering.

#[allow(clippy::too_many_arguments)]
fn render(
    opts: &Opts,
    frame: u64,
    fresh: usize,
    agg: &Aggregate,
    stats: &WireStats,
    mem: &[(String, u64)],
    eviction_rates: &[(String, f64)],
    snapshot: &SnapshotGauges,
    writes: &(Vec<(String, u64)>, u64),
) -> String {
    let mut out = String::new();
    out.push_str(&format!("bep-top — {} — frame {frame}\n", opts.addr));
    out.push_str(&format!(
        "server: allowed {}  blocked {}  sessions {}  p50 {}  p95 {}  p99 {}\n",
        stats.allowed,
        stats.blocked,
        stats.sessions,
        fmt_us(stats.p50_ns),
        fmt_us(stats.p95_ns),
        fmt_us(stats.p99_ns),
    ));
    let (verdicts, unchecked) = writes;
    if !verdicts.is_empty() {
        let parts: Vec<String> = verdicts.iter().map(|(v, n)| format!("{v} {n}")).collect();
        out.push_str(&format!(
            "writes: {}  unchecked {unchecked}\n",
            parts.join("  ")
        ));
    }
    out.push_str(&format!(
        "stream: delivered {}  dropped {}  (+{fresh} this frame)\n",
        agg.delivered, agg.dropped
    ));
    let gauges: Vec<String> = mem
        .iter()
        .map(|(c, b)| format!("{c} {}", fmt_bytes(*b)))
        .collect();
    out.push_str(&format!("mem: {}\n", gauges.join("  ")));
    if !eviction_rates.is_empty() {
        let rates: Vec<String> = eviction_rates
            .iter()
            .map(|(tier, r)| format!("{tier} {r:.1}/s"))
            .collect();
        out.push_str(&format!("evictions: {}\n", rates.join("  ")));
    }
    out.push_str(&format!("snapshot: {}\n", fmt_snapshot(snapshot)));

    out.push_str(&format!(
        "{:<17} {:>7} {:>6} {:>6} {:>8} {:>8} {:>5} {:>5} {:>6}  {}\n",
        "TEMPLATE", "COUNT", "ALLOW", "BLOCK", "MEAN_US", "MAX_US", "RW", "CC", "HN", "TIERS"
    ));
    let mut rows: Vec<(&u64, &Pane)> = agg.panes.iter().collect();
    rows.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(b.0)));
    for (hash, p) in rows.iter().take(opts.top) {
        let per = |sum: u64| sum as f64 / p.count as f64;
        let mut tiers: Vec<(&&str, &u64)> = p.tiers.iter().collect();
        tiers.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let tiers: Vec<String> = tiers
            .iter()
            .map(|(label, n)| format!("{}:{n}", tier_abbrev(label)))
            .collect();
        out.push_str(&format!(
            "{hash:016x}  {:>7} {:>6} {:>6} {:>8.1} {:>8.1} {:>5.1} {:>5.1} {:>6.1}  {}\n",
            p.count,
            p.allowed,
            p.count - p.allowed,
            per(p.total_ns) / 1_000.0,
            p.max_ns as f64 / 1_000.0,
            per(p.rewrite_iterations),
            per(p.containment_checks),
            per(p.hom_nodes),
            tiers.join(" "),
        ));
    }
    if agg.panes.len() > opts.top {
        out.push_str(&format!(
            "… and {} more template(s)\n",
            agg.panes.len() - opts.top
        ));
    }
    out
}

/// Abbreviates a tier label by its hyphen-separated initials:
/// `template-cache` → `tc`, `uncached` → `u`.
fn tier_abbrev(label: &str) -> String {
    label.split('-').filter_map(|w| w.chars().next()).collect()
}

/// One line for the warm-start snapshot: entry counts, file size, and
/// age relative to this process's clock. Timestamp 0 means the server
/// has neither loaded nor saved one.
fn fmt_snapshot(s: &SnapshotGauges) -> String {
    if s.timestamp == 0 {
        return "none".to_string();
    }
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let age = now.saturating_sub(s.timestamp);
    let rejected = if s.rejected > 0 {
        format!("  rejected {}", s.rejected)
    } else {
        String::new()
    };
    format!(
        "{} entries{rejected}  {}  age {}",
        s.loaded,
        fmt_bytes(s.bytes),
        fmt_age(age)
    )
}

fn fmt_age(secs: u64) -> String {
    if secs >= 3600 {
        format!("{:.1}h", secs as f64 / 3600.0)
    } else if secs >= 60 {
        format!("{:.1}m", secs as f64 / 60.0)
    } else {
        format!("{secs}s")
    }
}

fn fmt_us(ns: u64) -> String {
    format!("{:.1}us", ns as f64 / 1_000.0)
}

fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1}KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b}B")
    }
}

// ---------------------------------------------------------------------------
// Demo mode: an in-process server plus a synthetic traffic generator, so
// `bep-top --demo --frames N` is fully self-contained (used by CI).

struct DemoServer {
    addr: SocketAddr,
    server: Server,
    stop: Arc<AtomicBool>,
    traffic: std::thread::JoinHandle<()>,
}

impl DemoServer {
    fn start() -> DemoServer {
        let mut db = Database::new();
        db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
            .unwrap();
        db.execute_sql(
            "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), (3, 'party', 'fun')",
        )
        .unwrap();
        db.execute_sql(
            "INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')",
        )
        .unwrap();
        let schema = schema_of_database(&db);
        let policy = Policy::from_sql(
            &schema,
            &[
                ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
                ("V2", "SELECT EId, Title FROM Events"),
            ],
        )
        .unwrap();
        let proxy = Arc::new(SqlProxy::new(
            db,
            ComplianceChecker::new(schema, policy),
            ProxyConfig {
                spans: true,
                exemplars_per_template: 2,
                ..ProxyConfig::default()
            },
        ));
        let server =
            Server::start(proxy, ServerConfig::default(), "127.0.0.1:0").expect("bind demo server");
        let addr = server.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let traffic = std::thread::Builder::new()
            .name("demo-traffic".into())
            .spawn(move || {
                let mut c = Client::connect(addr, Duration::from_secs(5)).expect("demo connect");
                let session = c
                    .begin(vec![("MyUId".into(), Value::Int(1))])
                    .expect("demo session");
                // Four templates with different verdicts and costs, so
                // the panes have something to disagree about. The DELETE
                // matches no row (EId 99 is never seeded): it exercises
                // the write path every round without disturbing the data.
                let stmts = [
                    "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                    "SELECT Title FROM Events WHERE EId = ?e",
                    "SELECT Kind FROM Events WHERE EId = ?e",
                    "DELETE FROM Attendance WHERE UId = ?MyUId AND EId = 99",
                ];
                let mut i = 0usize;
                while !stop2.load(Ordering::Relaxed) {
                    let batch: Vec<(String, Vec<(String, Value)>)> = (0..24)
                        .map(|k| {
                            (
                                stmts[(i + k) % stmts.len()].to_string(),
                                vec![("e".into(), Value::Int(2))],
                            )
                        })
                        .collect();
                    i += batch.len();
                    if c.execute_pipelined(session, &batch).is_err() {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
                let _ = c.end(session);
            })
            .expect("spawn demo traffic");

        println!("demo: serving a calendar policy on {addr}");
        DemoServer {
            addr,
            server,
            stop,
            traffic,
        }
    }

    fn stop(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.traffic.join();
        self.server.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_gauges_parse_from_exposition_text() {
        let text = "# HELP bep_mem_bytes Heap bytes\n\
                    # TYPE bep_mem_bytes gauge\n\
                    bep_mem_bytes{component=\"plan-cache\"} 1024\n\
                    bep_mem_bytes{component=\"journal\"} 2048\n\
                    bep_decisions_total{verdict=\"allowed\"} 7\n";
        assert_eq!(
            parse_mem_gauges(text),
            vec![("plan-cache".into(), 1024), ("journal".into(), 2048)]
        );
    }

    #[test]
    fn write_counters_parse_from_exposition_text() {
        let text = "# TYPE bep_write_decisions_total counter\n\
                    bep_write_decisions_total{verdict=\"allowed\"} 5\n\
                    bep_write_decisions_total{verdict=\"blocked\"} 2\n\
                    bep_write_decisions_total{verdict=\"passthrough\"} 1\n\
                    bep_unchecked_statements_total 9\n";
        let (verdicts, unchecked) = parse_write_counters(text);
        assert_eq!(
            verdicts,
            vec![
                ("allowed".into(), 5),
                ("blocked".into(), 2),
                ("passthrough".into(), 1)
            ]
        );
        assert_eq!(unchecked, 9);
        assert_eq!(parse_write_counters(""), (Vec::new(), 0));
    }

    #[test]
    fn tier_abbreviations_are_initials() {
        assert_eq!(tier_abbrev("template-cache"), "tc");
        assert_eq!(tier_abbrev("concrete-proof"), "cp");
        assert_eq!(tier_abbrev("uncached"), "u");
    }

    #[test]
    fn bytes_format_human_readably() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn eviction_counters_parse_and_turn_into_rates() {
        let t0 = "bep_cache_evictions_total{tier=\"plan\"} 10\n\
                  bep_cache_evictions_total{tier=\"session-allow\"} 0\n\
                  bep_cache_evictions_total{tier=\"session-deny\"} 3\n";
        let t1 = "bep_cache_evictions_total{tier=\"plan\"} 30\n\
                  bep_cache_evictions_total{tier=\"session-allow\"} 0\n\
                  bep_cache_evictions_total{tier=\"session-deny\"} 3\n";
        let prev = parse_eviction_counters(t0);
        let cur = parse_eviction_counters(t1);
        assert_eq!(prev.len(), 3);
        let rates = eviction_rates(&prev, &cur, Duration::from_secs(2));
        assert_eq!(rates[0], ("plan".to_string(), 10.0));
        assert_eq!(rates[1], ("session-allow".to_string(), 0.0));
        assert_eq!(rates[2], ("session-deny".to_string(), 0.0));
    }

    #[test]
    fn a_counter_reset_clamps_the_rate_to_zero() {
        // A restarted server resets its counters; the rate must not
        // underflow.
        let prev = vec![("plan".to_string(), 100u64)];
        let cur = vec![("plan".to_string(), 5u64)];
        let rates = eviction_rates(&prev, &cur, Duration::from_secs(1));
        assert_eq!(rates[0].1, 0.0);
    }

    #[test]
    fn snapshot_gauges_parse_from_exposition_text() {
        let text = "bep_snapshot_entries{outcome=\"loaded\"} 48\n\
                    bep_snapshot_entries{outcome=\"rejected\"} 2\n\
                    bep_snapshot_bytes 27622\n\
                    bep_snapshot_timestamp_seconds 1700000000\n";
        assert_eq!(
            parse_snapshot_gauges(text),
            SnapshotGauges {
                loaded: 48,
                rejected: 2,
                bytes: 27622,
                timestamp: 1700000000,
            }
        );
        assert_eq!(parse_snapshot_gauges(""), SnapshotGauges::default());
        assert_eq!(fmt_snapshot(&SnapshotGauges::default()), "none");
    }

    #[test]
    fn ages_format_in_the_right_unit() {
        assert_eq!(fmt_age(45), "45s");
        assert_eq!(fmt_age(90), "1.5m");
        assert_eq!(fmt_age(7200), "2.0h");
    }
}
