//! Well-formedness and determinism gates for the generated fleet.
//!
//! Every fleet application, at `Scale::small`, must clear the same bars
//! the hand-written apps clear: the source parses, the ground-truth
//! policy compiles, extraction runs, the app runs clean under its own
//! policy, raw probes are blocked, and a blocked probe is diagnosable.
//! On top of that, the whole enforcement run — every proxy decision — must
//! be identical across two same-seed executions.

use appdsl::{run_handler, Limits, Outcome};
use appsim::{AppSpec, ProxyPort, Scale};
use bep_core::{ComplianceChecker, ProxyConfig, ProxyResponse, SqlProxy};
use bep_diagnose::{diagnose, DiagnosisInput};
use bep_extract::{extract_symbolic, SymLimits, ViewGenOptions};
use bep_scenario::{fleet, GeneratedApp, TrafficConfig, TrafficEngine, TrafficOp};

fn small_fleet() -> Vec<GeneratedApp> {
    fleet(7, Scale::small().users as u64)
}

fn traffic_cfg() -> TrafficConfig {
    TrafficConfig {
        target_sessions: 6,
        mean_session_len: 8.0,
        // Mixed read/write traffic: raw write probes must all be blocked
        // by write enforcement (handler-level writes stay allowed).
        write_probe_fraction: 0.08,
        ..TrafficConfig::default()
    }
}

#[test]
fn fleet_apps_parse_and_their_policies_compile() {
    for app in small_fleet() {
        let parsed = app.app();
        assert!(parsed.handlers.len() >= 4, "{}", app.name);
        let policy = app.policy().unwrap_or_else(|e| panic!("{}: {e}", app.name));
        assert!(policy.len() >= 4, "{}", app.name);
        assert_eq!(policy.params(), vec!["MyUId"], "{}", app.name);
        let rows = app.populate(&mut app.empty_db()).expect("populate");
        assert!(rows > 0, "{}", app.name);
    }
}

#[test]
fn extraction_runs_on_every_fleet_app() {
    for app in small_fleet() {
        let opts = ViewGenOptions {
            session_params: app.session_params(),
        };
        let extracted = extract_symbolic(&app.schema(), &app.app(), SymLimits::default(), &opts)
            .unwrap_or_else(|e| panic!("{}: extraction failed: {e}", app.name));
        assert!(
            !extracted.views.is_empty(),
            "{}: extraction found no views",
            app.name
        );
    }
}

/// One enforcement run: drives `ops` traffic operations through a fresh
/// proxy and returns the decision log (one line per op).
fn enforcement_run(app: &GeneratedApp, seed: u64, ops: usize) -> Vec<String> {
    let mut db = app.empty_db();
    app.populate(&mut db).expect("populate");
    let checker = ComplianceChecker::new(app.schema(), app.policy().expect("policy"));
    let proxy = SqlProxy::new(
        db,
        checker,
        ProxyConfig {
            enforce_writes: true,
            ..ProxyConfig::default()
        },
    );
    let parsed = app.app();
    let mut engine = TrafficEngine::new(app, traffic_cfg(), seed);
    let mut sessions: Vec<Option<u64>> = vec![None; traffic_cfg().target_sessions];
    let mut log = Vec::with_capacity(ops);
    for _ in 0..ops {
        match engine.next_op() {
            TrafficOp::Begin {
                slot,
                uid,
                user_index,
            } => {
                let id = proxy.begin_session(vec![("MyUId".into(), sqlir::Value::Int(uid))]);
                sessions[slot] = Some(id);
                log.push(format!("begin u{user_index}"));
            }
            TrafficOp::End { slot } => {
                let id = sessions[slot].take().expect("live session");
                proxy.end_session(id);
                log.push("end".to_string());
            }
            TrafficOp::RawProbe { slot, sql } => {
                let id = sessions[slot].expect("live session");
                let resp = proxy.execute(id, &sql, &[]).expect("raw probe executes");
                let verdict = match resp {
                    ProxyResponse::Blocked(_) => "blocked",
                    ProxyResponse::Rows(_) => "rows",
                    ProxyResponse::Affected(_) => "affected",
                };
                log.push(format!("raw {verdict}"));
                assert_eq!(
                    verdict, "blocked",
                    "{}: raw probe `{sql}` must be denied",
                    app.name
                );
            }
            TrafficOp::RawWriteProbe { slot, sql } => {
                let id = sessions[slot].expect("live session");
                let resp = proxy.execute(id, &sql, &[]).expect("write probe executes");
                let verdict = match resp {
                    ProxyResponse::Blocked(_) => "blocked",
                    ProxyResponse::Rows(_) => "rows",
                    ProxyResponse::Affected(_) => "affected",
                };
                log.push(format!("raww {verdict}"));
                assert_eq!(
                    verdict, "blocked",
                    "{}: raw write probe `{sql}` must be denied",
                    app.name
                );
            }
            TrafficOp::Request {
                slot,
                request,
                kind,
            } => {
                let id = sessions[slot].expect("live session");
                let handler = parsed.handler(&request.handler).expect("handler exists");
                let mut port = ProxyPort {
                    proxy: &proxy,
                    session: id,
                };
                let result = run_handler(
                    &mut port,
                    handler,
                    &request.session,
                    &request.params,
                    Limits::default(),
                )
                .unwrap_or_else(|e| panic!("{}::{}: {e}", app.name, request.handler));
                // The ground-truth policy admits the app: no handler
                // request — authorized or probe — may be proxy-blocked.
                assert!(
                    !matches!(result.outcome, Outcome::Blocked { .. }),
                    "{}::{} blocked under its own ground-truth policy ({kind:?})",
                    app.name,
                    request.handler
                );
                log.push(format!("{}:{:?}", request.handler, result.outcome));
            }
        }
    }
    log
}

/// The differential gate: two same-seed enforcement runs make identical
/// decisions, and the stream mixes all three outcome classes.
#[test]
fn enforcement_decisions_are_identical_across_same_seed_runs() {
    for app in small_fleet() {
        let a = enforcement_run(&app, 1234, 600);
        let b = enforcement_run(&app, 1234, 600);
        assert_eq!(a, b, "{}: same seed, same decisions", app.name);

        let oks = a.iter().filter(|l| l.contains("Ok")).count();
        let denials = a.iter().filter(|l| l.contains("Http")).count();
        let blocks = a.iter().filter(|l| l.contains("raw blocked")).count();
        let write_blocks = a.iter().filter(|l| l.contains("raww blocked")).count();
        assert!(oks > 0, "{}: some requests succeed", app.name);
        assert!(denials > 0, "{}: some probes are refused", app.name);
        assert!(blocks > 0, "{}: some raw probes are blocked", app.name);
        assert!(
            write_blocks > 0,
            "{}: some raw write probes are blocked",
            app.name
        );
    }
}

/// A blocked raw probe feeds straight into diagnosis: the report comes
/// back with at least one proposed patch.
#[test]
fn blocked_probes_are_diagnosable() {
    for app in small_fleet() {
        let mut db = app.empty_db();
        app.populate(&mut db).expect("populate");
        let schema = app.schema();
        let policy = app.policy().expect("policy");
        let checker = ComplianceChecker::new(schema.clone(), policy.clone());
        let proxy = SqlProxy::new(db, checker, ProxyConfig::default());

        let mut engine = TrafficEngine::new(&app, traffic_cfg(), 77);
        let (uid, sql) = loop {
            match engine.next_op() {
                TrafficOp::RawProbe { slot: _, sql } => {
                    // Attribute the probe to principal 0 for simplicity —
                    // any session works, the query targets someone else.
                    break (bep_scenario::uid(0), sql);
                }
                _ => continue,
            }
        };
        let bindings = vec![("MyUId".to_string(), sqlir::Value::Int(uid))];
        let session = proxy.begin_session(bindings.clone());
        let resp = proxy.execute(session, &sql, &[]).expect("probe executes");
        assert!(
            matches!(resp, ProxyResponse::Blocked(_)),
            "{}: `{sql}` should be blocked",
            app.name
        );

        let parsed = sqlir::parse_query(&sql).expect("probe parses");
        let cq = qlogic::sql_to_ucq(&schema, &parsed)
            .expect("fragment")
            .disjuncts
            .remove(0)
            .instantiate(&bindings);
        let views = policy.instantiate(&bindings).expect("instantiate");
        let report = diagnose(&DiagnosisInput {
            query: &cq,
            views: &views,
            trace_facts: &[],
            schema: &schema,
            extracted: None,
        })
        .unwrap_or_else(|e| panic!("{}: diagnosis failed: {e}", app.name));
        // A probe with no policy overlap legitimately yields no patch; the
        // separating counterexample (§5.1) is the diagnosis then.
        assert!(
            report.counterexample.is_some() || !report.patches.is_empty(),
            "{}: diagnosis produced neither counterexample nor patch",
            app.name
        );
    }
}

/// The paper's flagship diagnosis case on a generated app: an *ungated*
/// fetch of an author's posts is blocked, and diagnosis abduces exactly
/// the missing follow-edge access check.
#[test]
fn ungated_fetch_gets_an_access_check_patch() {
    let app = small_fleet().remove(0); // social
    let mut db = app.empty_db();
    app.populate(&mut db).expect("populate");
    let schema = app.schema();
    let policy = app.policy().expect("policy");
    let checker = ComplianceChecker::new(schema.clone(), policy.clone());
    let proxy = SqlProxy::new(db, checker, ProxyConfig::default());

    let me = bep_scenario::uid(0);
    let bindings = vec![("MyUId".to_string(), sqlir::Value::Int(me))];
    let session = proxy.begin_session(bindings.clone());

    // Find an author user 0 does not follow: the ungated fetch is blocked.
    let (target, sql) = (1..app.users)
        .find_map(|j| {
            let sql = format!(
                "SELECT PId, Title, Body FROM Posts WHERE AuthorId = {}",
                bep_scenario::uid(j)
            );
            match proxy.execute(session, &sql, &[]) {
                Ok(ProxyResponse::Blocked(_)) => Some((bep_scenario::uid(j), sql)),
                _ => None,
            }
        })
        .expect("some author is unfollowed");

    let parsed = sqlir::parse_query(&sql).expect("parses");
    let cq = qlogic::sql_to_ucq(&schema, &parsed)
        .expect("fragment")
        .disjuncts
        .remove(0)
        .instantiate(&bindings);
    let views = policy.instantiate(&bindings).expect("instantiate");
    let report = diagnose(&DiagnosisInput {
        query: &cq,
        views: &views,
        trace_facts: &[],
        schema: &schema,
        extracted: None,
    })
    .expect("diagnosis runs");

    let check = report
        .patches
        .iter()
        .find_map(|p| match p {
            bep_diagnose::Patch::AccessCheck(ac) => Some(ac),
            _ => None,
        })
        .expect("an access-check patch is proposed");
    assert_eq!(
        check.fact.relation.as_str(),
        "Follows",
        "abduced fact: {:?}",
        check.fact
    );
    let fact = check.fact.clone();
    assert!(
        qlogic::equivalent_rewriting(&cq, &views, std::slice::from_ref(&fact)).is_some(),
        "applying the abduced check ({target}) unblocks the fetch"
    );
}
