//! The generated-application fleet.
//!
//! [`fleet`] instantiates one application per schema family — social
//! graph, storefront, conference review — each parameterized by a user
//! count and fully determined by a `u64` seed. A [`GeneratedApp`]
//! implements [`appsim::AppSpec`], so the extraction, enforcement, and
//! diagnosis pipelines consume it exactly like the hand-written apps.

use crate::rng::{derive, SplitMix64};
use crate::{review, social, store};
use appdsl::Request;
use appsim::{AppSpec, BatchSink, FIRST_UID};
use minidb::{Database, DbError};

/// The three schema families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Follower graph with block lists (social network ACLs).
    Social,
    /// Storefront with per-merchant order visibility.
    Store,
    /// Conference review with conflict-of-interest gating.
    Review,
}

impl Family {
    /// All families, in fleet order.
    pub const ALL: [Family; 3] = [Family::Social, Family::Store, Family::Review];

    /// The family's short name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Social => "social",
            Family::Store => "store",
            Family::Review => "review",
        }
    }
}

/// The user id for user index `i` (shared base with the hand-written
/// apps' data generators).
pub fn uid(i: u64) -> i64 {
    FIRST_UID + i as i64
}

/// First id handed out for rows created by traffic-time writes; far above
/// any seeded id so the two ranges can never collide.
pub const FRESH_ID_BASE: i64 = 1_000_000_000_000;

/// One generated application: schema, handler source, ground-truth
/// policy, and a deterministic population/traffic recipe.
#[derive(Debug, Clone)]
pub struct GeneratedApp {
    /// Which schema family this instance belongs to.
    pub family: Family,
    /// Application name (the family name).
    pub name: String,
    /// The family-local seed every derivation hangs off.
    pub seed: u64,
    /// Number of users the population pass seeds.
    pub users: u64,
}

impl GeneratedApp {
    /// A single generated application.
    pub fn new(family: Family, seed: u64, users: u64) -> GeneratedApp {
        assert!(users >= 2, "a fleet app needs at least two users");
        GeneratedApp {
            family,
            name: family.name().to_string(),
            seed,
            users,
        }
    }

    /// Streams the seeded population into `db` (which must already carry
    /// the schema); returns the number of rows inserted. Peak memory is
    /// bounded by one insert batch, not the population size.
    pub fn populate(&self, db: &mut Database) -> Result<usize, DbError> {
        let mut sink = BatchSink::new(db);
        match self.family {
            Family::Social => social::populate(&mut sink, self.seed, self.users)?,
            Family::Store => store::populate(&mut sink, self.seed, self.users)?,
            Family::Review => review::populate(&mut sink, self.seed, self.users)?,
        }
        sink.flush()?;
        Ok(sink.total())
    }

    /// Number of request templates (for the traffic engine's template
    /// popularity distribution).
    pub fn template_count(&self) -> usize {
        match self.family {
            Family::Social => social::TEMPLATES,
            Family::Store => store::TEMPLATES,
            Family::Review => review::TEMPLATES,
        }
    }

    /// An authorized request for user index `i` under `template`
    /// (0-based; ordered hottest-first). `fresh` allocates ids for
    /// traffic-time writes.
    pub fn authorized_request(
        &self,
        i: u64,
        template: usize,
        rng: &mut SplitMix64,
        fresh: &mut i64,
    ) -> Request {
        match self.family {
            Family::Social => social::authorized(self.seed, self.users, i, template, rng, fresh),
            Family::Store => store::authorized(self.seed, self.users, i, template, rng, fresh),
            Family::Review => review::authorized(self.seed, self.users, i, template, rng, fresh),
        }
    }

    /// A handler-level probe: a request the application itself should
    /// refuse (403/404) for this user.
    pub fn probe_request(&self, i: u64, rng: &mut SplitMix64) -> Request {
        match self.family {
            Family::Social => social::probe(self.seed, self.users, i, rng),
            Family::Store => store::probe(self.seed, self.users, i, rng),
            Family::Review => review::probe(self.seed, self.users, i, rng),
        }
    }

    /// A raw SQL probe bypassing the handlers: a query no policy view
    /// covers, which the proxy must block.
    pub fn raw_probe(&self, i: u64, rng: &mut SplitMix64) -> String {
        match self.family {
            Family::Social => social::raw_probe(self.users, i, rng),
            Family::Store => store::raw_probe(self.users, i, rng),
            Family::Review => review::raw_probe(self.users, i, rng),
        }
    }

    /// A raw SQL *mutation* bypassing the handlers: a write whose rows no
    /// policy view covers for this session, which the proxy must block
    /// when write enforcement is on.
    pub fn raw_write_probe(&self, i: u64, rng: &mut SplitMix64, fresh: &mut i64) -> String {
        match self.family {
            Family::Social => social::raw_write_probe(self.seed, self.users, i, rng, fresh),
            Family::Store => store::raw_write_probe(self.seed, self.users, i, rng, fresh),
            Family::Review => review::raw_write_probe(self.seed, self.users, i, rng, fresh),
        }
    }
}

impl AppSpec for GeneratedApp {
    fn name(&self) -> &str {
        &self.name
    }

    fn ddl(&self) -> Vec<String> {
        match self.family {
            Family::Social => social::ddl(),
            Family::Store => store::ddl(),
            Family::Review => review::ddl(),
        }
    }

    fn source(&self) -> &str {
        match self.family {
            Family::Social => social::SOURCE,
            Family::Store => store::SOURCE,
            Family::Review => review::SOURCE,
        }
    }

    fn ground_truth(&self) -> Vec<(String, String)> {
        match self.family {
            Family::Social => social::ground_truth(),
            Family::Store => store::ground_truth(),
            Family::Review => review::ground_truth(),
        }
    }

    fn session_params(&self) -> Vec<String> {
        vec!["MyUId".to_string()]
    }
}

/// The full fleet: one app per family, with family-local seeds derived
/// from the fleet seed so the families' populations are independent.
pub fn fleet(seed: u64, users: u64) -> Vec<GeneratedApp> {
    Family::ALL
        .iter()
        .enumerate()
        .map(|(idx, &family)| GeneratedApp::new(family, derive(seed, idx as u64), users))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fleet_has_one_app_per_family() {
        let apps = fleet(7, 8);
        let names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["social", "store", "review"]);
        // Family seeds differ, so populations are independent.
        assert_ne!(apps[0].seed, apps[1].seed);
        assert_ne!(apps[1].seed, apps[2].seed);
    }

    #[test]
    fn population_is_deterministic_and_streams() {
        for app in fleet(42, 16) {
            let mut a = app.empty_db();
            let mut b = app.empty_db();
            let ra = app.populate(&mut a).expect("populate");
            let rb = app.populate(&mut b).expect("populate");
            assert_eq!(ra, rb, "{}", app.name);
            assert!(ra > 16, "{}: at least one row per user, got {ra}", app.name);
            for table in a.table_names() {
                assert_eq!(
                    a.table(&table).unwrap().len(),
                    b.table(&table).unwrap().len(),
                    "{}.{table}",
                    app.name
                );
            }
        }
    }

    #[test]
    fn sampled_requests_are_deterministic() {
        let app = &fleet(3, 32)[0];
        let sample = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            let mut fresh = FRESH_ID_BASE;
            (0..50)
                .map(|k| {
                    let i = rng.gen_range(0..app.users);
                    let t = k % app.template_count();
                    app.authorized_request(i, t, &mut rng, &mut fresh)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(9), sample(9));
    }
}
