//! The traffic engine: Zipf-skewed principals and templates, churning
//! session lifecycles, and a mixed authorized/probe request stream.
//!
//! The engine emits an *operation stream* — session begins, requests, raw
//! SQL probes, session ends — that a driver (the `t13_scale` bench, a
//! test) maps onto proxy or server sessions. The stream is a pure
//! function of `(app, config, seed)`: two engines built with identical
//! inputs yield identical op sequences, which is what the differential
//! gates rely on.
//!
//! Session churn is geometric: each session's request budget is drawn
//! with mean [`TrafficConfig::mean_session_len`], so session lifetimes
//! have half-life `mean · ln 2` and the live set continuously turns over.

use crate::fleet::{GeneratedApp, FRESH_ID_BASE};
use crate::rng::SplitMix64;
use crate::zipf::Zipf;
use appdsl::Request;
use rand::Rng;

/// Traffic engine knobs.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Sessions kept live concurrently.
    pub target_sessions: usize,
    /// Mean requests per session (geometric; half-life = mean · ln 2).
    pub mean_session_len: f64,
    /// Fraction of requests that are handler-level probes (expected
    /// 403/404).
    pub probe_fraction: f64,
    /// Fraction of requests that are raw SQL probes (expected proxy
    /// blocks).
    pub raw_probe_fraction: f64,
    /// Fraction of requests that are raw SQL *write* probes (mutations
    /// targeting another principal's rows; with write enforcement on the
    /// proxy must block every one). Defaults to 0 so existing replayed
    /// workloads keep a byte-identical op stream.
    pub write_probe_fraction: f64,
    /// Principal popularity skew in quarter-exponents (4 = Zipf θ 1).
    pub principal_quarters: u32,
    /// Template popularity skew in quarter-exponents.
    pub template_quarters: u32,
}

impl Default for TrafficConfig {
    fn default() -> TrafficConfig {
        TrafficConfig {
            target_sessions: 64,
            mean_session_len: 20.0,
            probe_fraction: 0.15,
            raw_probe_fraction: 0.05,
            write_probe_fraction: 0.0,
            principal_quarters: 4,
            template_quarters: 3,
        }
    }
}

/// What kind of request a [`TrafficOp::Request`] is, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Expected to succeed (sampled from the principal's own data).
    Authorized,
    /// Expected to be refused by the application (403/404).
    Probe,
}

/// One step of the traffic stream.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficOp {
    /// Open a session for `uid` in `slot`.
    Begin {
        /// Slot index (stable handle for the driver's session map).
        slot: usize,
        /// The principal's user id.
        uid: i64,
        /// The principal's user index (for derivation).
        user_index: u64,
    },
    /// Run a handler request on the session in `slot`.
    Request {
        /// Slot index.
        slot: usize,
        /// The request to run.
        request: Request,
        /// Authorized or probe, for accounting.
        kind: RequestKind,
    },
    /// Issue a raw SQL query (bypassing handlers) on the session in
    /// `slot`; the proxy is expected to block it.
    RawProbe {
        /// Slot index.
        slot: usize,
        /// The SQL text.
        sql: String,
    },
    /// Issue a raw SQL mutation (bypassing handlers) on the session in
    /// `slot`, targeting another principal's rows; with write enforcement
    /// on the proxy is expected to block it.
    RawWriteProbe {
        /// Slot index.
        slot: usize,
        /// The SQL text.
        sql: String,
    },
    /// Close the session in `slot`.
    End {
        /// Slot index.
        slot: usize,
    },
}

struct LiveSession {
    user_index: u64,
    remaining: u64,
}

/// The deterministic op-stream generator for one generated app.
pub struct TrafficEngine<'a> {
    app: &'a GeneratedApp,
    cfg: TrafficConfig,
    rng: SplitMix64,
    principals: Zipf,
    templates: Zipf,
    slots: Vec<Option<LiveSession>>,
    live: usize,
    fresh: i64,
    begun: u64,
}

impl<'a> TrafficEngine<'a> {
    /// A new engine; the op stream is fully determined by the arguments.
    pub fn new(app: &'a GeneratedApp, cfg: TrafficConfig, seed: u64) -> TrafficEngine<'a> {
        assert!(cfg.target_sessions >= 1, "need at least one session");
        assert!(cfg.mean_session_len >= 1.0, "sessions must serve a request");
        let principals = Zipf::new(app.users, cfg.principal_quarters);
        let templates = Zipf::new(app.template_count() as u64, cfg.template_quarters);
        let slots = (0..cfg.target_sessions).map(|_| None).collect();
        TrafficEngine {
            app,
            cfg,
            rng: SplitMix64::new(seed),
            principals,
            templates,
            slots,
            live: 0,
            fresh: FRESH_ID_BASE,
            begun: 0,
        }
    }

    /// Rebases traffic-time fresh ids. A multi-worker driver gives each
    /// worker's engine a disjoint base (e.g. `FRESH_ID_BASE + w · 10^9`)
    /// so concurrent engines never mint the same id.
    pub fn with_fresh_base(mut self, base: i64) -> TrafficEngine<'a> {
        assert!(
            base >= FRESH_ID_BASE,
            "fresh ids must stay above the seeded range"
        );
        self.fresh = base;
        self
    }

    /// Number of currently live sessions.
    pub fn live_sessions(&self) -> usize {
        self.live
    }

    /// Total sessions begun so far.
    pub fn sessions_begun(&self) -> u64 {
        self.begun
    }

    /// Geometric session length with the configured mean (at least 1,
    /// capped at 64× the mean so one draw cannot stall churn).
    fn draw_session_len(&mut self) -> u64 {
        let p_continue = 1.0 - 1.0 / self.cfg.mean_session_len;
        let cap = (self.cfg.mean_session_len * 64.0) as u64;
        let mut len = 1u64;
        while len < cap.max(2) && self.rng.gen_bool(p_continue) {
            len += 1;
        }
        len
    }

    /// The next operation in the stream.
    pub fn next_op(&mut self) -> TrafficOp {
        // Refill the live set before serving requests: churn keeps the
        // session population at the target.
        if self.live < self.slots.len() {
            let slot = self
                .slots
                .iter()
                .position(Option::is_none)
                .expect("live < slots implies a free slot");
            let rank = self.principals.sample(&mut self.rng);
            let user_index = rank - 1;
            let remaining = self.draw_session_len();
            self.slots[slot] = Some(LiveSession {
                user_index,
                remaining,
            });
            self.live += 1;
            self.begun += 1;
            return TrafficOp::Begin {
                slot,
                uid: crate::fleet::uid(user_index),
                user_index,
            };
        }

        let slot = self.rng.gen_range(0..self.slots.len());
        let session = self.slots[slot].as_mut().expect("all slots live");
        if session.remaining == 0 {
            self.slots[slot] = None;
            self.live -= 1;
            return TrafficOp::End { slot };
        }
        session.remaining -= 1;
        let i = session.user_index;

        // The `> 0.0` guard keeps the rng stream byte-identical to engines
        // built before write probes existed when the fraction is 0 (the
        // default): replayed workloads and differential gates depend on it.
        if self.cfg.write_probe_fraction > 0.0 && self.rng.gen_bool(self.cfg.write_probe_fraction) {
            let sql = self.app.raw_write_probe(i, &mut self.rng, &mut self.fresh);
            return TrafficOp::RawWriteProbe { slot, sql };
        }
        if self.rng.gen_bool(self.cfg.raw_probe_fraction) {
            let sql = self.app.raw_probe(i, &mut self.rng);
            return TrafficOp::RawProbe { slot, sql };
        }
        if self.rng.gen_bool(self.cfg.probe_fraction) {
            let request = self.app.probe_request(i, &mut self.rng);
            return TrafficOp::Request {
                slot,
                request,
                kind: RequestKind::Probe,
            };
        }
        let template = (self.templates.sample(&mut self.rng) - 1) as usize;
        let request = self
            .app
            .authorized_request(i, template, &mut self.rng, &mut self.fresh);
        TrafficOp::Request {
            slot,
            request,
            kind: RequestKind::Authorized,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::fleet;

    #[test]
    fn op_stream_is_deterministic() {
        let app = &fleet(5, 64)[0];
        let run = || {
            let mut eng = TrafficEngine::new(app, TrafficConfig::default(), 17);
            (0..2000).map(|_| eng.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sessions_churn_and_stay_at_target() {
        let app = &fleet(5, 64)[1];
        let cfg = TrafficConfig {
            target_sessions: 8,
            mean_session_len: 5.0,
            ..TrafficConfig::default()
        };
        let mut eng = TrafficEngine::new(app, cfg, 3);
        let mut ends = 0;
        for _ in 0..2000 {
            if let TrafficOp::End { .. } = eng.next_op() {
                ends += 1;
            }
            assert!(eng.live_sessions() <= 8);
        }
        assert!(ends > 100, "sessions churn: {ends} ended");
        assert!(eng.sessions_begun() > ends as u64);
    }

    #[test]
    fn stream_mixes_authorized_probe_and_raw() {
        for app in &fleet(11, 32) {
            let mut eng = TrafficEngine::new(app, TrafficConfig::default(), 29);
            let (mut auth, mut probe, mut raw) = (0, 0, 0);
            for _ in 0..3000 {
                match eng.next_op() {
                    TrafficOp::Request {
                        kind: RequestKind::Authorized,
                        ..
                    } => auth += 1,
                    TrafficOp::Request {
                        kind: RequestKind::Probe,
                        ..
                    } => probe += 1,
                    TrafficOp::RawProbe { .. } => raw += 1,
                    _ => {}
                }
            }
            assert!(auth > 1000, "{}: {auth}", app.name);
            assert!(probe > 100, "{}: {probe}", app.name);
            assert!(raw > 30, "{}: {raw}", app.name);
        }
    }

    #[test]
    fn zero_write_fraction_keeps_the_stream_byte_identical() {
        // Turning the knob to exactly 0.0 must not consume any rng draws:
        // the op stream matches a config that predates write probes.
        let app = &fleet(5, 64)[2];
        let run = |cfg: TrafficConfig| {
            let mut eng = TrafficEngine::new(app, cfg, 41);
            (0..2000).map(|_| eng.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(
            run(TrafficConfig::default()),
            run(TrafficConfig {
                write_probe_fraction: 0.0,
                ..TrafficConfig::default()
            })
        );
    }

    #[test]
    fn write_probes_mix_in_when_enabled() {
        for app in &fleet(11, 32) {
            let cfg = TrafficConfig {
                write_probe_fraction: 0.10,
                ..TrafficConfig::default()
            };
            let mut eng = TrafficEngine::new(app, cfg, 29);
            let mut writes = 0;
            for _ in 0..3000 {
                if let TrafficOp::RawWriteProbe { sql, .. } = eng.next_op() {
                    writes += 1;
                    assert!(
                        sql.starts_with("INSERT")
                            || sql.starts_with("UPDATE")
                            || sql.starts_with("DELETE"),
                        "{}: {sql}",
                        app.name
                    );
                }
            }
            assert!(writes > 100, "{}: {writes} write probes", app.name);
        }
    }

    #[test]
    fn principals_are_zipf_skewed() {
        let app = &fleet(5, 1000)[0];
        let mut eng = TrafficEngine::new(app, TrafficConfig::default(), 7);
        let mut head = 0u64;
        let mut total = 0u64;
        for _ in 0..20_000 {
            if let TrafficOp::Begin { user_index, .. } = eng.next_op() {
                total += 1;
                if user_index < 10 {
                    head += 1;
                }
            }
        }
        assert!(total > 500, "enough sessions began: {total}");
        // Under Zipf θ=1 over 1000 ranks, the top 10 carry ~39% of mass;
        // uniform would give 1%.
        assert!(
            head * 5 > total,
            "top-10 principals got {head}/{total} sessions"
        );
    }
}
