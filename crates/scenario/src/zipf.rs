//! A deterministic Zipf(θ) sampler over ranks `1..=n`.
//!
//! Rank `r` is drawn with probability proportional to `r^-θ`. To keep the
//! sampler bit-identical across platforms, θ is restricted to quarter
//! steps (`θ = quarters/4`): `r^θ` is then computable from `sqrt` (IEEE
//! correctly rounded) and plain multiplication — no `powf`, no libm.
//!
//! Sampling uses power-of-two rank buckets: a cumulative bucket-mass table
//! picks the bucket (binary search on one uniform draw), then rejection
//! against the bucket's maximum weight picks the rank within it. Within a
//! bucket the weight ratio is at least `2^-θ`, so for the θ ≤ 2 range used
//! here the expected number of rejection rounds is below 4.

use crate::rng::unit_f64;
use rand::Rng;

/// `x^k` by binary exponentiation over plain `f64` multiplies.
///
/// Deliberately not `f64::powi`: the intrinsic's lowering is
/// target-dependent, while this sequence of multiplications is not.
fn pow_u32(x: f64, mut k: u32) -> f64 {
    let mut base = x;
    let mut acc = 1.0;
    while k > 0 {
        if k & 1 == 1 {
            acc *= base;
        }
        base *= base;
        k >>= 1;
    }
    acc
}

/// `x^(quarters/4)` for `x > 0`, from two square roots and multiplies.
fn pow_quarter(x: f64, quarters: u32) -> f64 {
    pow_u32(x.sqrt().sqrt(), quarters)
}

/// A Zipf sampler. Construction is `O(n)`; sampling is `O(log n)` plus a
/// constant expected number of rejection rounds.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    quarters: u32,
    /// Rank lower bound of each bucket (`1, 2, 4, 8, …`).
    bucket_lo: Vec<u64>,
    /// Cumulative mass through the end of each bucket.
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over ranks `1..=n` with exponent `θ = quarters/4`.
    ///
    /// `quarters = 0` is the uniform distribution; `quarters = 4` is the
    /// classic Zipf θ = 1.
    pub fn new(n: u64, quarters: u32) -> Zipf {
        assert!(n >= 1, "Zipf needs at least one rank");
        assert!(quarters <= 8, "θ above 2 is not supported");
        let mut bucket_lo = Vec::new();
        let mut cdf = Vec::new();
        let mut acc = 0.0f64;
        let mut lo = 1u64;
        while lo <= n {
            let hi = (lo * 2 - 1).min(n);
            // Exact bucket mass: a fixed-order summation is deterministic.
            for r in lo..=hi {
                acc += 1.0 / pow_quarter(r as f64, quarters);
            }
            bucket_lo.push(lo);
            cdf.push(acc);
            lo = lo.saturating_mul(2).max(lo + 1);
        }
        Zipf {
            n,
            quarters,
            bucket_lo,
            cdf,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        let total = *self.cdf.last().expect("at least one bucket");
        let u = unit_f64(rng) * total;
        let b = self
            .cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1);
        let lo = self.bucket_lo[b];
        let hi = (lo * 2 - 1).min(self.n);
        let w_max = 1.0 / pow_quarter(lo as f64, self.quarters);
        loop {
            let r = rng.gen_range(lo..=hi);
            let w = 1.0 / pow_quarter(r as f64, self.quarters);
            if unit_f64(rng) * w_max <= w {
                return r;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(1000, 4);
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let r = z.sample(&mut rng);
            assert!((1..=1000).contains(&r), "{r}");
        }
    }

    #[test]
    fn single_rank_always_returns_one() {
        let z = Zipf::new(1, 4);
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    /// Statistical sanity: for θ = 1 over 1000 ranks, rank 1 carries
    /// `1/H(1000) ≈ 13.4%` of the mass and the head dominates the tail.
    #[test]
    fn zipf_head_dominates_as_predicted() {
        let n = 1000u64;
        let z = Zipf::new(n, 4);
        let mut rng = SplitMix64::new(7);
        let draws = 200_000usize;
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let harmonic: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
        let p1 = counts[1] as f64 / draws as f64;
        let expected = 1.0 / harmonic;
        assert!(
            (p1 - expected).abs() < 0.02,
            "rank-1 frequency {p1:.4}, expected {expected:.4}"
        );
        let head: u64 = counts[1..=16].iter().sum();
        let tail: u64 = counts[512..].iter().sum();
        assert!(
            head > 2 * tail,
            "head(16 ranks) {head} should dwarf tail(489 ranks) {tail}"
        );
    }

    #[test]
    fn uniform_exponent_is_flat() {
        let z = Zipf::new(8, 0);
        let mut rng = SplitMix64::new(11);
        let mut counts = [0u64; 9];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for (r, &count) in counts.iter().enumerate().skip(1) {
            assert!(
                (count as i64 - 10_000).unsigned_abs() < 1_000,
                "rank {r}: {count}"
            );
        }
    }

    /// Cross-platform determinism: the exact sample sequence for a fixed
    /// seed is pinned. These values must never change on any target — the
    /// sampler uses only integer ops, `sqrt`, and multiplication, all of
    /// which are IEEE-exact.
    #[test]
    fn sample_sequence_is_pinned() {
        let z = Zipf::new(1000, 4);
        let mut rng = SplitMix64::new(42);
        let got: Vec<u64> = (0..8).map(|_| z.sample(&mut rng)).collect();
        let again: Vec<u64> = {
            let mut rng = SplitMix64::new(42);
            (0..8).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(got, again, "same seed, same stream");
        assert_eq!(got, GOLDEN, "pinned cross-platform sequence");
    }

    /// Golden first-8 samples for `Zipf::new(1000, 4)` under seed 42.
    const GOLDEN: [u64; 8] = [131, 5, 2, 28, 1, 1, 717, 48];
}
