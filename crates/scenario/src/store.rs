//! The storefront family: per-merchant visibility (a Spree-style shop).
//!
//! Customers see active products and their own orders; merchant staff
//! additionally see every order placed against their merchant's products.
//! Inactive products are hidden from the storefront — another negation the
//! policy over-approximates (`ActiveProducts` is keyed on `Active = TRUE`,
//! so a probe for a hidden product is simply not covered).

use crate::fleet::uid;
use crate::rng::{substream, SplitMix64};
use appdsl::Request;
use appsim::BatchSink;
use minidb::DbError;
use rand::Rng;
use sqlir::Value;

const TAG_STAFF: u64 = 11;
const TAG_PROD: u64 = 12;
const TAG_ORDER: u64 = 13;

pub(crate) const TEMPLATES: usize = 5;

pub(crate) fn ddl() -> Vec<String> {
    vec![
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)".into(),
        "CREATE TABLE Merchants (MId INT PRIMARY KEY, Name TEXT NOT NULL)".into(),
        "CREATE TABLE Staff (UId INT NOT NULL, MId INT NOT NULL, \
         PRIMARY KEY (UId, MId), \
         FOREIGN KEY (UId) REFERENCES Users (UId), \
         FOREIGN KEY (MId) REFERENCES Merchants (MId))"
            .into(),
        "CREATE TABLE Products (PId INT PRIMARY KEY, MId INT NOT NULL, \
         Title TEXT NOT NULL, Price INT NOT NULL, Active BOOL NOT NULL, \
         FOREIGN KEY (MId) REFERENCES Merchants (MId))"
            .into(),
        "CREATE TABLE Orders (OId INT PRIMARY KEY, UId INT NOT NULL, \
         PId INT NOT NULL, Qty INT NOT NULL, \
         FOREIGN KEY (UId) REFERENCES Users (UId), \
         FOREIGN KEY (PId) REFERENCES Products (PId))"
            .into(),
    ]
}

pub(crate) const SOURCE: &str = r#"
    handler storefront(merchant_id) {
        emit sql("SELECT PId, Title, Price FROM Products
                  WHERE MId = ?merchant_id AND Active = TRUE");
    }

    handler product(product_id) {
        let p = sql("SELECT Title, Price FROM Products
                     WHERE PId = ?product_id AND Active = TRUE");
        if p.is_empty() {
            abort(404);
        }
        emit p;
    }

    handler my_orders() {
        emit sql("SELECT OId, PId, Qty FROM Orders WHERE UId = ?MyUId");
    }

    handler store_orders() {
        let s = sql("SELECT MId FROM Staff WHERE UId = ?MyUId");
        if s.is_empty() {
            abort(403);
        }
        let mid = s.MId;
        emit sql("SELECT o.OId, o.PId, o.Qty FROM Orders o
                  JOIN Products p ON o.PId = p.PId WHERE p.MId = ?mid");
    }

    handler place_order(order_id, product_id, qty) {
        let p = sql("SELECT 1 FROM Products
                     WHERE PId = ?product_id AND Active = TRUE");
        if p.is_empty() {
            abort(404);
        }
        run sql("INSERT INTO Orders (OId, UId, PId, Qty)
                 VALUES (?order_id, ?MyUId, ?product_id, ?qty)");
    }
"#;

pub(crate) fn ground_truth() -> Vec<(String, String)> {
    [
        (
            "ActiveProducts",
            "SELECT PId, MId, Title, Price FROM Products WHERE Active = TRUE",
        ),
        (
            "MyOrders",
            "SELECT OId, UId, PId, Qty FROM Orders WHERE UId = ?MyUId",
        ),
        ("MyStaff", "SELECT UId, MId FROM Staff WHERE UId = ?MyUId"),
        (
            "MyStoreOrders",
            // `p.MId` must be in the head: the order-book handler selects on
            // it, and a selection is only expressible over a view that
            // projects the column (the Staff atom itself is discharged by
            // the trace fact from the handler's staff-check query).
            "SELECT o.OId, o.UId, o.PId, o.Qty, p.MId FROM Orders o \
             JOIN Products p ON o.PId = p.PId \
             JOIN Staff s ON p.MId = s.MId WHERE s.UId = ?MyUId",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s.to_string()))
    .collect()
}

/// Number of merchants for a fleet of `users`.
pub(crate) fn merchant_count(users: u64) -> u64 {
    (users / 32).max(2)
}

fn mid(j: u64) -> i64 {
    1 + j as i64
}

/// The merchant user `i` staffs, if any (about one user in ten).
pub(crate) fn staff_of(seed: u64, i: u64, m: u64) -> Option<u64> {
    let mut rng = substream(seed, &[TAG_STAFF, i]);
    if rng.gen_bool(0.1) {
        Some(rng.gen_range(0..m))
    } else {
        None
    }
}

/// Merchant `j`'s products as `(pid, price, active)` — pure in `(seed, j)`.
pub(crate) fn products(seed: u64, j: u64) -> Vec<(i64, i64, bool)> {
    let mut rng = substream(seed, &[TAG_PROD, j]);
    let np = 4 + rng.gen_range(0..8u64);
    (0..np)
        .map(|k| {
            let price = rng.gen_range(100i64..10_000);
            let active = rng.gen_bool(0.8);
            (mid(j) * 64 + k as i64, price, active)
        })
        .collect()
}

/// User `i`'s seeded orders as `(oid, pid, qty)`.
pub(crate) fn orders_of(seed: u64, i: u64, m: u64) -> Vec<(i64, i64, i64)> {
    let mut rng = substream(seed, &[TAG_ORDER, i]);
    let n = rng.gen_range(0..3u64);
    (0..n)
        .map(|k| {
            let j = rng.gen_range(0..m);
            let prods = products(seed, j);
            let (pid, _, _) = prods[rng.gen_range(0..prods.len())];
            let qty = 1 + rng.gen_range(0..5i64);
            (uid(i) * 8 + k as i64, pid, qty)
        })
        .collect()
}

pub(crate) fn populate(sink: &mut BatchSink, seed: u64, users: u64) -> Result<(), DbError> {
    let m = merchant_count(users);
    for i in 0..users {
        sink.push(
            "Users",
            vec![Value::Int(uid(i)), Value::str(format!("user{i}"))],
        )?;
    }
    for j in 0..m {
        sink.push(
            "Merchants",
            vec![Value::Int(mid(j)), Value::str(format!("shop{j}"))],
        )?;
    }
    for i in 0..users {
        if let Some(j) = staff_of(seed, i, m) {
            sink.push("Staff", vec![Value::Int(uid(i)), Value::Int(mid(j))])?;
        }
    }
    for j in 0..m {
        for (pid, price, active) in products(seed, j) {
            sink.push(
                "Products",
                vec![
                    Value::Int(pid),
                    Value::Int(mid(j)),
                    Value::str(format!("item {pid}")),
                    Value::Int(price),
                    Value::Bool(active),
                ],
            )?;
        }
    }
    for i in 0..users {
        for (oid, pid, qty) in orders_of(seed, i, m) {
            sink.push(
                "Orders",
                vec![
                    Value::Int(oid),
                    Value::Int(uid(i)),
                    Value::Int(pid),
                    Value::Int(qty),
                ],
            )?;
        }
    }
    Ok(())
}

fn session(i: u64) -> Vec<(String, Value)> {
    vec![("MyUId".to_string(), Value::Int(uid(i)))]
}

/// A random active product of a random merchant, if one exists.
fn active_product(seed: u64, m: u64, rng: &mut SplitMix64) -> Option<i64> {
    for _ in 0..4 {
        let j = rng.gen_range(0..m);
        let active: Vec<i64> = products(seed, j)
            .into_iter()
            .filter(|&(_, _, a)| a)
            .map(|(pid, _, _)| pid)
            .collect();
        if !active.is_empty() {
            return Some(active[rng.gen_range(0..active.len())]);
        }
    }
    None
}

pub(crate) fn authorized(
    seed: u64,
    users: u64,
    i: u64,
    template: usize,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> Request {
    let m = merchant_count(users);
    match template {
        0 => Request {
            handler: "storefront".into(),
            session: session(i),
            params: vec![("merchant_id".into(), Value::Int(mid(rng.gen_range(0..m))))],
        },
        1 => match active_product(seed, m, rng) {
            Some(pid) => Request {
                handler: "product".into(),
                session: session(i),
                params: vec![("product_id".into(), Value::Int(pid))],
            },
            None => Request {
                handler: "my_orders".into(),
                session: session(i),
                params: vec![],
            },
        },
        2 => Request {
            handler: "my_orders".into(),
            session: session(i),
            params: vec![],
        },
        3 => {
            // Staff check their store's order book; everyone else falls
            // back to their own orders.
            let handler = match staff_of(seed, i, m) {
                Some(_) => "store_orders",
                None => "my_orders",
            };
            Request {
                handler: handler.into(),
                session: session(i),
                params: vec![],
            }
        }
        _ => match active_product(seed, m, rng) {
            Some(pid) => {
                *fresh += 1;
                Request {
                    handler: "place_order".into(),
                    session: session(i),
                    params: vec![
                        ("order_id".into(), Value::Int(*fresh)),
                        ("product_id".into(), Value::Int(pid)),
                        ("qty".into(), Value::Int(1 + rng.gen_range(0..3i64))),
                    ],
                }
            }
            None => Request {
                handler: "my_orders".into(),
                session: session(i),
                params: vec![],
            },
        },
    }
}

pub(crate) fn probe(seed: u64, users: u64, i: u64, rng: &mut SplitMix64) -> Request {
    let m = merchant_count(users);
    match staff_of(seed, i, m) {
        // Non-staff probing the order book: 403.
        None => Request {
            handler: "store_orders".into(),
            session: session(i),
            params: vec![],
        },
        // Staff probe a hidden (inactive or nonexistent) product: 404.
        Some(_) => {
            let j = rng.gen_range(0..m);
            let hidden = products(seed, j)
                .into_iter()
                .find(|&(_, _, a)| !a)
                .map(|(pid, _, _)| pid)
                .unwrap_or(-1);
            Request {
                handler: "product".into(),
                session: session(i),
                params: vec![("product_id".into(), Value::Int(hidden))],
            }
        }
    }
}

pub(crate) fn raw_probe(users: u64, i: u64, rng: &mut SplitMix64) -> String {
    // Another customer's order history is in no view: always denied.
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i {
            j = cand;
            break;
        }
    }
    format!("SELECT OId, PId, Qty FROM Orders WHERE UId = {}", uid(j))
}

pub(crate) fn raw_write_probe(
    _seed: u64,
    users: u64,
    i: u64,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> String {
    // Forge state for another customer: `MyOrders`/`MyStaff` pin UId to
    // the session, and `MyStoreOrders` needs a Products fact for the
    // order's PId — a fresh (nonexistent) product id keeps the insert
    // uncoverable even for staff sessions with storefront facts.
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i {
            j = cand;
            break;
        }
    }
    match rng.gen_range(0..3u64) {
        0 => {
            *fresh += 1;
            let oid = *fresh;
            *fresh += 1;
            format!(
                "INSERT INTO Orders (OId, UId, PId, Qty) VALUES ({}, {}, {}, 1)",
                oid,
                uid(j),
                *fresh
            )
        }
        1 => format!("UPDATE Orders SET Qty = 0 WHERE UId = {}", uid(j)),
        _ => format!("INSERT INTO Staff (UId, MId) VALUES ({}, 1)", uid(j)),
    }
}
