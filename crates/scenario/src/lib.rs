//! Scenario fleet: parameterized application generation and traffic
//! synthesis for scale experiments.
//!
//! The hand-written applications in `appsim` are small by design — their
//! job is to make the pipelines legible. This crate generates
//! *populations at scale*: three schema families (social graph with
//! follower/block ACLs, a storefront with per-merchant visibility, a
//! conference-review app with conflict-of-interest rules), each emitting
//! schema, handler source, a ground-truth policy, and a streaming seeded
//! population — plus a traffic engine producing Zipf-skewed, session-
//! churning, mixed authorized/probe request streams.
//!
//! Everything is a pure function of a `u64` seed ([`rng::SplitMix64`]
//! substreams): populations are re-derivable per user, so the traffic
//! engine samples authorized targets in `O(degree)` without materialized
//! graphs, and two same-seed runs are bit-identical — the property the
//! scale bench's differential gates check end to end.

#![warn(missing_docs)]

pub mod fleet;
pub mod review;
pub mod rng;
pub mod social;
pub mod store;
pub mod traffic;
pub mod zipf;

pub use fleet::{fleet, uid, Family, GeneratedApp, FRESH_ID_BASE};
pub use rng::{derive, substream, SplitMix64};
pub use traffic::{RequestKind, TrafficConfig, TrafficEngine, TrafficOp};
pub use zipf::Zipf;
