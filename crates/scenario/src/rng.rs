//! Deterministic random streams for scenario generation.
//!
//! Everything the fleet produces — populations, adjacency, traffic — is a
//! pure function of a `u64` seed. The generator is SplitMix64, chosen
//! because its state is a single counter: *substreams* can be derived by
//! hashing `(seed, tag, index)` without consuming draws from the parent,
//! so the population pass and the traffic engine can independently
//! re-derive, say, user 7's followee list without materializing any graph.

use rand::Rng;

/// The SplitMix64 increment (Weyl constant).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output mix (Stafford variant 13 finalizer).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A SplitMix64 generator.
///
/// Implements the workspace's [`rand::Rng`] trait, so it can drive the
/// same `gen_range`/`gen_bool` helpers the hand-written data generators
/// use. Integer-only state: identical output on every platform.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose output stream is a pure function of `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }
}

/// Derives a child seed from a parent seed and a tag, without touching any
/// generator state. `derive(derive(s, a), b)` gives nested namespaces.
pub fn derive(seed: u64, tag: u64) -> u64 {
    mix(seed ^ mix(tag ^ 0xE703_7ED1_A0B4_28DB))
}

/// A generator for the substream named by `tags` under `seed`.
///
/// Pure: calling this twice with the same arguments yields generators that
/// produce identical streams, regardless of what else has been sampled.
pub fn substream(seed: u64, tags: &[u64]) -> SplitMix64 {
    let mut s = seed;
    for &t in tags {
        s = derive(s, t);
    }
    SplitMix64::new(s)
}

/// A uniform draw from `[0, 1)` with 53 bits of precision (the same
/// construction as the `rand` stub's `gen_bool`, exposed for samplers that
/// need the raw unit variate).
pub fn unit_f64(rng: &mut impl Rng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors for SplitMix64 with seed 0 (Vigna's original
    /// implementation). Pins the stream across platforms and releases.
    #[test]
    fn splitmix64_matches_reference_vectors() {
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn substreams_are_pure_and_independent_of_consumption() {
        let mut a = substream(42, &[1, 7]);
        // Consuming from unrelated streams must not perturb the substream.
        let mut noise = substream(42, &[1, 8]);
        let _ = noise.next_u64();
        let mut b = substream(42, &[1, 7]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn substreams_with_different_tags_diverge() {
        let a = substream(42, &[1, 7]).next_u64();
        let b = substream(42, &[1, 8]).next_u64();
        let c = substream(42, &[2, 7]).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_f64_stays_in_range() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..10_000 {
            let u = unit_f64(&mut rng);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}
