//! The conference-review family: conflict-of-interest gating (HotCRP-style).
//!
//! Every user is a PC member. Reviews are readable PC-wide *except* for
//! papers where the reader is conflicted or an author — negations the
//! handler enforces against the positive `MyConflicts`/`MyAuthorships`
//! views while the policy over-approximates review visibility.

use crate::fleet::uid;
use crate::rng::{substream, SplitMix64};
use appdsl::Request;
use appsim::BatchSink;
use minidb::DbError;
use rand::Rng;
use sqlir::Value;

const TAG_AUTHOR: u64 = 21;
const TAG_CONFLICT: u64 = 22;
const TAG_REVIEW: u64 = 23;

pub(crate) const TEMPLATES: usize = 5;

pub(crate) fn ddl() -> Vec<String> {
    vec![
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)".into(),
        "CREATE TABLE Papers (PaperId INT PRIMARY KEY, Title TEXT NOT NULL, \
         Track INT NOT NULL)"
            .into(),
        "CREATE TABLE Authors (PaperId INT NOT NULL, UId INT NOT NULL, \
         PRIMARY KEY (PaperId, UId), \
         FOREIGN KEY (PaperId) REFERENCES Papers (PaperId), \
         FOREIGN KEY (UId) REFERENCES Users (UId))"
            .into(),
        "CREATE TABLE Conflicts (PaperId INT NOT NULL, UId INT NOT NULL, \
         PRIMARY KEY (PaperId, UId), \
         FOREIGN KEY (PaperId) REFERENCES Papers (PaperId), \
         FOREIGN KEY (UId) REFERENCES Users (UId))"
            .into(),
        "CREATE TABLE Reviews (RId INT PRIMARY KEY, PaperId INT NOT NULL, \
         UId INT NOT NULL, Score INT NOT NULL, Body TEXT NOT NULL, \
         FOREIGN KEY (PaperId) REFERENCES Papers (PaperId), \
         FOREIGN KEY (UId) REFERENCES Users (UId))"
            .into(),
    ]
}

pub(crate) const SOURCE: &str = r#"
    handler paper_list(track) {
        emit sql("SELECT PaperId, Title FROM Papers WHERE Track = ?track");
    }

    handler my_papers() {
        emit sql("SELECT p.PaperId, p.Title FROM Papers p
                  JOIN Authors a ON p.PaperId = a.PaperId WHERE a.UId = ?MyUId");
    }

    handler my_conflicts() {
        emit sql("SELECT PaperId FROM Conflicts WHERE UId = ?MyUId");
    }

    handler paper_reviews(paper_id) {
        let c = sql("SELECT 1 FROM Conflicts
                     WHERE PaperId = ?paper_id AND UId = ?MyUId");
        if !c.is_empty() {
            abort(403);
        }
        let a = sql("SELECT 1 FROM Authors
                     WHERE PaperId = ?paper_id AND UId = ?MyUId");
        if !a.is_empty() {
            abort(403);
        }
        emit sql("SELECT RId, Score, Body FROM Reviews WHERE PaperId = ?paper_id");
    }

    handler submit_review(review_id, paper_id, score, body) {
        let c = sql("SELECT 1 FROM Conflicts
                     WHERE PaperId = ?paper_id AND UId = ?MyUId");
        if !c.is_empty() {
            abort(403);
        }
        run sql("INSERT INTO Reviews (RId, PaperId, UId, Score, Body)
                 VALUES (?review_id, ?paper_id, ?MyUId, ?score, ?body)");
    }
"#;

pub(crate) fn ground_truth() -> Vec<(String, String)> {
    [
        // `Track` is in the head so the track-scoped listing is expressible
        // as a selection over the view (a column absent from the head cannot
        // be selected on in any rewriting).
        ("AllPapers", "SELECT PaperId, Title, Track FROM Papers"),
        (
            "MyAuthorships",
            "SELECT PaperId, UId FROM Authors WHERE UId = ?MyUId",
        ),
        (
            "MyConflicts",
            "SELECT PaperId, UId FROM Conflicts WHERE UId = ?MyUId",
        ),
        // The app reveals any review to any non-conflicted PC member, and
        // conflict absence is not expressible in a conjunctive view — the
        // policy over-approximates, the handlers narrow (Section 3's
        // enforcement/ground-truth gap).
        (
            "PcReviews",
            "SELECT RId, PaperId, UId, Score, Body FROM Reviews",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s.to_string()))
    .collect()
}

/// Number of submission tracks for a fleet of `users`: sized so a track
/// listing stays ~64 papers regardless of scale (papers average one per
/// user), keeping `paper_list` responses bounded at any fleet size.
pub(crate) fn track_count(users: u64) -> u64 {
    (users / 64).max(1)
}

/// The track a paper belongs to — pure in `(pid, users)`.
pub(crate) fn track_of(pid: i64, users: u64) -> i64 {
    pid % track_count(users) as i64
}

/// Papers authored by user `i` — pure in `(seed, i)`.
pub(crate) fn papers_of(seed: u64, i: u64) -> Vec<i64> {
    let mut rng = substream(seed, &[TAG_AUTHOR, i]);
    let a = rng.gen_range(0..=2u64);
    (0..a).map(|k| uid(i) * 8 + k as i64).collect()
}

/// Paper ids user `i` is conflicted with (beyond their own papers).
pub(crate) fn conflicts_of(seed: u64, i: u64, n: u64) -> Vec<i64> {
    let mut rng = substream(seed, &[TAG_CONFLICT, i]);
    let c = rng.gen_range(0..3u64);
    let mut out = Vec::new();
    for _ in 0..c {
        let j = rng.gen_range(0..n);
        if j == i {
            continue;
        }
        let ps = papers_of(seed, j);
        if ps.is_empty() {
            continue;
        }
        let pid = ps[rng.gen_range(0..ps.len())];
        if !out.contains(&pid) {
            out.push(pid);
        }
    }
    out
}

/// User `i`'s seeded reviews as `(rid, paper, score)` — skips own and
/// conflicted papers, mirroring the handler's gate.
pub(crate) fn reviews_of(seed: u64, i: u64, n: u64) -> Vec<(i64, i64, i64)> {
    let mut rng = substream(seed, &[TAG_REVIEW, i]);
    let conflicts = conflicts_of(seed, i, n);
    let r = rng.gen_range(0..4u64);
    let mut out = Vec::new();
    for k in 0..r {
        let j = rng.gen_range(0..n);
        if j == i {
            continue;
        }
        let ps = papers_of(seed, j);
        if ps.is_empty() {
            continue;
        }
        let pid = ps[rng.gen_range(0..ps.len())];
        if conflicts.contains(&pid) || out.iter().any(|&(_, p, _)| p == pid) {
            continue;
        }
        let score = 1 + rng.gen_range(0..5i64);
        out.push((uid(i) * 8 + k as i64, pid, score));
    }
    out
}

pub(crate) fn populate(sink: &mut BatchSink, seed: u64, users: u64) -> Result<(), DbError> {
    for i in 0..users {
        sink.push(
            "Users",
            vec![Value::Int(uid(i)), Value::str(format!("user{i}"))],
        )?;
    }
    for i in 0..users {
        for pid in papers_of(seed, i) {
            sink.push(
                "Papers",
                vec![
                    Value::Int(pid),
                    Value::str(format!("paper {pid}")),
                    Value::Int(track_of(pid, users)),
                ],
            )?;
        }
    }
    for i in 0..users {
        for pid in papers_of(seed, i) {
            sink.push("Authors", vec![Value::Int(pid), Value::Int(uid(i))])?;
        }
    }
    for i in 0..users {
        for pid in conflicts_of(seed, i, users) {
            sink.push("Conflicts", vec![Value::Int(pid), Value::Int(uid(i))])?;
        }
    }
    for i in 0..users {
        for (rid, pid, score) in reviews_of(seed, i, users) {
            sink.push(
                "Reviews",
                vec![
                    Value::Int(rid),
                    Value::Int(pid),
                    Value::Int(uid(i)),
                    Value::Int(score),
                    Value::str("seeded review"),
                ],
            )?;
        }
    }
    Ok(())
}

fn session(i: u64) -> Vec<(String, Value)> {
    vec![("MyUId".to_string(), Value::Int(uid(i)))]
}

/// A paper user `i` may review/read: not their own, not conflicted.
fn readable_paper(seed: u64, users: u64, i: u64, rng: &mut SplitMix64) -> Option<i64> {
    let conflicts = conflicts_of(seed, i, users);
    for _ in 0..8 {
        let j = rng.gen_range(0..users);
        if j == i {
            continue;
        }
        let ps = papers_of(seed, j);
        if ps.is_empty() {
            continue;
        }
        let pid = ps[rng.gen_range(0..ps.len())];
        if !conflicts.contains(&pid) {
            return Some(pid);
        }
    }
    None
}

/// A track-scoped paper listing for a random track.
fn list_request(users: u64, i: u64, rng: &mut SplitMix64) -> Request {
    let track = rng.gen_range(0..track_count(users)) as i64;
    Request {
        handler: "paper_list".into(),
        session: session(i),
        params: vec![("track".into(), Value::Int(track))],
    }
}

pub(crate) fn authorized(
    seed: u64,
    users: u64,
    i: u64,
    template: usize,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> Request {
    match template {
        0 => list_request(users, i, rng),
        1 => match readable_paper(seed, users, i, rng) {
            Some(pid) => Request {
                handler: "paper_reviews".into(),
                session: session(i),
                params: vec![("paper_id".into(), Value::Int(pid))],
            },
            None => list_request(users, i, rng),
        },
        2 => Request {
            handler: "my_papers".into(),
            session: session(i),
            params: vec![],
        },
        3 => Request {
            handler: "my_conflicts".into(),
            session: session(i),
            params: vec![],
        },
        _ => match readable_paper(seed, users, i, rng) {
            Some(pid) => {
                *fresh += 1;
                Request {
                    handler: "submit_review".into(),
                    session: session(i),
                    params: vec![
                        ("review_id".into(), Value::Int(*fresh)),
                        ("paper_id".into(), Value::Int(pid)),
                        ("score".into(), Value::Int(1 + rng.gen_range(0..5i64))),
                        ("body".into(), Value::str("generated review")),
                    ],
                }
            }
            None => Request {
                handler: "my_papers".into(),
                session: session(i),
                params: vec![],
            },
        },
    }
}

pub(crate) fn probe(seed: u64, users: u64, i: u64, _rng: &mut SplitMix64) -> Request {
    // Probe reviews of a paper the session is barred from: a conflicted
    // paper when one exists, else the user's own paper, else a paper id
    // that does not exist (404 path).
    let conflicts = conflicts_of(seed, i, users);
    let own = papers_of(seed, i);
    let pid = conflicts
        .first()
        .or_else(|| own.first())
        .copied()
        .unwrap_or(-1);
    Request {
        handler: "paper_reviews".into(),
        session: session(i),
        params: vec![("paper_id".into(), Value::Int(pid))],
    }
}

pub(crate) fn raw_probe(users: u64, i: u64, rng: &mut SplitMix64) -> String {
    // Someone else's conflict list is in no view: always denied.
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i {
            j = cand;
            break;
        }
    }
    format!("SELECT PaperId FROM Conflicts WHERE UId = {}", uid(j))
}

pub(crate) fn raw_write_probe(
    _seed: u64,
    users: u64,
    i: u64,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> String {
    // Tamper with another PC member's conflict or authorship records:
    // `MyConflicts`/`MyAuthorships` pin UId to the session, so every such
    // row is uncoverable. (Reviews are deliberately avoided — `PcReviews`
    // exposes the whole table, so any Reviews insert is policy-allowed
    // and only the handler's conflict check narrows it.)
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i {
            j = cand;
            break;
        }
    }
    match rng.gen_range(0..3u64) {
        0 => {
            *fresh += 1;
            format!(
                "INSERT INTO Conflicts (PaperId, UId) VALUES ({}, {})",
                *fresh,
                uid(j)
            )
        }
        1 => format!("DELETE FROM Conflicts WHERE UId = {}", uid(j)),
        _ => {
            *fresh += 1;
            format!(
                "INSERT INTO Authors (PaperId, UId) VALUES ({}, {})",
                *fresh,
                uid(j)
            )
        }
    }
}
