//! The social-graph family: followers, blocks, and per-author post
//! visibility (a Diaspora-style ACL).
//!
//! The access rule the app enforces is *follow AND not blocked*: a user
//! sees an author's posts only if they follow the author and the author
//! has not blocked them. Conjunctive-query policies cannot express the
//! negation, so — as in real proxied apps — the block check lives in
//! handler code against a *positive* view (`MyBlockers`), and the policy
//! over-approximates with the follow-edge views.
//!
//! All adjacency is derived from per-user substreams: user `i`'s followee
//! list is a pure function of `(seed, i)`, so the traffic engine re-derives
//! authorized targets in `O(degree)` without materializing the graph.

use crate::fleet::uid;
use crate::rng::{substream, SplitMix64};
use appdsl::Request;
use appsim::BatchSink;
use minidb::DbError;
use rand::Rng;
use sqlir::Value;

const TAG_FOLLOW: u64 = 1;
const TAG_BLOCK: u64 = 2;
const TAG_POST: u64 = 3;

pub(crate) const TEMPLATES: usize = 4;

pub(crate) fn ddl() -> Vec<String> {
    vec![
        "CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT NOT NULL)".into(),
        "CREATE TABLE Follows (FollowerId INT NOT NULL, FolloweeId INT NOT NULL, \
         PRIMARY KEY (FollowerId, FolloweeId), \
         FOREIGN KEY (FollowerId) REFERENCES Users (UId), \
         FOREIGN KEY (FolloweeId) REFERENCES Users (UId))"
            .into(),
        "CREATE TABLE Blocks (BlockerId INT NOT NULL, BlockedId INT NOT NULL, \
         PRIMARY KEY (BlockerId, BlockedId), \
         FOREIGN KEY (BlockerId) REFERENCES Users (UId), \
         FOREIGN KEY (BlockedId) REFERENCES Users (UId))"
            .into(),
        "CREATE TABLE Posts (PId INT PRIMARY KEY, AuthorId INT NOT NULL, \
         Title TEXT NOT NULL, Body TEXT NOT NULL, \
         FOREIGN KEY (AuthorId) REFERENCES Users (UId))"
            .into(),
    ]
}

pub(crate) const SOURCE: &str = r#"
    handler feed() {
        emit sql("SELECT p.PId, p.Title, p.AuthorId FROM Follows f
                  JOIN Posts p ON f.FolloweeId = p.AuthorId
                  WHERE f.FollowerId = ?MyUId");
    }

    handler view_author(author_id) {
        let b = sql("SELECT 1 FROM Blocks
                     WHERE BlockerId = ?author_id AND BlockedId = ?MyUId");
        if !b.is_empty() {
            abort(403);
        }
        let f = sql("SELECT 1 FROM Follows
                     WHERE FollowerId = ?MyUId AND FolloweeId = ?author_id");
        if f.is_empty() {
            abort(403);
        }
        emit sql("SELECT PId, Title, Body FROM Posts WHERE AuthorId = ?author_id");
    }

    handler my_followers() {
        emit sql("SELECT FollowerId FROM Follows WHERE FolloweeId = ?MyUId");
    }

    handler add_post(post_id, title, body) {
        run sql("INSERT INTO Posts (PId, AuthorId, Title, Body)
                 VALUES (?post_id, ?MyUId, ?title, ?body)");
    }
"#;

pub(crate) fn ground_truth() -> Vec<(String, String)> {
    [
        (
            "MyFolloweePosts",
            "SELECT p.PId, p.Title, p.Body, p.AuthorId FROM Posts p \
             JOIN Follows f ON f.FolloweeId = p.AuthorId WHERE f.FollowerId = ?MyUId",
        ),
        (
            "MyFollowees",
            "SELECT FollowerId, FolloweeId FROM Follows WHERE FollowerId = ?MyUId",
        ),
        (
            "MyFollowers",
            "SELECT FollowerId, FolloweeId FROM Follows WHERE FolloweeId = ?MyUId",
        ),
        // The handler-level block check reveals who blocked *me* (the
        // 403 is observable); the policy names that disclosure.
        (
            "MyBlockers",
            "SELECT BlockerId, BlockedId FROM Blocks WHERE BlockedId = ?MyUId",
        ),
        (
            "MyOwnPosts",
            "SELECT PId, Title, Body, AuthorId FROM Posts WHERE AuthorId = ?MyUId",
        ),
    ]
    .into_iter()
    .map(|(n, s)| (n.to_string(), s.to_string()))
    .collect()
}

/// Distinct indices `!= i` drawn from `rng`, at most `k` of them.
fn distinct_targets(rng: &mut SplitMix64, i: u64, n: u64, k: u64) -> Vec<u64> {
    let mut out = Vec::new();
    if n < 2 {
        return out;
    }
    let mut attempts = 0;
    while (out.len() as u64) < k && attempts < 8 * k {
        attempts += 1;
        let j = rng.gen_range(0..n);
        if j != i && !out.contains(&j) {
            out.push(j);
        }
    }
    out
}

/// User `i`'s followees — a pure function of `(seed, i)`.
pub(crate) fn followees(seed: u64, i: u64, n: u64) -> Vec<u64> {
    let mut rng = substream(seed, &[TAG_FOLLOW, i]);
    let k = (2 + rng.gen_range(0..6u64)).min(n.saturating_sub(1));
    distinct_targets(&mut rng, i, n, k)
}

/// Users blocked *by* user `i` — most users block nobody.
pub(crate) fn blocked_by(seed: u64, i: u64, n: u64) -> Vec<u64> {
    let mut rng = substream(seed, &[TAG_BLOCK, i]);
    if !rng.gen_bool(0.15) {
        return Vec::new();
    }
    let k = 1 + rng.gen_range(0..2u64);
    distinct_targets(&mut rng, i, n, k)
}

/// How many posts user `i` seeds.
pub(crate) fn post_count(seed: u64, i: u64) -> u64 {
    substream(seed, &[TAG_POST, i]).gen_range(1..=4u64)
}

pub(crate) fn populate(sink: &mut BatchSink, seed: u64, users: u64) -> Result<(), DbError> {
    for i in 0..users {
        sink.push(
            "Users",
            vec![Value::Int(uid(i)), Value::str(format!("user{i}"))],
        )?;
    }
    for i in 0..users {
        for j in followees(seed, i, users) {
            sink.push("Follows", vec![Value::Int(uid(i)), Value::Int(uid(j))])?;
        }
    }
    for i in 0..users {
        for j in blocked_by(seed, i, users) {
            sink.push("Blocks", vec![Value::Int(uid(i)), Value::Int(uid(j))])?;
        }
    }
    for i in 0..users {
        for k in 0..post_count(seed, i) {
            sink.push(
                "Posts",
                vec![
                    Value::Int(uid(i) * 16 + k as i64),
                    Value::Int(uid(i)),
                    Value::str(format!("post {k} of user{i}")),
                    Value::str("lorem ipsum"),
                ],
            )?;
        }
    }
    Ok(())
}

fn session(i: u64) -> Vec<(String, Value)> {
    vec![("MyUId".to_string(), Value::Int(uid(i)))]
}

pub(crate) fn authorized(
    seed: u64,
    users: u64,
    i: u64,
    template: usize,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> Request {
    match template {
        0 => Request {
            handler: "feed".into(),
            session: session(i),
            params: vec![],
        },
        1 => {
            // Visit an author I follow; fall back to the feed when the
            // derived followee list came up empty.
            let f = followees(seed, i, users);
            match f.is_empty() {
                true => Request {
                    handler: "feed".into(),
                    session: session(i),
                    params: vec![],
                },
                false => {
                    let j = f[rng.gen_range(0..f.len())];
                    Request {
                        handler: "view_author".into(),
                        session: session(i),
                        params: vec![("author_id".into(), Value::Int(uid(j)))],
                    }
                }
            }
        }
        2 => Request {
            handler: "my_followers".into(),
            session: session(i),
            params: vec![],
        },
        _ => {
            *fresh += 1;
            Request {
                handler: "add_post".into(),
                session: session(i),
                params: vec![
                    ("post_id".into(), Value::Int(*fresh)),
                    ("title".into(), Value::str("fresh post")),
                    ("body".into(), Value::str("generated")),
                ],
            }
        }
    }
}

pub(crate) fn probe(seed: u64, users: u64, i: u64, rng: &mut SplitMix64) -> Request {
    // Probe an author I do *not* follow (or who blocked me): the handler
    // answers 403 and the enforcement layer sees the gating queries.
    let f = followees(seed, i, users);
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i && !f.contains(&cand) {
            j = cand;
            break;
        }
    }
    Request {
        handler: "view_author".into(),
        session: session(i),
        params: vec![("author_id".into(), Value::Int(uid(j)))],
    }
}

pub(crate) fn raw_probe(users: u64, i: u64, rng: &mut SplitMix64) -> String {
    // Another user's block list is in no view: always denied.
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i {
            j = cand;
            break;
        }
    }
    format!("SELECT BlockedId FROM Blocks WHERE BlockerId = {}", uid(j))
}

pub(crate) fn raw_write_probe(
    seed: u64,
    users: u64,
    i: u64,
    rng: &mut SplitMix64,
    fresh: &mut i64,
) -> String {
    // Mutate the posts of an author user `i` does *not* follow: neither
    // `MyOwnPosts` (AuthorId pinned to the session) nor `MyFolloweePosts`
    // (needs a `Follows(me, author)` fact, which a non-followee can never
    // witness) covers the written rows — always denied. Followees are
    // excluded precisely because write coverage, like read compliance, is
    // trace-aware: a followee's posts *are* in `MyFolloweePosts`.
    let f = followees(seed, i, users);
    let mut j = (i + 1) % users.max(1);
    for _ in 0..8 {
        let cand = rng.gen_range(0..users.max(1));
        if cand != i && !f.contains(&cand) {
            j = cand;
            break;
        }
    }
    match rng.gen_range(0..3u64) {
        0 => {
            *fresh += 1;
            format!(
                "INSERT INTO Posts (PId, AuthorId, Title, Body) \
                 VALUES ({}, {}, 'spoofed', 'x')",
                *fresh,
                uid(j)
            )
        }
        1 => format!(
            "UPDATE Posts SET Title = 'defaced' WHERE AuthorId = {}",
            uid(j)
        ),
        _ => format!("DELETE FROM Posts WHERE AuthorId = {}", uid(j)),
    }
}
