//! Property-based security tests of the enforcement proxy: under random
//! interleavings of probes and fetches, an event's details are revealed to
//! a session only when that session's user actually attends the event —
//! the confidentiality guarantee of Example 2.1's policy, tested as an
//! oracle over the concrete database.

use beyond_enforcement::prelude::*;
use proptest::prelude::*;

/// The calendar database: users 0..U, events 0..E, attendance pairs given.
fn build_db(users: i64, events: i64, attendance: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    for e in 0..events {
        db.execute_sql(&format!(
            "INSERT INTO Events (EId, Title, Kind) VALUES ({e}, 'secret{e}', 'k{e}')"
        ))
        .unwrap();
    }
    for (u, e) in attendance {
        if *u < users && *e < events {
            let _ = db.execute_sql(&format!(
                "INSERT INTO Attendance (UId, EId, Notes) VALUES ({u}, {e}, NULL)"
            ));
        }
    }
    db
}

fn proxy_for(db: Database) -> SqlProxy {
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    )
}

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Step {
    /// Probe attendance of (user's own or someone else's) pair.
    Probe { uid: i64, eid: i64 },
    /// Fetch an event's details.
    Fetch { eid: i64 },
}

fn step_strategy(users: i64, events: i64) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..users, 0..events).prop_map(|(uid, eid)| Step::Probe { uid, eid }),
        (0..events).prop_map(|eid| Step::Fetch { eid }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Confidentiality: the proxy returns an event's Title only to sessions
    /// whose user attends that event, regardless of the query sequence.
    #[test]
    fn event_details_never_leak(
        attendance in proptest::collection::vec((0i64..4, 0i64..4), 0..10),
        session_uid in 0i64..4,
        steps in proptest::collection::vec(step_strategy(4, 4), 1..14),
    ) {
        let db = build_db(4, 4, &attendance);
        // Ground truth: the pairs that actually made it into the table.
        let attends: Vec<(i64, i64)> = db
            .query_sql("SELECT UId, EId FROM Attendance")
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();

        let proxy = proxy_for(db);
        let session =
            proxy.begin_session(vec![("MyUId".into(), Value::Int(session_uid))]);

        for step in &steps {
            match step {
                Step::Probe { uid, eid } => {
                    // Probing an arbitrary (uid, eid) pair: allowed only for
                    // the session's own uid; either way it must not error.
                    let sql = format!(
                        "SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = {eid}"
                    );
                    let response = proxy.execute(session, &sql, &[]).unwrap();
                    if *uid != session_uid {
                        prop_assert!(
                            !response.is_allowed(),
                            "probing user {uid} from session {session_uid} must be blocked"
                        );
                    }
                }
                Step::Fetch { eid } => {
                    let sql =
                        format!("SELECT EId, Title, Kind FROM Events WHERE EId = {eid}");
                    let response = proxy.execute(session, &sql, &[]).unwrap();
                    if let ProxyResponse::Rows(rows) = &response {
                        if !rows.is_empty() {
                            prop_assert!(
                                attends.contains(&(session_uid, *eid)),
                                "event {eid} details revealed to non-attendee {session_uid} \
                                 (attendance: {attends:?}, steps: {steps:?})"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Liveness: the legitimate two-step flow (own probe returns a row, then
    /// fetch) always succeeds.
    #[test]
    fn legitimate_flow_always_succeeds(
        attendance in proptest::collection::vec((0i64..4, 0i64..4), 1..10),
        pick in 0usize..10,
    ) {
        let db = build_db(4, 4, &attendance);
        let attends: Vec<(i64, i64)> = db
            .query_sql("SELECT UId, EId FROM Attendance")
            .unwrap()
            .rows
            .iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assume!(!attends.is_empty());
        let (uid, eid) = attends[pick % attends.len()];

        let proxy = proxy_for(db);
        let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
        let probe = proxy
            .execute(
                session,
                &format!("SELECT 1 FROM Attendance WHERE UId = {uid} AND EId = {eid}"),
                &[],
            )
            .unwrap();
        prop_assert!(probe.is_allowed());
        prop_assert!(!probe.rows().unwrap().is_empty());
        let fetch = proxy
            .execute(
                session,
                &format!("SELECT EId, Title, Kind FROM Events WHERE EId = {eid}"),
                &[],
            )
            .unwrap();
        prop_assert!(fetch.is_allowed(), "attendee fetch must succeed");
        prop_assert_eq!(fetch.rows().unwrap().len(), 1);
    }
}
