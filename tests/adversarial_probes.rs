//! Adversarial inputs at the proxy surface: every hostile statement must
//! come back `Blocked(...)` — never `Err`, never a panic.

use beyond_enforcement::prelude::*;
use minidb::Database;
use sqlir::Value;

fn proxy() -> SqlProxy {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work')")
        .unwrap();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId")],
    )
    .unwrap();
    SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    )
}

#[test]
fn hostile_statements_are_blocked_not_errors() {
    let p = proxy();
    let s = p.begin_session(vec![("MyUId".into(), Value::Int(1))]);

    let mut in_chain = String::from("SELECT * FROM Events WHERE EId IN (");
    for i in 0..80 {
        if i > 0 {
            in_chain.push_str(", ");
        }
        in_chain.push_str(&i.to_string());
    }
    in_chain.push(')');

    let hostile: Vec<String> = vec![
        // Malformed SQL.
        "SELEC whoops".into(),
        "SELECT FROM".into(),
        ");;DROP TABLE Events;--".into(),
        // Unknown tables / columns.
        "SELECT * FROM NoSuchTable".into(),
        "SELECT Nope FROM Events".into(),
        // Unbound parameters.
        "SELECT * FROM Events WHERE EId = ?never_bound".into(),
        // Aggregates: outside the conjunctive fragment.
        "SELECT COUNT(*) FROM Events".into(),
        "SELECT Kind, MAX(EId) FROM Events GROUP BY Kind".into(),
        // A >64-disjunct IN chain.
        in_chain,
    ];

    for sql in &hostile {
        match p.execute(s, sql, &[]) {
            Ok(ProxyResponse::Blocked(_)) => {}
            other => panic!("{sql:?} must be Blocked, got {other:?}"),
        }
    }
    assert_eq!(p.stats().blocked, hostile.len() as u64);
}
