//! Cross-crate observability tests: the decision-provenance layer seen
//! through the façade — a full application workload must leave a
//! journal, phase timings, and a metrics exposition that all agree with
//! each other and with the proxy's counters.

use appsim::{seed_app, workload_for, ProxyPort, Scale, CALENDAR};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn calendar_proxy(observe: bool) -> SqlProxy {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::small());
    let checker = ComplianceChecker::new(CALENDAR.schema(), CALENDAR.policy().unwrap());
    SqlProxy::new(
        db,
        checker,
        ProxyConfig {
            observe,
            ..ProxyConfig::default()
        },
    )
}

fn drive_workload(proxy: &SqlProxy, n_requests: usize) {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::small());
    let requests = workload_for("calendar", &db, &mut rng, n_requests).expect("workload");
    let app = CALENDAR.app();
    for req in &requests {
        let handler = app.handler(&req.handler).unwrap();
        let session = proxy.begin_session(req.session.clone());
        let mut port = ProxyPort { proxy, session };
        let _ = run_handler(
            &mut port,
            handler,
            &req.session,
            &req.params,
            Limits::default(),
        );
        proxy.end_session(session);
    }
}

/// The journal, the stats counters, and the metrics exposition are three
/// views of the same decisions — they must agree after a real workload.
#[test]
fn journal_stats_and_exposition_agree_after_a_workload() {
    let proxy = calendar_proxy(true);
    drive_workload(&proxy, 40);

    let stats = proxy.stats();
    assert!(stats.allowed > 0, "workload produced decisions");

    // Journal vs counters: writes are journaled too, so the event count
    // is decisions + writes.
    let journal = proxy.journal();
    assert_eq!(
        journal.published(),
        stats.allowed + stats.blocked + stats.writes,
        "one event per decision, including pass-through writes"
    );
    let events = journal.events_since(0, usize::MAX);
    assert_eq!(events.len() as u64, journal.published() - journal.evicted());

    // Events are strictly ordered and internally consistent.
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "sequence numbers increase");
    }
    let mut by_tier = [0u64; 6];
    for e in &events {
        let phase_sum: u64 = (0..PHASE_COUNT).map(|i| e.phase(Phase::ALL[i])).sum();
        assert!(
            phase_sum <= e.total_ns,
            "phase laps never exceed the decision's total"
        );
        by_tier[e.tier as usize] += 1;
    }
    // Tier provenance reconciles with the cache counters.
    assert_eq!(
        by_tier[CacheTier::TemplateCache as usize],
        stats.template_cache_hits
    );
    assert_eq!(
        by_tier[CacheTier::SessionCache as usize],
        stats.session_cache_hits
    );
    assert_eq!(
        by_tier[CacheTier::DenyCache as usize],
        stats.deny_cache_hits
    );
    assert_eq!(
        by_tier[CacheTier::ConcreteProof as usize],
        stats.concrete_proofs
    );

    // The exposition renders the same atomics the stats snapshot read.
    let text = proxy.metrics_text();
    assert!(text.contains(&format!(
        "bep_decisions_total{{decision=\"allowed\"}} {}",
        stats.allowed
    )));
    assert!(text.contains(&format!(
        "bep_cache_hits_total{{tier=\"template\"}} {}",
        stats.template_cache_hits
    )));
    assert!(text.contains(&format!("bep_journal_published {}", journal.published())));
    for family in [
        "bep_decisions_total",
        "bep_cache_hits_total",
        "bep_proofs_total",
        "bep_sessions",
        "bep_decision_latency_ns",
        "bep_phase_latency_ns",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "exposition carries family {family}"
        );
    }
}

/// A polling consumer that keeps up sees every event exactly once, in
/// order, with nothing dropped.
#[test]
fn polling_consumer_sees_every_decision_exactly_once() {
    let proxy = calendar_proxy(true);
    let mut cursor = JournalCursor::default();
    let mut seen: Vec<u64> = Vec::new();

    for chunk in 0..4 {
        drive_workload(&proxy, 10 + chunk);
        loop {
            let batch = proxy.journal().poll(&mut cursor, 8);
            if batch.is_empty() {
                break;
            }
            seen.extend(batch.iter().map(|e| e.seq));
        }
    }

    assert_eq!(cursor.dropped(), 0, "a keeping-up consumer drops nothing");
    assert_eq!(seen.len() as u64, proxy.journal().published());
    assert!(
        seen.windows(2).all(|w| w[1] == w[0] + 1),
        "gapless, in order"
    );
}

/// Observation off is genuinely off: the same workload decides
/// identically but leaves no provenance behind.
#[test]
fn observe_off_decides_identically_with_no_provenance() {
    let observed = calendar_proxy(true);
    let dark = calendar_proxy(false);
    drive_workload(&observed, 30);
    drive_workload(&dark, 30);

    let (a, b) = (observed.stats(), dark.stats());
    assert_eq!((a.allowed, a.blocked), (b.allowed, b.blocked));

    assert!(observed.journal().published() > 0);
    assert_eq!(dark.journal().published(), 0);
    assert!(dark.journal().events_since(0, usize::MAX).is_empty());
    for snap in dark.phase_snapshots() {
        assert_eq!(snap.count, 0, "no phase timings without observe");
    }
    // The exposition still renders (counters live either way); only the
    // journal gauges stay at zero.
    assert!(dark.metrics_text().contains("bep_journal_published 0"));
}

/// Template hashes in events are the public `template_hash` of the SQL
/// text — an external consumer can join events to known query shapes.
#[test]
fn event_hashes_join_to_query_text() {
    let proxy = calendar_proxy(true);
    let session = proxy.begin_session(vec![("MyUId".into(), sqlir::Value::Int(appsim::FIRST_UID))]);
    let sql = "SELECT EId FROM Attendance WHERE UId = ?MyUId";
    proxy.execute(session, sql, &[]).unwrap();
    proxy.end_session(session);

    let events = proxy.journal().events_since(0, usize::MAX);
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].template_hash, template_hash(sql));
    assert_eq!(events[0].verdict, Verdict::Allowed);
    assert_eq!(events[0].session, session);
}
