//! Integration tests for §4 policy evaluation: the paper's disclosure
//! scenarios run end to end against the simulated applications' ground-truth
//! policies, cross-checking the certificate checkers against the exact
//! small-model decider and the sampler.

use beyond_enforcement::disclose::{
    belief_shift, check_nqi, check_pqi, decide, decide_sampled, BayesConfig, RelationSpec, Universe,
};
use beyond_enforcement::prelude::*;
use qlogic::Atom;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn named(mut cq: Cq, name: &str) -> Cq {
    cq.name = Some(name.into());
    cq
}

/// The hospital app's real policy views (Example 4.1) evaluated against the
/// patient-disease link.
#[test]
fn hospital_policy_discloses_the_narrowing() {
    let policy = appsim::HOSPITAL.policy().unwrap();
    let views = policy.instantiate(&[]).unwrap();
    // Sensitive: which disease each patient is treated for.
    let sensitive = Cq::new(
        vec![Term::var("p"), Term::var("dis")],
        vec![Atom::new(
            "Treatment",
            vec![Term::var("p"), Term::var("d"), Term::var("dis")],
        )],
        vec![],
    );
    // Certificate: the VA ⋈ VB upper bound (negative inference) exists.
    assert!(check_nqi(&sensitive, &views).holds());
    // And the enforcement checker would block the direct query.
    assert!(qlogic::equivalent_rewriting(&sensitive, &views, &[]).is_none());
}

/// The exact decider and the sampler agree on the scenarios both can reach.
#[test]
fn sampler_consistent_with_exact() {
    let universe = Universe::with_int_domain(
        vec![RelationSpec {
            name: "Treatment".into(),
            arity: 3,
            max_rows: 2,
        }],
        2,
    );
    let v1 = named(
        Cq::new(
            vec![Term::var("p"), Term::var("d")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        ),
        "PD",
    );
    let v2 = named(
        Cq::new(
            vec![Term::var("d"), Term::var("x")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("d"), Term::var("x")],
            )],
            vec![],
        ),
        "DX",
    );
    let s = Cq::new(
        vec![Term::var("p"), Term::var("x")],
        vec![Atom::new(
            "Treatment",
            vec![Term::var("p"), Term::var("d"), Term::var("x")],
        )],
        vec![],
    );
    let views = ViewSet::new(vec![v1, v2]).unwrap();
    let exact = decide(&universe, &views, &s).unwrap();
    let mut rng = SmallRng::seed_from_u64(17);
    let sampled = decide_sampled(&universe, &views, &s, 400, &mut rng).unwrap();
    assert!(exact.nqi && sampled.nqi);
    // The sampler's sound direction never contradicts the exact decider.
    if sampled.nqi {
        assert!(exact.nqi);
    }
}

/// The calendar ground-truth policy protects cross-user attendance: no PQI,
/// no Bayesian shift beyond what view emptiness implies at matched scale.
#[test]
fn calendar_policy_protects_other_users() {
    let policy = appsim::CALENDAR.policy().unwrap();
    // Instantiate for user 0 of a two-user toy universe.
    let views = policy
        .instantiate(&[("MyUId".to_string(), Value::Int(0))])
        .unwrap();
    // Sensitive: user 1's attendance.
    let sensitive = Cq::new(
        vec![Term::var("e")],
        vec![Atom::new(
            "Attendance",
            vec![Term::int(1), Term::var("e"), Term::var("n")],
        )],
        vec![],
    );
    assert!(!check_pqi(&sensitive, &views).holds());
    assert!(
        qlogic::equivalent_rewriting(&sensitive, &views, &[]).is_none(),
        "the direct cross-user query is blocked"
    );
}

/// Bayesian verdicts move with the prior while the certificates stay put —
/// §4.2's dilemma, asserted.
#[test]
fn bayesian_depends_on_prior_certificates_do_not() {
    let universe = Universe::with_int_domain(
        vec![RelationSpec {
            name: "R".into(),
            arity: 1,
            max_rows: 2,
        }],
        2,
    );
    // The view reveals only non-emptiness of R.
    let v = named(
        Cq::new(vec![], vec![Atom::new("R", vec![Term::var("x")])], vec![]),
        "NonEmpty",
    );
    let s = Cq::new(
        vec![Term::var("x")],
        vec![Atom::new("R", vec![Term::var("x")])],
        vec![],
    );
    let views = ViewSet::new(vec![v]).unwrap();

    let lo = belief_shift(&universe, &views, &s, BayesConfig { tuple_prob: 0.1 })
        .unwrap()
        .max_shift;
    let hi = belief_shift(&universe, &views, &s, BayesConfig { tuple_prob: 0.9 })
        .unwrap()
        .max_shift;
    assert!(
        (lo - hi).abs() > 0.05,
        "Bayesian verdict moved: {lo} vs {hi}"
    );

    // The prior-agnostic certificates give one answer, independent of any p.
    let pqi = check_pqi(&s, &views).holds();
    let nqi = check_nqi(&s, &views).holds();
    assert!(!pqi, "emptiness alone cannot certify a positive answer");
    assert!(!nqi, "and bounds nothing from above");
}

/// Auditing an extracted policy via the Lifecycle façade end to end.
#[test]
fn lifecycle_audit_of_extracted_forum_policy() {
    let mut lc = beyond_enforcement::Lifecycle::new(appsim::FORUM.app(), appsim::FORUM.schema());
    lc.extract_policy(&ViewGenOptions {
        session_params: vec!["MyUId".into()],
    })
    .unwrap();

    // Sensitive: posts of a group user 999 is not in.
    let sensitive = Cq::new(
        vec![Term::var("t"), Term::var("b")],
        vec![
            Atom::new(
                "Posts",
                vec![
                    Term::var("p"),
                    Term::var("g"),
                    Term::var("a"),
                    Term::var("t"),
                    Term::var("b"),
                ],
            ),
            Atom::new(
                "Membership",
                vec![Term::int(999), Term::var("g"), Term::var("r")],
            ),
        ],
        vec![],
    );
    let report = lc
        .audit_sensitive(&sensitive, &[("MyUId".to_string(), Value::Int(101))])
        .unwrap();
    assert!(
        !report.pqi.holds(),
        "another user's group feed must not become certain: {report}"
    );
}
