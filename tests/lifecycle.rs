//! Cross-crate integration tests: the full access-control life-cycle on the
//! paper's calendar application — extraction (§3), evaluation (§4),
//! enforcement (§2), diagnosis (§5) — plus end-to-end runs of every
//! simulated application under enforcement.

use appsim::{seed_app, workload_for, ProxyPort, Scale, ALL_APPS, CALENDAR, FORUM};
use beyond_enforcement::prelude::*;
use beyond_enforcement::Lifecycle;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Every correct application, run under its ground-truth policy, never gets
/// proxy-blocked — the ground-truth policies really do cover the apps.
#[test]
fn correct_apps_run_clean_under_ground_truth_policies() {
    for sim in ALL_APPS {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut db = sim.empty_db();
        seed_app(sim.name, &mut db, &mut rng, &Scale::small());
        let requests = workload_for(sim.name, &db, &mut rng, 40).expect("workload");

        let checker = ComplianceChecker::new(sim.schema(), sim.policy().unwrap());
        let proxy = SqlProxy::new(db, checker, ProxyConfig::default());
        let app = sim.app();
        for req in &requests {
            let handler = app.handler(&req.handler).unwrap();
            let session = proxy.begin_session(req.session.clone());
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let result = run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                Limits::default(),
            )
            .unwrap();
            assert!(
                !matches!(result.outcome, Outcome::Blocked { .. }),
                "{}::{} blocked under its own ground-truth policy: {:?}",
                sim.name,
                req.handler,
                result.outcome
            );
            proxy.end_session(session);
        }
    }
}

/// The symbolic-extraction → enforcement loop closes: a policy extracted
/// from the app admits the app.
#[test]
fn extracted_policies_admit_their_applications() {
    for sim in [&CALENDAR, &FORUM] {
        let opts = ViewGenOptions {
            session_params: sim.session_params.iter().map(|s| s.to_string()).collect(),
        };
        let mut lc = Lifecycle::new(sim.app(), sim.schema());
        lc.extract_policy(&opts).unwrap();

        let mut rng = SmallRng::seed_from_u64(5);
        let mut db = sim.empty_db();
        seed_app(sim.name, &mut db, &mut rng, &Scale::small());
        let requests = workload_for(sim.name, &db, &mut rng, 30).expect("workload");

        let proxy = lc.enforce(db);
        for req in &requests {
            let handler = lc.app.handler(&req.handler).unwrap();
            let session = proxy.begin_session(req.session.clone());
            let mut port = ProxyPort {
                proxy: &proxy,
                session,
            };
            let result = run_handler(
                &mut port,
                handler,
                &req.session,
                &req.params,
                Limits::default(),
            )
            .unwrap();
            assert!(
                !matches!(result.outcome, Outcome::Blocked { .. }),
                "{}::{} blocked under its own extracted policy",
                sim.name,
                req.handler
            );
            proxy.end_session(session);
        }
    }
}

/// Buggy handlers DO get blocked under the ground-truth policy — enforcement
/// catches what the paper's intro warns about.
#[test]
fn buggy_handlers_are_blocked() {
    let mut db = CALENDAR.empty_db();
    db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann')")
        .unwrap();
    db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (7, 'secret', 'work')")
        .unwrap();

    let checker = ComplianceChecker::new(CALENDAR.schema(), CALENDAR.policy().unwrap());
    let proxy = SqlProxy::new(db, checker, ProxyConfig::default());
    let app = CALENDAR.app_with_bugs();
    let session_bindings = vec![("MyUId".to_string(), Value::Int(101))];
    let session = proxy.begin_session(session_bindings.clone());
    let mut port = ProxyPort {
        proxy: &proxy,
        session,
    };
    // Ann does not attend event 7; the unchecked fetch must be blocked.
    let result = run_handler(
        &mut port,
        app.handler("show_event_nocheck").unwrap(),
        &session_bindings,
        &[("event_id".into(), Value::Int(7))],
        Limits::default(),
    )
    .unwrap();
    assert!(matches!(result.outcome, Outcome::Blocked { .. }));
}

/// The complete §5 loop: blocked query → diagnosis → apply the access-check
/// patch (by issuing the check first) → the query becomes allowed.
#[test]
fn diagnosis_patch_unblocks_when_applied() {
    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().unwrap();
    let bindings = vec![("MyUId".to_string(), Value::Int(101))];
    let views = policy.instantiate(&bindings).unwrap();

    // The blocked query: event fetch with no history.
    let q = parse_query("SELECT EId, Title, Kind FROM Events WHERE EId = 7").unwrap();
    let cq = qlogic::sql_to_ucq(&schema, &q).unwrap().disjuncts.remove(0);

    let report = beyond_enforcement::diagnose::diagnose(&DiagnosisInput {
        query: &cq,
        views: &views,
        trace_facts: &[],
        schema: &schema,
        extracted: None,
    })
    .unwrap();

    // Find the access-check patch and simulate applying it: the check
    // passing contributes exactly the abduced fact to the trace.
    let fact = report
        .patches
        .iter()
        .find_map(|p| match p {
            Patch::AccessCheck(ac) => Some(ac.fact.clone()),
            _ => None,
        })
        .expect("an access-check patch");
    assert!(
        qlogic::equivalent_rewriting(&cq, &views, std::slice::from_ref(&fact)).is_some(),
        "applying the patch unblocks the query"
    );
}

/// Extraction → disclosure audit: the calendar policy extracted from the app
/// does not disclose other users' attendance.
#[test]
fn extracted_calendar_policy_protects_other_users() {
    let opts = ViewGenOptions {
        session_params: vec!["MyUId".into()],
    };
    let mut lc = Lifecycle::new(CALENDAR.app(), CALENDAR.schema());
    lc.extract_policy(&opts).unwrap();

    // Sensitive: the full attendance relation of user 999 (someone else).
    let sensitive = Cq::new(
        vec![Term::var("e")],
        vec![qlogic::Atom::new(
            "Attendance",
            vec![Term::int(999), Term::var("e"), Term::var("n")],
        )],
        vec![],
    );
    let report = lc
        .audit_sensitive(&sensitive, &[("MyUId".to_string(), Value::Int(101))])
        .unwrap();
    assert!(
        !report.pqi.holds(),
        "another user's attendance must not become certain: {report}"
    );
}

/// Trace-awareness matters end to end: with it, Listing 1 works; without
/// it, the second query is blocked (T4's headline row).
#[test]
fn trace_awareness_ablation() {
    for (trace_aware, expect_ok) in [(true, true), (false, false)] {
        let mut db = CALENDAR.empty_db();
        db.execute_sql("INSERT INTO Users (UId, Name) VALUES (101, 'ann')")
            .unwrap();
        db.execute_sql("INSERT INTO Events (EId, Title, Kind) VALUES (1, 'x', 'work')")
            .unwrap();
        db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (101, 1, NULL)")
            .unwrap();
        let checker = ComplianceChecker::new(CALENDAR.schema(), CALENDAR.policy().unwrap());
        let config = ProxyConfig {
            trace_aware,
            ..Default::default()
        };
        let proxy = SqlProxy::new(db, checker, config);
        let bindings = vec![("MyUId".to_string(), Value::Int(101))];
        let session = proxy.begin_session(bindings.clone());
        let mut port = ProxyPort {
            proxy: &proxy,
            session,
        };
        let result = run_handler(
            &mut port,
            CALENDAR.app().handler("show_event").unwrap(),
            &bindings,
            &[("event_id".into(), Value::Int(1))],
            Limits::default(),
        )
        .unwrap();
        if expect_ok {
            assert_eq!(result.outcome, Outcome::Ok, "trace-aware run succeeds");
        } else {
            assert!(
                matches!(result.outcome, Outcome::Blocked { .. }),
                "trace-blind proxy blocks the fetch"
            );
        }
    }
}
