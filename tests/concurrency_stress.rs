//! Concurrency stress tests for the shared (`&self`) proxy: session
//! isolation must survive parallel load, and the atomic statistics must
//! account for every statement exactly once.

use beyond_enforcement::prelude::*;
use minidb::Database;
use sqlir::Value;

fn calendar_db() -> Database {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), (3, 'party', 'fun')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')")
        .unwrap();
    db
}

fn calendar_proxy() -> SqlProxy {
    let db = calendar_db();
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    )
}

const PROBE_2: &str = "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2";
const FETCH_2: &str = "SELECT * FROM Events WHERE EId = 2";

/// Sessions stay isolated under parallel load: user 1 attends event 2 and
/// unlocks its fetch via the probe, while user 2 (who does not attend)
/// hammers the same fetch from concurrent threads and must be blocked every
/// single time — a session must never benefit from another session's trace,
/// no matter how the shard locks interleave.
#[test]
fn parallel_sessions_never_leak_traces() {
    let proxy = calendar_proxy();
    const ITERS: usize = 200;

    std::thread::scope(|scope| {
        // Privileged workers: probe unlocks the fetch within the session.
        for _ in 0..2 {
            let proxy = &proxy;
            scope.spawn(move || {
                for _ in 0..ITERS {
                    let s = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);
                    assert!(proxy.execute(s, PROBE_2, &[]).unwrap().is_allowed());
                    assert!(
                        proxy.execute(s, FETCH_2, &[]).unwrap().is_allowed(),
                        "user 1's own probe must unlock the fetch"
                    );
                    proxy.end_session(s);
                }
            });
        }
        // Unprivileged workers: the same fetch must always be blocked.
        for _ in 0..2 {
            let proxy = &proxy;
            scope.spawn(move || {
                for _ in 0..ITERS {
                    let s = proxy.begin_session(vec![("MyUId".into(), Value::Int(2))]);
                    assert!(
                        !proxy.execute(s, FETCH_2, &[]).unwrap().is_allowed(),
                        "user 2 must never benefit from user 1's trace"
                    );
                    proxy.end_session(s);
                }
            });
        }
    });

    let stats = proxy.stats();
    assert_eq!(stats.allowed, 2 * 2 * ITERS as u64);
    assert_eq!(stats.blocked, 2 * ITERS as u64);
}

/// Every statement issued from any thread lands in exactly one of the
/// `allowed` / `blocked` counters, and DML is tallied separately: after the
/// workers join, the atomic statistics reconcile to the exact totals.
#[test]
fn stats_account_for_every_statement() {
    let proxy = calendar_proxy();
    const WORKERS: usize = 4;
    const ITERS: usize = 100;

    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let proxy = &proxy;
            scope.spawn(move || {
                let uid = if w % 2 == 0 { 1 } else { 2 };
                let s = proxy.begin_session(vec![("MyUId".into(), Value::Int(uid))]);
                for _ in 0..ITERS {
                    // One allowed-for-user-1 / blocked-for-user-2 select,
                    // one always-allowed select, one always-blocked select.
                    proxy.execute(s, FETCH_2, &[]).unwrap();
                    proxy.execute(s, PROBE_2, &[]).unwrap();
                    proxy
                        .execute(s, "SELECT * FROM Events WHERE EId = 3", &[])
                        .unwrap();
                }
                proxy.end_session(s);
            });
        }
    });

    let stats = proxy.stats();
    let issued = (WORKERS * ITERS * 3) as u64;
    assert_eq!(
        stats.allowed + stats.blocked,
        issued,
        "every SELECT must be counted exactly once: {stats:?}"
    );
    // User-1 workers: FETCH_2 blocked until the first PROBE_2 records the
    // attendance fact, then allowed — i.e. exactly one blocked fetch each.
    // PROBE_2 always allowed for both users; FETCH_3 always blocked.
    let user1_workers = (WORKERS as u64).div_ceil(2);
    let user2_workers = WORKERS as u64 - user1_workers;
    let iters = ITERS as u64;
    let expected_blocked = user1_workers + user2_workers * iters + WORKERS as u64 * iters;
    assert_eq!(stats.blocked, expected_blocked, "{stats:?}");

    // Decision sources also reconcile: every allow came from exactly one
    // cache layer or proof.
    assert_eq!(
        stats.template_cache_hits
            + stats.template_proofs
            + stats.session_cache_hits
            + stats.concrete_proofs,
        stats.allowed,
        "{stats:?}"
    );
}

/// DML from concurrent sessions is serialized by the database write lock
/// and tallied exactly.
#[test]
fn concurrent_writes_are_counted_exactly() {
    let proxy = calendar_proxy();
    const WORKERS: usize = 4;
    const ITERS: usize = 25;

    std::thread::scope(|scope| {
        for w in 0..WORKERS {
            let proxy = &proxy;
            scope.spawn(move || {
                let s = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);
                for i in 0..ITERS {
                    // Distinct keys per worker/iteration: no unique clashes.
                    let eid = 100 + (w * ITERS + i) as i64;
                    let r = proxy
                        .execute(
                            s,
                            &format!(
                                "INSERT INTO Events (EId, Title, Kind) \
                                 VALUES ({eid}, 'x', 'y')"
                            ),
                            &[],
                        )
                        .unwrap();
                    assert!(r.is_allowed());
                }
                proxy.end_session(s);
            });
        }
    });

    let stats = proxy.stats();
    assert_eq!(stats.writes, (WORKERS * ITERS) as u64);
    let total = proxy.with_database(|db| db.total_rows());
    assert_eq!(total, 2 + 2 + WORKERS * ITERS);
}
