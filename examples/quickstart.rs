//! Quickstart: the paper's Example 2.1, end to end through the proxy.
//!
//! Run with: `cargo run --example quickstart`

use beyond_enforcement::prelude::*;

fn main() {
    // The calendar database of Example 2.1.
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE Events (EId INT PRIMARY KEY, Title TEXT, Kind TEXT)")
        .unwrap();
    db.execute_sql(
        "CREATE TABLE Attendance (UId INT, EId INT, Notes TEXT, PRIMARY KEY (UId, EId))",
    )
    .unwrap();
    db.execute_sql(
        "INSERT INTO Events (EId, Title, Kind) VALUES (2, 'standup', 'work'), \
         (3, 'party', 'fun')",
    )
    .unwrap();
    db.execute_sql("INSERT INTO Attendance (UId, EId, Notes) VALUES (1, 2, NULL), (2, 3, 'cake')")
        .unwrap();

    // The policy: each user sees the events they attend (V1) and their
    // details (V2).
    let schema = schema_of_database(&db);
    let policy = Policy::from_sql(
        &schema,
        &[
            ("V1", "SELECT EId FROM Attendance WHERE UId = ?MyUId"),
            (
                "V2",
                "SELECT * FROM Events e JOIN Attendance a ON e.EId = a.EId \
                 WHERE a.UId = ?MyUId",
            ),
        ],
    )
    .unwrap();
    println!("policy:");
    for v in policy.views() {
        println!("  {}: {}", v.name, v.sql);
    }

    let checker = ComplianceChecker::new(schema, policy);
    let proxy = SqlProxy::new(db, checker, ProxyConfig::default());
    let session = proxy.begin_session(vec![("MyUId".into(), Value::Int(1))]);

    let show = |proxy: &SqlProxy, label: &str, sql: &str| {
        let response = proxy.execute(session, sql, &[]).unwrap();
        match &response {
            ProxyResponse::Rows(rows) => {
                println!("{label}: ALLOWED, {} row(s)", rows.len());
                for row in &rows.rows {
                    println!("    {row:?}");
                }
            }
            ProxyResponse::Blocked(reason) => {
                println!("{label}: BLOCKED ({})", reason.label());
            }
            ProxyResponse::Affected(n) => println!("{label}: {n} rows affected"),
        }
    };

    println!("\n-- Q2 in isolation is blocked:");
    show(&proxy, "Q2", "SELECT * FROM Events WHERE EId = 2");

    println!("\n-- Q1 (the access check) is allowed and returns a row:");
    show(
        &proxy,
        "Q1",
        "SELECT 1 FROM Attendance WHERE UId = ?MyUId AND EId = 2",
    );

    println!("\n-- Q2 again, now allowed thanks to the trace:");
    show(&proxy, "Q2", "SELECT * FROM Events WHERE EId = 2");

    println!("\n-- probing another user's event stays blocked:");
    show(&proxy, "Q3", "SELECT * FROM Events WHERE EId = 3");

    let stats = proxy.stats();
    println!(
        "\nproxy stats: {} allowed, {} blocked ({} fresh proofs)",
        stats.allowed,
        stats.blocked,
        stats.concrete_proofs + stats.template_proofs,
    );
}
