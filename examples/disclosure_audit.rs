//! Disclosure audit (a miniature of experiment T3): the hospital scenario
//! of Example 4.1 and the age-threshold queries of Example 4.2, checked
//! under every criterion — PQI/NQI certificates, the exact small-model
//! decision, and the Bayesian baseline at several priors.
//!
//! Run with: `cargo run --example disclosure_audit`

use beyond_enforcement::disclose::{belief_shift, decide};
use beyond_enforcement::prelude::*;
use qlogic::{Atom, CmpOp, Comparison};

fn named(mut cq: Cq, name: &str) -> Cq {
    cq.name = Some(name.into());
    cq
}

fn main() {
    hospital();
    employees();
}

/// Example 4.1: staff see patient→doctor and doctor→diseases; a patient's
/// own disease is sensitive.
fn hospital() {
    println!("=== hospital (Example 4.1) ===");
    let v1 = named(
        Cq::new(
            vec![Term::var("p"), Term::var("doc")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        ),
        "PatientDoctor",
    );
    let v2 = named(
        Cq::new(
            vec![Term::var("doc"), Term::var("dis")],
            vec![Atom::new(
                "Treatment",
                vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
            )],
            vec![],
        ),
        "DoctorDiseases",
    );
    let sensitive = Cq::new(
        vec![Term::var("p"), Term::var("dis")],
        vec![Atom::new(
            "Treatment",
            vec![Term::var("p"), Term::var("doc"), Term::var("dis")],
        )],
        vec![],
    );
    let views = ViewSet::new(vec![v1, v2]).unwrap();
    let universe = Universe::with_int_domain(
        vec![RelationSpec {
            name: "Treatment".into(),
            arity: 3,
            max_rows: 2,
        }],
        2,
    );

    let report = audit(
        &sensitive,
        &views,
        Some(&universe),
        Some(BayesConfig::default()),
    )
    .expect("audit");
    print!("{report}");

    // The Bayesian verdict moves with the prior — the §4.2 objection.
    println!("  Bayesian shift by prior:");
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let b = belief_shift(&universe, &views, &sensitive, BayesConfig { tuple_prob: p })
            .expect("bayes");
        println!("    p = {p:.1} → max shift {:.3}", b.max_shift);
    }
    println!();
}

/// Example 4.2: seniors vs adults, both implication directions.
fn employees() {
    println!("=== employees (Example 4.2) ===");
    let seniors = |name: &str| {
        named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(60))],
            ),
            name,
        )
    };
    let adults = |name: &str| {
        named(
            Cq::new(
                vec![Term::var("n")],
                vec![Atom::new("Employees", vec![Term::var("n"), Term::var("a")])],
                vec![Comparison::new(Term::var("a"), CmpOp::Ge, Term::int(18))],
            ),
            name,
        )
    };

    // Direction 1: V = {seniors}, S = adults → PQI (positive inference).
    let views = ViewSet::new(vec![seniors("Q1")]).unwrap();
    let report = audit(&adults("S"), &views, None, None).expect("audit");
    println!("V = {{seniors}}, S = adults:");
    print!("{report}");

    // Direction 2: V = {adults}, S = seniors → NQI (negative inference).
    let views = ViewSet::new(vec![adults("Q2")]).unwrap();
    let report = audit(&seniors("S"), &views, None, None).expect("audit");
    println!("V = {{adults}}, S = seniors:");
    print!("{report}");

    // Small-model confirmation on a bounded age domain.
    let universe = Universe {
        relations: vec![RelationSpec {
            name: "Employees".into(),
            arity: 2,
            max_rows: 2,
        }],
        domain: vec![Value::Int(17), Value::Int(30), Value::Int(61)],
        cap: 2_000_000,
    };
    let views = ViewSet::new(vec![adults("Q2")]).unwrap();
    let verdict = decide(&universe, &views, &seniors("S")).expect("small model");
    println!(
        "small-model check (ages {{17, 30, 61}}): PQI={} NQI={} over {} databases",
        verdict.pqi, verdict.nqi, verdict.databases
    );
}
