//! Runs the full calendar application under enforcement: a seeded random
//! workload executes through the proxy, and the example reports the
//! allow/block mix and cache effectiveness (a miniature of experiment T4).
//!
//! Run with: `cargo run --example calendar_proxy`

use appsim::{calendar_workload, seed_app, ProxyPort, Scale, CALENDAR};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::medium());
    let requests = calendar_workload(&db, &mut rng, 200).expect("workload");

    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().unwrap();
    let checker = ComplianceChecker::new(schema, policy);
    let proxy = SqlProxy::new(db, checker, ProxyConfig::default());

    let app = CALENDAR.app();
    let mut outcomes = [0usize; 3]; // ok, http, blocked
    for req in &requests {
        let handler = app.handler(&req.handler).expect("handler");
        let session = proxy.begin_session(req.session.clone());
        let mut port = ProxyPort {
            proxy: &proxy,
            session,
        };
        let result = run_handler(
            &mut port,
            handler,
            &req.session,
            &req.params,
            Limits::default(),
        )
        .expect("run");
        match result.outcome {
            Outcome::Ok => outcomes[0] += 1,
            Outcome::Http(_) => outcomes[1] += 1,
            Outcome::Blocked { .. } => outcomes[2] += 1,
        }
        proxy.end_session(session);
    }

    println!("calendar under enforcement: {} requests", requests.len());
    println!("  completed OK   : {}", outcomes[0]);
    println!(
        "  app-denied     : {} (404s from the app's own checks)",
        outcomes[1]
    );
    println!(
        "  proxy-blocked  : {} (should be 0: the app is policy-compliant)",
        outcomes[2]
    );

    let stats = proxy.stats();
    println!("\nproxy decision stats:");
    println!("  queries allowed      : {}", stats.allowed);
    println!("  queries blocked      : {}", stats.blocked);
    println!("  template cache hits  : {}", stats.template_cache_hits);
    println!("  template proofs      : {}", stats.template_proofs);
    println!("  session cache hits   : {}", stats.session_cache_hits);
    println!("  concrete proofs      : {}", stats.concrete_proofs);
    println!("  writes passed        : {}", stats.writes);

    assert_eq!(
        outcomes[2], 0,
        "the correct app must never be proxy-blocked"
    );
}
