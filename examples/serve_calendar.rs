//! Serves the calendar application's enforcement proxy over TCP.
//!
//! Seeds the calendar database, wraps it in the enforcing `SqlProxy`, and
//! exposes it through `bep-server`'s wire protocol. Clients connect with
//! `bep_server::Client`, open sessions with their `MyUId`, and every
//! `SELECT` they send is decided against the calendar policy — the
//! networked version of the `calendar_proxy` example.
//!
//! Run a long-lived server (stops when a client sends `shutdown`):
//!
//! ```text
//! cargo run --example serve_calendar -- 127.0.0.1:4270
//! ```
//!
//! Run the self-contained smoke check used by CI — starts the server on
//! an ephemeral port, drives one `Begin`/`Execute`/`End` round-trip
//! through the client, asks for shutdown, and verifies a clean drain:
//!
//! ```text
//! cargo run --example serve_calendar -- --smoke
//! ```
//!
//! Add `--metrics` to either mode to surface the observability layer: in
//! smoke mode the client scrapes the `metrics` frame and prints the full
//! Prometheus text exposition (CI greps it for the expected metric
//! families); in serving mode the drained server prints a final
//! exposition snapshot on shutdown.

use std::sync::Arc;
use std::time::Duration;

use appsim::{seed_app, Scale, CALENDAR};
use bep_server::{Client, ExecOutcome, Server, ServerConfig};
use beyond_enforcement::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sqlir::Value;

fn calendar_proxy() -> Arc<SqlProxy> {
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut db = CALENDAR.empty_db();
    seed_app("calendar", &mut db, &mut rng, &Scale::medium());
    let schema = CALENDAR.schema();
    let policy = CALENDAR.policy().expect("calendar policy compiles");
    Arc::new(SqlProxy::new(
        db,
        ComplianceChecker::new(schema, policy),
        ProxyConfig::default(),
    ))
}

fn main() {
    let mut smoke_mode = false;
    let mut metrics = false;
    let mut bind = "127.0.0.1:4270".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke_mode = true,
            "--metrics" => metrics = true,
            other => bind = other.to_string(),
        }
    }
    if smoke_mode {
        smoke(metrics);
        return;
    }

    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), &bind)
        .expect("bind enforcement server");
    println!(
        "bep-server: serving the calendar policy on {}",
        server.addr()
    );
    println!(
        "  protocol : length-prefixed JSON frames, version {}",
        bep_server::PROTOCOL_VERSION
    );
    if metrics {
        println!("  metrics  : scrape with a `metrics` frame (Prometheus text)");
    }
    println!("  stop with: a client `shutdown` request");
    server.wait();
    println!("bep-server: drained and stopped");
    if metrics {
        println!("\nfinal metrics exposition:");
        print!("{}", proxy.metrics_text());
    }
}

/// The CI smoke check: one full client round-trip and a clean shutdown.
/// With `metrics`, the client also scrapes the exposition endpoint and
/// the full Prometheus text is printed for CI to grep.
fn smoke(metrics: bool) {
    let proxy = calendar_proxy();
    let server = Server::start(Arc::clone(&proxy), ServerConfig::default(), "127.0.0.1:0")
        .expect("bind enforcement server");
    let addr = server.addr();
    println!("smoke: server on {addr}");

    let client_side = std::thread::spawn(move || {
        let io = Duration::from_secs(10);
        let mut c = Client::connect(addr, io).expect("connect");

        // Begin: a calendar user session (the data generator's first uid).
        let session = c
            .begin(vec![("MyUId".into(), Value::Int(appsim::FIRST_UID))])
            .expect("begin session");
        println!("smoke: began session {session}");

        // Execute: the policy's own attendance view is always allowed.
        let r = c
            .execute(
                session,
                "SELECT EId FROM Attendance WHERE UId = ?MyUId",
                &[],
            )
            .expect("execute");
        match &r {
            ExecOutcome::Rows(rows) => {
                println!(
                    "smoke: executed, {} row(s) allowed through",
                    rows.rows.len()
                );
            }
            other => panic!("expected rows, got {other:?}"),
        }

        // End: idempotent teardown.
        assert!(c.end(session).expect("end"), "session was live");
        assert!(!c.end(session).expect("end again"), "second end is a no-op");
        println!("smoke: session ended cleanly");

        if metrics {
            // Scrape the observability surface over the wire: the journal
            // must have recorded the decision above, and the exposition
            // must carry the expected families.
            let page = c.journal(0, 64).expect("journal");
            assert!(
                page.events.iter().any(|e| e.verdict.label() == "allowed"),
                "journal records the allowed smoke decision"
            );
            let text = c.metrics().expect("metrics");
            assert!(
                text.contains("bep_decisions_total"),
                "exposition carries the decision counters"
            );
            println!("smoke: metrics exposition ({} bytes):", text.len());
            print!("{text}");
        }

        c.shutdown_server().expect("shutdown handshake");
        println!("smoke: shutdown acknowledged");
    });

    // The server must notice the client's shutdown request and drain.
    server.wait();
    client_side.join().expect("client thread");
    assert_eq!(proxy.session_count(), 0, "no orphan sessions after drain");

    let stats = proxy.stats();
    assert_eq!(stats.allowed, 1, "exactly the smoke query was allowed");
    println!(
        "smoke: clean shutdown verified (allowed={}, p50={:.1}us)",
        stats.allowed,
        stats.latency.p50_us()
    );
    println!("smoke: OK");
}
